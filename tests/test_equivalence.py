"""The exploration-core equivalence suite.

The tentpole invariant of the shared frontier engine: rebasing SG
generation, reduction search and the conformance product onto
``repro.explore`` must not move a single byte of output.  The digests in
``tests/data/golden_equivalence.json`` were captured from the pre-core
code paths; every digest here is canonical (BFS-renumbered payloads,
timing fields stripped), so the comparison is independent of hash seeds,
dict order and machine speed.  The subprocess test re-derives a sample
under different ``PYTHONHASHSEED`` values to prove that independence
rather than assume it.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.pipeline.artifacts import sg_to_payload
from repro.pipeline.hashing import digest_payload
from repro.sg.generator import generate_sg
from repro.specs import suite
from repro.specs.fig1 import fig1_stg
from repro.specs.lr import lr_expanded
from repro.specs.mmu import mmu_expanded
from repro.specs.par import par_expanded

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_equivalence.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


def _spec_sources():
    sources = {name: suite.load(name) for name in suite.suite_names()}
    sources.update(fig1=fig1_stg(), lr=lr_expanded(), mmu=mmu_expanded(),
                   par=par_expanded())
    return sources


def _certificate_digest(label):
    from repro.flow import run_flow_stg
    from repro.verify import verify_netlist

    name, strategy = label.split("/")
    sg = generate_sg(_spec_sources()[name])
    impl = run_flow_stg(None, strategy=strategy, initial_sg=sg,
                        name=label).report
    report, _ = verify_netlist(impl.circuit.netlist, impl.resolved_sg,
                               name=label)
    payload = report.to_dict()
    payload.pop("seconds", None)
    return digest_payload(payload)


class TestGoldenDigests:
    def test_sg_payloads(self, golden):
        sources = _spec_sources()
        assert sorted(sources) == sorted(golden["sg_payload_digests"])
        for name, stg in sorted(sources.items()):
            digest = digest_payload(sg_to_payload(generate_sg(stg)))
            assert digest == golden["sg_payload_digests"][name], name

    def test_certificates(self, golden):
        for label, want in sorted(golden["certificate_digests"].items()):
            assert _certificate_digest(label) == want, label

    def test_sweep_report(self, golden):
        from repro.sweep import run_sweep
        from repro.sweep.grid import tables_grid
        from repro.sweep.report import to_json

        rows = run_sweep(tables_grid(specs=golden["sweep_specs"]),
                         jobs=1).rows
        digest = digest_payload({"report": to_json(rows)})
        assert digest == golden["sweep_report_digest"]


_HASH_SEED_PROBE = """
import json, sys
from repro.pipeline.artifacts import sg_to_payload
from repro.pipeline.hashing import digest_payload
from repro.sg.generator import generate_sg
from repro.specs import suite
from repro.flow import run_flow_stg
from repro.verify import verify_netlist

out = {"sg": {}}
for name in ("vme_read", "fifo_cell"):
    out["sg"][name] = digest_payload(
        sg_to_payload(generate_sg(suite.load(name))))
impl = run_flow_stg(None, strategy="full",
                    initial_sg=generate_sg(suite.load("half")),
                    name="half/full").report
report, _ = verify_netlist(impl.circuit.netlist, impl.resolved_sg,
                           name="half/full")
payload = report.to_dict()
payload.pop("seconds", None)
out["certificate"] = digest_payload(payload)
json.dump(out, sys.stdout)
"""


class TestHashSeedIndependence:
    def test_digests_stable_across_hash_seeds(self, golden):
        results = []
        for seed in ("0", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                [str(Path(__file__).parents[1] / "src")]
                + env.get("PYTHONPATH", "").split(os.pathsep))
            proc = subprocess.run([sys.executable, "-c", _HASH_SEED_PROBE],
                                  capture_output=True, text=True, env=env,
                                  check=True)
            results.append(json.loads(proc.stdout))
        first, second = results
        assert first == second
        for name, digest in first["sg"].items():
            assert digest == golden["sg_payload_digests"][name], name
        assert (first["certificate"]
                == golden["certificate_digests"]["half/full"])
