"""The exploration-core equivalence suite.

The tentpole invariant of the shared frontier engine: rebasing SG
generation, reduction search and the conformance product onto
``repro.explore`` must not move a single byte of output.  The digests in
``tests/data/golden_equivalence.json`` were captured from the pre-core
code paths; every digest here is canonical (BFS-renumbered payloads,
timing fields stripped), so the comparison is independent of hash seeds,
dict order and machine speed.  The subprocess test re-derives a sample
under different ``PYTHONHASHSEED`` values to prove that independence
rather than assume it.
"""

import functools
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.pipeline.artifacts import sg_to_payload
from repro.pipeline.hashing import digest_payload
from repro.sg.generator import generate_sg
from repro.specs import suite

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_equivalence.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@functools.lru_cache(maxsize=None)
def _cached_source(name):
    # Imports and spec construction stay lazy: `pytest -x -q` collection
    # (and tests that need one spec) must not pay for the whole suite.
    if name == "fig1":
        from repro.specs.fig1 import fig1_stg
        return fig1_stg()
    if name == "lr":
        from repro.specs.lr import lr_expanded
        return lr_expanded()
    if name == "mmu":
        from repro.specs.mmu import mmu_expanded
        return mmu_expanded()
    if name == "par":
        from repro.specs.par import par_expanded
        return par_expanded()
    return suite.load(name)


def _spec_source(name):
    # Copies keep the cache immune to any in-test mutation.
    return _cached_source(name).copy()


def _spec_sources():
    names = list(suite.suite_names()) + ["fig1", "lr", "mmu", "par"]
    return {name: _spec_source(name) for name in names}


def _certificate_digest(label):
    from repro.flow import run_flow_stg
    from repro.verify import verify_netlist

    name, strategy = label.split("/")
    sg = generate_sg(_spec_source(name))
    impl = run_flow_stg(None, strategy=strategy, initial_sg=sg,
                        name=label).report
    report, _ = verify_netlist(impl.circuit.netlist, impl.resolved_sg,
                               name=label)
    payload = report.to_dict()
    payload.pop("seconds", None)
    return digest_payload(payload)


class TestGoldenDigests:
    def test_sg_payloads(self, golden):
        sources = _spec_sources()
        assert sorted(sources) == sorted(golden["sg_payload_digests"])
        for name, stg in sorted(sources.items()):
            digest = digest_payload(sg_to_payload(generate_sg(stg)))
            assert digest == golden["sg_payload_digests"][name], name

    def test_certificates(self, golden):
        for label, want in sorted(golden["certificate_digests"].items()):
            assert _certificate_digest(label) == want, label

    def test_sweep_report(self, golden):
        from repro.sweep import run_sweep
        from repro.sweep.grid import tables_grid
        from repro.sweep.report import to_json

        rows = run_sweep(tables_grid(specs=golden["sweep_specs"]),
                         jobs=1).rows
        digest = digest_payload({"report": to_json(rows)})
        assert digest == golden["sweep_report_digest"]


def _family_sources():
    from repro.specs.families import (arbiter_tree, counter, fifo_chain,
                                      micropipeline_chain)
    return {"fifo_chain_2": fifo_chain(2),
            "micropipeline_chain_1": micropipeline_chain(1),
            "counter_2": counter(2),
            "arbiter_tree_2": arbiter_tree(2)}


class TestEngineParity:
    """packed / tuples / symbolic must agree byte for byte.

    Same reachable-state counts, same CSC/USC verdicts, same canonical
    witnesses: the symbolic engine never materializes a state graph, so
    its coding payload is compared against the explicit one rendered from
    the generated SG.  Toggle specs (``counter``) exercise the unfolded
    explicit path against the symbolic one.
    """

    def test_reachable_state_counts(self):
        from repro.symbolic import encode_stg, symbolic_reach

        sources = dict(_spec_sources(), **_family_sources())
        for name, stg in sorted(sources.items()):
            explicit = len(generate_sg(stg))
            assert symbolic_reach(encode_stg(stg)).state_count \
                == explicit, name

    def test_tuples_engine_matches_golden_digests(self, golden):
        for name, stg in sorted(_spec_sources().items()):
            digest = digest_payload(
                sg_to_payload(generate_sg(stg, engine="tuples")))
            assert digest == golden["sg_payload_digests"][name], name

    def test_coding_payloads_identical(self):
        from repro.sg.properties import check_coding

        sources = dict(_spec_sources(), **_family_sources())
        for name, stg in sorted(sources.items()):
            explicit = check_coding(stg, engine="auto").to_payload()
            symbolic = check_coding(stg, engine="symbolic").to_payload()
            assert explicit == symbolic, name
            tuples = check_coding(stg, engine="tuples").to_payload()
            assert tuples == explicit, name


_SYMBOLIC_SEED_PROBE = """
import json, sys
from repro.pipeline.hashing import digest_payload
from repro.sg.properties import check_coding
from repro.specs import suite
from repro.specs.families import counter
from repro.symbolic import encode_stg, symbolic_reach

out = {"coding": {}, "nodes": {}}
for name in ("micropipeline", "vme_read"):
    stg = suite.load(name)
    out["coding"][name] = digest_payload(
        check_coding(stg, engine="symbolic").to_payload())
    run = symbolic_reach(encode_stg(stg))
    out["nodes"][name] = [run.state_count, run.node_count, run.levels]
stg = counter(2)
out["coding"]["counter_2"] = digest_payload(
    check_coding(stg, engine="symbolic").to_payload())
json.dump(out, sys.stdout)
"""


_HASH_SEED_PROBE = """
import json, sys
from repro.pipeline.artifacts import sg_to_payload
from repro.pipeline.hashing import digest_payload
from repro.sg.generator import generate_sg
from repro.specs import suite
from repro.flow import run_flow_stg
from repro.verify import verify_netlist

out = {"sg": {}}
for name in ("vme_read", "fifo_cell"):
    out["sg"][name] = digest_payload(
        sg_to_payload(generate_sg(suite.load(name))))
impl = run_flow_stg(None, strategy="full",
                    initial_sg=generate_sg(suite.load("half")),
                    name="half/full").report
report, _ = verify_netlist(impl.circuit.netlist, impl.resolved_sg,
                           name="half/full")
payload = report.to_dict()
payload.pop("seconds", None)
out["certificate"] = digest_payload(payload)
json.dump(out, sys.stdout)
"""


def _run_probe(probe, seed):
    env = dict(os.environ, PYTHONHASHSEED=seed)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(Path(__file__).parents[1] / "src")]
        + env.get("PYTHONPATH", "").split(os.pathsep))
    proc = subprocess.run([sys.executable, "-c", probe],
                          capture_output=True, text=True, env=env,
                          check=True)
    return json.loads(proc.stdout)


class TestHashSeedIndependence:
    def test_digests_stable_across_hash_seeds(self, golden):
        results = [_run_probe(_HASH_SEED_PROBE, seed)
                   for seed in ("0", "4242")]
        first, second = results
        assert first == second
        for name, digest in first["sg"].items():
            assert digest == golden["sg_payload_digests"][name], name
        assert (first["certificate"]
                == golden["certificate_digests"]["half/full"])

    def test_symbolic_stable_across_hash_seeds(self):
        # BDD node ids are creation-ordered and every table is keyed by
        # ints, so state counts, node counts, pass counts and coding
        # payload digests must not move with the hash seed -- and the
        # coding digests must equal the explicit engine's in-process.
        first, second = [_run_probe(_SYMBOLIC_SEED_PROBE, seed)
                         for seed in ("0", "4242")]
        assert first == second
        from repro.sg.properties import check_coding
        from repro.specs.families import counter

        for name in ("micropipeline", "vme_read"):
            explicit = digest_payload(
                check_coding(suite.load(name), engine="auto").to_payload())
            assert first["coding"][name] == explicit, name
        assert first["coding"]["counter_2"] == digest_payload(
            check_coding(counter(2), engine="auto").to_payload())
