"""Unit tests for next-state function extraction (repro.logic.functions)."""

import pytest

from repro.logic.functions import (extract_all_functions, extract_function,
                                   extract_set_reset)
from repro.reduction.explore import full_reduction
from repro.sg.generator import generate_sg
from repro.specs.fig1 import fig1_stg
from repro.specs.lr import lr_expanded, q_module_stg


@pytest.fixture(scope="module")
def fig1():
    return generate_sg(fig1_stg())


@pytest.fixture(scope="module")
def lr_wires():
    return full_reduction(generate_sg(lr_expanded()))


class TestExtraction:
    def test_input_signal_rejected(self, fig1):
        with pytest.raises(ValueError):
            extract_function(fig1, "Req")

    def test_fig1_ack_has_conflict(self, fig1):
        function = extract_function(fig1, "Ack")
        assert function.has_csc_conflict
        assert function.conflicts == {(1, 1)}

    def test_on_off_dc_partition(self, fig1):
        function = extract_function(fig1, "Ack")
        universe = set()
        universe |= function.on | function.off | function.dc | function.conflicts
        assert len(universe) == 4  # 2 signals -> 4 codes
        assert not function.on & function.off
        assert not function.on & function.dc
        assert not function.off & function.dc

    def test_next_state_semantics(self, fig1):
        function = extract_function(fig1, "Ack")
        # Initial state (Req=1, Ack=0) has Ack+ enabled: next value 1.
        assert (1, 0) in function.on
        # State (0, 0): Ack stable low: next value 0.
        assert (0, 0) in function.off

    def test_extract_all_covers_non_inputs(self, fig1):
        functions = extract_all_functions(fig1)
        assert set(functions) == {"Ack"}

    def test_q_module_conflicts_per_signal(self):
        sg = generate_sg(q_module_stg())
        functions = extract_all_functions(sg)
        conflicted = {s for s, f in functions.items() if f.has_csc_conflict}
        # The repeated code 1000 separates lo's and ro's excitation.
        assert conflicted  # at least one signal is ill-defined

    def test_wire_functions_after_full_reduction(self, lr_wires):
        functions = extract_all_functions(lr_wires)
        lo = functions["lo"].minimized(exact=True)
        ro = functions["ro"].minimized(exact=True)
        names = functions["lo"].variables
        assert lo.single_literal() == (names.index("ri"), 1)
        assert ro.single_literal() == (names.index("li"), 1)

    def test_minimized_conflict_policies(self, fig1):
        function = extract_function(fig1, "Ack")
        on_cover = function.minimized(conflict_policy="on")
        dc_cover = function.minimized(conflict_policy="dc")
        for minterm in function.on:
            assert on_cover.contains(minterm)
            assert dc_cover.contains(minterm)
        assert on_cover.contains((1, 1))
        with pytest.raises(ValueError):
            function.minimized(conflict_policy="bogus")

    def test_fast_and_exact_agree_on_validity(self, lr_wires):
        for signal, function in extract_all_functions(lr_wires).items():
            fast = function.minimized(fast=True)
            exact = function.minimized(exact=True)
            for minterm in function.on:
                assert fast.contains(minterm)
                assert exact.contains(minterm)
            for minterm in function.off:
                assert not fast.contains(minterm)
                assert not exact.contains(minterm)


class TestSetReset:
    def test_conflicted_signal_rejected(self, fig1):
        with pytest.raises(ValueError):
            extract_set_reset(fig1, "Ack")

    def test_set_reset_covers_er(self, lr_wires):
        result = extract_set_reset(lr_wires, "lo", exact=True)
        index = lr_wires.signal_index("lo")
        for state in lr_wires.states:
            code = lr_wires.code_of(state)
            if lr_wires.target(state, "lo+") is not None:
                assert result.set_cover.contains(code)
            if lr_wires.target(state, "lo-") is not None:
                assert result.reset_cover.contains(code)

    def test_set_and_reset_mutual_exclusion(self, lr_wires):
        # The set network must be low in the reset region and at stable 0
        # (else the output would rise spuriously); dually the reset network
        # must be low in the set region and at stable 1.  Holding the reset
        # asserted while the output is already low is fine (don't care).
        result = extract_set_reset(lr_wires, "lo", exact=True)
        for state in lr_wires.states:
            code = lr_wires.code_of(state)
            if lr_wires.target(state, "lo-") is not None:
                assert not result.set_cover.contains(code)
            if lr_wires.target(state, "lo+") is not None:
                assert not result.reset_cover.contains(code)
            value = lr_wires.value_of(state, "lo")
            stable = (lr_wires.target(state, "lo+") is None
                      and lr_wires.target(state, "lo-") is None)
            if stable and value == 0:
                assert not result.set_cover.contains(code)
            if stable and value == 1:
                assert not result.reset_cover.contains(code)
