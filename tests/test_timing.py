"""Unit tests for delay models and critical-cycle extraction (repro.timing)."""

from fractions import Fraction

import pytest

from repro.petri.stg import STG, SignalKind
from repro.sg.generator import generate_sg
from repro.sg.graph import StateGraph
from repro.specs.fig1 import fig1_stg
from repro.specs.lr import lr_expanded, q_module_stg
from repro.timing.critical_cycle import (CycleReport, TimingError,
                                         critical_cycle, cycle_time, throughput)
from repro.timing.delays import TABLE1_DELAYS, DelayModel, gate_level_delays


class TestDelayModel:
    def test_by_kind(self):
        sg = generate_sg(fig1_stg())
        model = DelayModel.by_kind(input_delay=2, output_delay=1)
        assert model.delay_of(sg, "Req+") == 2
        assert model.delay_of(sg, "Ack+") == 1

    def test_overrides_win(self):
        sg = generate_sg(fig1_stg())
        model = DelayModel.by_kind(input_delay=2, output_delay=1,
                                   overrides={"Ack": Fraction(3, 2)})
        assert model.delay_of(sg, "Ack-") == Fraction(3, 2)
        assert model.delay_of(sg, "Req-") == 2

    def test_fractional_delays_exact(self):
        model = DelayModel.by_kind(input_delay=1.5)
        assert model.input_delay == Fraction(3, 2)

    def test_gate_level_model(self):
        sg = generate_sg(q_module_stg())
        model = gate_level_delays(sg, sequential_signals={"ro"})
        assert model.delay_of(sg, "li+") == 3
        assert model.delay_of(sg, "ro+") == Fraction(3, 2)
        assert model.delay_of(sg, "lo+") == 1


class TestCriticalCycle:
    def test_sequential_ring_period_is_sum(self):
        # Q-module order: 4 input events (2 each) + 4 output events (1 each)
        # when fully sequential the period is just the sum of delays... but
        # the paper's model assigns input delay 2: 4*2 + 4*1 = 12.  The
        # measured 14 includes the two CSC-free wire events?  No: the pure
        # STG cycle of 8 events gives exactly 12.
        sg = generate_sg(q_module_stg())
        report = critical_cycle(sg, TABLE1_DELAYS)
        assert report.period == 12
        assert report.event_count == 8
        assert report.input_event_count == 4

    def test_fig1_cycle(self):
        sg = generate_sg(fig1_stg())
        report = critical_cycle(sg, TABLE1_DELAYS)
        # Req+ and Ack- overlap; the four-event cycle is shorter than the
        # sequential sum (2+1+2+1 = 6).
        assert report.period <= 6
        assert report.input_event_count == 2

    def test_concurrency_shortens_cycle(self):
        max_conc = generate_sg(lr_expanded())
        sequential = generate_sg(q_module_stg())
        assert cycle_time(max_conc, TABLE1_DELAYS) <= \
            cycle_time(sequential, TABLE1_DELAYS)

    def test_events_on_cycle_reported(self):
        sg = generate_sg(q_module_stg())
        report = critical_cycle(sg, TABLE1_DELAYS)
        assert sorted(report.events) == sorted(
            ["li+", "ro+", "ri+", "ro-", "ri-", "lo+", "li-", "lo-"])
        assert set(report.input_events) == {"li+", "li-", "ri+", "ri-"}

    def test_transient_then_periodic(self):
        # A graph with a lead-in: s0 -> cycle.
        from repro.petri.stg import SignalEvent, Direction
        sg = StateGraph("lead")
        sg.declare_signal("a", SignalKind.OUTPUT)
        sg.declare_signal("b", SignalKind.OUTPUT)
        for label in ("a+", "a-", "b+", "b-"):
            sg.declare_event(label)
        sg.add_state("s0")
        sg.add_arc("s0", "b+", "s1")
        sg.add_arc("s1", "a+", "s2")
        sg.add_arc("s2", "a-", "s1")
        report = critical_cycle(sg, TABLE1_DELAYS)
        assert report.period == 2  # a+ then a-
        assert report.transient_steps >= 1

    def test_deadlock_raises(self):
        sg = StateGraph("dead")
        sg.declare_signal("a", SignalKind.OUTPUT)
        sg.declare_event("a+")
        sg.add_state("s0")
        sg.add_state("s1")
        sg.add_arc("s0", "a+", "s1")
        with pytest.raises(TimingError):
            critical_cycle(sg, TABLE1_DELAYS)

    def test_throughput(self):
        sg = generate_sg(q_module_stg())
        assert throughput(sg, TABLE1_DELAYS) == pytest.approx(8 / 12)
        assert throughput(sg, TABLE1_DELAYS, per_label="li+") == \
            pytest.approx(1 / 12)

    def test_fractional_delays_in_simulation(self):
        sg = generate_sg(q_module_stg())
        model = DelayModel.by_kind(input_delay=Fraction(3, 2), output_delay=1)
        report = critical_cycle(sg, model)
        assert report.period == Fraction(3, 2) * 4 + 4

    def test_faster_inputs_shorten_cycle(self):
        sg = generate_sg(lr_expanded())
        slow = DelayModel.by_kind(input_delay=4, output_delay=1)
        fast = DelayModel.by_kind(input_delay=1, output_delay=1)
        assert cycle_time(sg, fast) < cycle_time(sg, slow)
