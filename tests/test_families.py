"""Unit tests for the parametric spec families (repro.specs.families)."""

import pytest

from repro.pipeline.artifacts import sg_to_payload
from repro.pipeline.hashing import digest_payload
from repro.sg.generator import generate_sg
from repro.specs import suite
from repro.specs.families import (arbiter_tree, counter, family_names,
                                  fifo_chain, load_family,
                                  micropipeline_chain, parse_family_name)


def _sg_digest(stg):
    return digest_payload(sg_to_payload(generate_sg(stg)))


class TestGrowth:
    """The documented closed forms of the reachable state counts."""

    def test_fifo_chain_states(self):
        for stages in (1, 2, 3, 4):
            sg = generate_sg(fifo_chain(stages))
            assert len(sg) == 3 ** (stages + 1) + (-1) ** stages, stages

    def test_micropipeline_chain_states(self):
        for stages in (1, 2):
            sg = generate_sg(micropipeline_chain(stages))
            assert len(sg) == 2 ** (3 * stages + 2), stages

    def test_counter_states(self):
        # Per stage: 2 phase markings x 2 output-slot markings; the last
        # output toggle's parity is the one value bit no marking tracks.
        for stages in (1, 2, 3, 4):
            sg = generate_sg(counter(stages))
            assert len(sg) == 2 ** (2 * stages + 1), stages

    def test_arbiter_tree_states(self):
        # No clean closed form (mutexes prune the client product); the
        # exact counts are pinned so growth regressions surface.
        for leaves, states in ((2, 28), (4, 912)):
            sg = generate_sg(arbiter_tree(leaves))
            assert len(sg) == states, leaves

    def test_arbiter_tree_rejects_bad_leaf_counts(self):
        for bad in (0, 1, 3, 6):
            with pytest.raises(ValueError):
                arbiter_tree(bad)

    def test_net_grows_linearly(self):
        # Each cell adds 8 transitions and fuses 4 with its neighbour's
        # shared handshake pair: 4n + 4 in total.
        for stages in (1, 2, 4):
            net = fifo_chain(stages).net
            assert len(net.transitions) == 4 * stages + 4, stages


class TestSeedInvariance:
    """Seeds shuffle declaration order, never behaviour: the canonical
    (BFS-renumbered) SG payload digest must not move."""

    def test_fifo_chain(self):
        digests = {_sg_digest(fifo_chain(3, seed=seed))
                   for seed in (0, 1, 2)}
        assert len(digests) == 1

    def test_micropipeline_chain(self):
        digests = {_sg_digest(micropipeline_chain(2, seed=seed))
                   for seed in (0, 7)}
        assert len(digests) == 1

    def test_counter(self):
        digests = {_sg_digest(counter(3, seed=seed)) for seed in (0, 5)}
        assert len(digests) == 1

    def test_arbiter_tree(self):
        digests = {_sg_digest(arbiter_tree(4, seed=seed))
                   for seed in (0, 3)}
        assert len(digests) == 1


class TestNaming:
    def test_parse_round_trip(self):
        assert parse_family_name("fifo_chain_8") == ("fifo_chain", 8, 0)
        assert parse_family_name("micropipeline_chain_4_s2") == (
            "micropipeline_chain", 4, 2)
        assert parse_family_name("counter_3") == ("counter", 3, 0)
        assert parse_family_name("arbiter_tree_4_s1") == (
            "arbiter_tree", 4, 1)

    def test_unknown_rejected(self):
        for bad in ("fifo_chain", "fifo_chain_x", "turbo_chain_3", "half"):
            with pytest.raises(KeyError):
                parse_family_name(bad)

    def test_load_family_matches_constructor(self):
        assert (_sg_digest(load_family("fifo_chain_2_s1"))
                == _sg_digest(fifo_chain(2, seed=1,
                                         name="fifo_chain_2_s1")))

    def test_member_named_after_its_spec(self):
        assert load_family("fifo_chain_3").name == "fifo_chain_3"

    def test_registry_names(self):
        assert family_names() == ["arbiter_tree", "counter", "fifo_chain",
                                  "micropipeline_chain"]


class TestSuiteAccessors:
    """The suite facade delegates to the families registry but keeps
    families out of sweep_sources (they are opt-in by size)."""

    def test_delegation(self):
        assert suite.family_names() == family_names()
        assert (_sg_digest(suite.load_family("fifo_chain_2"))
                == _sg_digest(fifo_chain(2)))

    def test_not_in_sweep_sources(self):
        assert not set(suite.sweep_sources()) & set(family_names())
