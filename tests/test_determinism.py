"""End-to-end determinism of the synthesis flow.

Two runs of the LR table-1 workload -- in fresh interpreters with different
``PYTHONHASHSEED`` values, the classic source of cross-run drift -- must
produce byte-identical synthesis outputs: chosen covers, inserted CSC
signals and mapped netlists.
"""

import subprocess
import sys

_SCRIPT = """\
from repro import full_reduction, generate_sg, implement
from repro.specs.lr import TABLE1_KEEP_CONC, lr_expanded

sg = generate_sg(lr_expanded())
reports = {"full": implement(full_reduction(sg), name="full"),
           "max": implement(sg, name="max")}
for name, keep in TABLE1_KEEP_CONC.items():
    reports[name] = implement(full_reduction(sg, keep_conc=keep), name=name)
for name, report in reports.items():
    print("design", name, report.csc_resolved, report.csc_signal_count)
    for choice in report.insertions:
        print("insertion", choice.signal, choice.style, choice.rise_trigger,
              choice.fall_trigger, choice.initial_value)
    if report.circuit is not None:
        for signal, impl in report.circuit.signals.items():
            print("signal", signal, impl.style, impl.equation)
        print(report.circuit.netlist.to_verilog_like())
"""


def test_table1_byte_identical_across_hash_seeds():
    outputs = set()
    for seed in ("0", "31337"):
        result = subprocess.run(
            [sys.executable, "-c", _SCRIPT], capture_output=True, text=True,
            check=True, env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed})
        outputs.add(result.stdout)
    assert len(outputs) == 1
