"""Unit tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main
from repro.petri.parser import read_stg, save_stg
from repro.sg.generator import generate_sg
from repro.specs.fig1 import fig1_stg
from repro.specs.lr import lr_expanded, q_module_stg


@pytest.fixture
def lr_file(tmp_path):
    path = tmp_path / "lr.g"
    save_stg(lr_expanded(), str(path))
    return str(path)


@pytest.fixture
def fig1_file(tmp_path):
    path = tmp_path / "fig1.g"
    save_stg(fig1_stg(), str(path))
    return str(path)


class TestCheck:
    def test_clean_spec_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "q.g"
        save_stg(q_module_stg(), str(path))
        # q-module has a CSC conflict -> non-zero
        assert main(["check", str(path)]) == 1
        out = capsys.readouterr().out
        assert "consistent" in out and "True" in out

    def test_irresolvable_note(self, fig1_file, capsys):
        assert main(["check", fig1_file]) == 1
        assert "input events" in capsys.readouterr().out


class TestSg:
    def test_sg_listing(self, fig1_file, capsys):
        assert main(["sg", fig1_file]) == 0
        out = capsys.readouterr().out
        assert "5 states" in out

    def test_sg_dot(self, fig1_file, capsys):
        assert main(["sg", fig1_file, "--dot"]) == 0
        assert "digraph" in capsys.readouterr().out


class TestSynth:
    def test_full_reduction_synth(self, lr_file, capsys):
        assert main(["synth", lr_file, "--full"]) == 0
        out = capsys.readouterr().out
        assert "lo = ri" in out
        assert "area: 0" in out

    def test_no_reduce_synth(self, lr_file, capsys):
        assert main(["synth", lr_file, "--no-reduce"]) == 0
        out = capsys.readouterr().out
        assert "CSC signals inserted: 2" in out

    def test_keep_option(self, lr_file, capsys):
        assert main(["synth", lr_file, "--full", "--keep", "li-,ri-"]) == 0
        assert "area" in capsys.readouterr().out

    def test_bad_keep_rejected(self, lr_file):
        with pytest.raises(SystemExit):
            main(["synth", lr_file, "--keep", "li-"])

    def test_internal_delay_defaults_to_output_delay(self, lr_file, capsys):
        # --no-reduce leaves CSC conflicts, so internal state signals are
        # inserted and their delay shows up on the critical cycle.
        assert main(["synth", lr_file, "--no-reduce"]) == 0
        implicit = capsys.readouterr().out
        assert main(["synth", lr_file, "--no-reduce",
                     "--internal-delay", "1"]) == 0
        explicit = capsys.readouterr().out
        assert implicit == explicit

    def test_internal_delay_flag_changes_cycle(self, lr_file, capsys):
        assert main(["synth", lr_file, "--no-reduce"]) == 0
        fast = capsys.readouterr().out
        assert main(["synth", lr_file, "--no-reduce",
                     "--internal-delay", "5"]) == 0
        slow = capsys.readouterr().out
        cycle = lambda out: [line for line in out.splitlines()
                             if line.startswith("critical cycle")]
        assert cycle(fast) != cycle(slow)
        # the output delay is untouched: only the CSC-signal events slowed
        assert "CSC signals inserted: 2" in slow


class TestKeepRoundtrip:
    def test_keep_preserved_through_reduce_output(self, lr_file, tmp_path,
                                                  capsys):
        from repro.sg.regions import are_concurrent
        out_path = tmp_path / "kept.g"
        assert main(["reduce", lr_file, "--full", "--keep", "li-,ri-",
                     "-o", str(out_path)]) == 0
        sg = generate_sg(read_stg(str(out_path)))
        assert are_concurrent(sg, "li-", "ri-")


class TestSweep:
    def test_sweep_two_specs(self, capsys):
        assert main(["sweep", "--specs", "lr,fifo_cell",
                     "--strategies", "none,full", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line]
        # header + (none, full, 4 lr keep variants) + (none, full) for fifo
        assert lines[0].startswith("spec,")
        assert len(lines) == 1 + 6 + 2

    def test_sweep_store_roundtrip(self, tmp_path, capsys):
        argv = ["sweep", "--specs", "fifo_cell", "--strategies", "none,full",
                "--store", str(tmp_path / "store"), "--format", "json"]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert cold == warm

    def test_sweep_report_file(self, tmp_path, capsys):
        out_path = tmp_path / "report.md"
        assert main(["sweep", "--specs", "half", "--strategies", "none",
                     "-o", str(out_path)]) == 0
        assert "| spec" in out_path.read_text()

    def test_sweep_unknown_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--specs", "nosuch"])


class TestVerify:
    def test_verify_registry_spec(self, capsys):
        assert main(["verify", "half"]) == 0
        out = capsys.readouterr().out
        assert out.count("conforming") == 4  # one line per strategy

    def test_verify_g_file(self, lr_file, capsys):
        assert main(["verify", lr_file, "--strategies", "full"]) == 0
        assert "conforming" in capsys.readouterr().out

    def test_verify_unknown_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(["verify", "nosuch"])

    def test_verify_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            main(["verify", "half", "--strategies", "dfs"])

    def test_verify_skip_is_ok_unless_strict(self, capsys):
        # The unreduced micropipeline has no circuit: reported as skipped,
        # non-zero only under --strict.
        assert main(["verify", "micropipeline",
                     "--strategies", "none"]) == 0
        assert "skipped" in capsys.readouterr().out
        assert main(["verify", "micropipeline",
                     "--strategies", "none", "--strict"]) == 1

    def test_verify_store_warm_run(self, tmp_path, capsys):
        argv = ["verify", "half", "--strategies", "none,full",
                "--store", str(tmp_path / "store")]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert cold.out == warm.out
        assert "0 verified" in warm.err

    def test_verify_json_report(self, tmp_path, capsys):
        out_path = tmp_path / "certs.json"
        assert main(["verify", "half", "--strategies", "full",
                     "--json", str(out_path)]) == 0
        payload = __import__("json").loads(out_path.read_text())
        assert payload["reports"][0]["verdict"] == "conforming"

    def test_verify_structural_failure_prints_trace(self, capsys):
        # Structural per-gate delays expose the non-SI decomposition.
        assert main(["verify", "half", "--strategies", "full",
                     "--model", "structural"]) == 1
        out = capsys.readouterr().out
        assert "non-conforming" in out
        assert "1." in out  # the counterexample trace is printed


class TestSweepVerify:
    def test_sweep_verify_flag_adds_verdicts(self, capsys):
        assert main(["sweep", "--specs", "half", "--strategies", "full",
                     "--verify", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert "verdict" in out.splitlines()[0]
        assert "conforming" in out


class TestReduce:
    def test_reduce_roundtrip(self, lr_file, tmp_path, capsys):
        out_path = tmp_path / "reduced.g"
        assert main(["reduce", lr_file, "--full", "-o", str(out_path)]) == 0
        reduced = read_stg(str(out_path))
        sg = generate_sg(reduced)
        assert len(sg) == 8  # the fully sequential LR cycle

    def test_reduce_to_stdout(self, lr_file, capsys):
        assert main(["reduce", lr_file, "--full"]) == 0
        out = capsys.readouterr().out
        assert ".model" in out and ".end" in out


class TestExplorationFlags:
    """The exploration-core surface: budgets, stubborn, family specs."""

    def test_sg_family_member(self, capsys):
        assert main(["sg", "fifo_chain_2"]) == 0
        assert "28 states" in capsys.readouterr().out

    def test_sg_budget_exceeded_is_clean(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["sg", "fifo_chain_2", "--max-states", "5"])
        message = str(excinfo.value)
        assert "exceeded 5 states" in message
        assert "raise --max-states/--max-arcs" in message

    def test_sg_arc_budget(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["sg", "half", "--max-arcs", "3"])
        assert "arcs" in str(excinfo.value)

    def test_sg_exact_budget_passes(self, capsys):
        assert main(["sg", "fifo_chain_2", "--max-states", "28"]) == 0
        assert "28 states" in capsys.readouterr().out

    def test_sg_stubborn_banner(self, capsys):
        assert main(["sg", "micropipeline", "--stubborn"]) == 0
        out = capsys.readouterr().out
        assert "stubborn-set reduction on" in out
        assert "deadlock-preserving subset" in out

    def test_unknown_spec_names_all_sources(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["sg", "no_such_spec"])
        message = str(excinfo.value)
        assert ".g file" in message
        assert "fifo_chain" in message  # the family kinds are listed
        assert "vme_read" in message    # so are the registry specs

    def test_synth_sg_budget_exceeded_is_clean(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["synth", "fifo_chain_2", "--sg-max-states", "5"])
        assert "--sg-max-states/--sg-max-arcs" in str(excinfo.value)

    def test_check_family_member(self, capsys):
        assert main(["check", "fifo_chain_1"]) in (0, 1)
        assert "fifo_chain_1" in capsys.readouterr().out
