"""Unit tests for the exploration loop (repro.reduction.explore, .cost)."""

import pytest

from repro.reduction.cost import CostBreakdown, CostFunction
from repro.reduction.explore import (ExplorationResult, ExplorationStats,
                                     full_reduction,
                                     full_reduction_with_stats,
                                     reduce_concurrency)
from repro.sg.generator import generate_sg
from repro.sg.properties import csc_conflicts, is_speed_independent
from repro.sg.regions import are_concurrent, concurrent_pairs
from repro.specs.fig1 import fig1_stg
from repro.specs.lr import TABLE1_KEEP_CONC, lr_expanded


@pytest.fixture(scope="module")
def lr_max():
    return generate_sg(lr_expanded())


class TestCostFunction:
    def test_weight_range_checked(self):
        with pytest.raises(ValueError):
            CostFunction(weight=1.5)

    def test_breakdown_fields(self, lr_max):
        breakdown = CostFunction(weight=0.5).breakdown(lr_max)
        assert breakdown.csc_conflict_pairs == 3
        assert breakdown.logic_literals > 0
        assert breakdown.state_count == 16
        assert breakdown.value > 0

    def test_weight_zero_ignores_logic(self, lr_max):
        breakdown = CostFunction(weight=0.0).breakdown(lr_max)
        assert breakdown.value == pytest.approx(
            20.0 * 3 + 1e-3 * 16)

    def test_weight_one_ignores_csc(self, lr_max):
        breakdown = CostFunction(weight=1.0).breakdown(lr_max)
        assert breakdown.value == pytest.approx(
            breakdown.logic_literals + 1e-3 * 16)

    def test_memoised(self, lr_max):
        cost = CostFunction()
        assert cost(lr_max) == cost(lr_max.copy())


class TestReduceConcurrency:
    def test_improves_over_initial(self, lr_max):
        result = reduce_concurrency(lr_max)
        assert result.best_cost < result.initial_cost
        assert result.improved
        assert result.explored_count > 1

    def test_best_is_valid_sg(self, lr_max):
        result = reduce_concurrency(lr_max)
        assert is_speed_independent(result.best)
        assert result.best.initial == lr_max.initial

    def test_keep_conc_pairs_survive(self, lr_max):
        result = reduce_concurrency(lr_max, keep_conc=[("li-", "ri-")])
        assert are_concurrent(result.best, "li-", "ri-")

    def test_beam_strategy_runs(self, lr_max):
        result = reduce_concurrency(lr_max, strategy="beam", size_frontier=4)
        assert result.best_cost <= result.initial_cost
        assert result.levels >= 1

    def test_unknown_strategy_rejected(self, lr_max):
        with pytest.raises(ValueError):
            reduce_concurrency(lr_max, strategy="dfs")

    def test_bad_frontier_rejected(self, lr_max):
        with pytest.raises(ValueError):
            reduce_concurrency(lr_max, strategy="beam", size_frontier=0)

    def test_history_recorded(self, lr_max):
        result = reduce_concurrency(lr_max)
        assert result.history
        step = result.history[0]
        assert step.delayed in lr_max.events
        assert step.before in lr_max.events

    def test_no_concurrency_nothing_to_do(self):
        from repro.specs.lr import q_module_stg
        sg = generate_sg(q_module_stg())
        result = reduce_concurrency(sg)
        assert result.best_cost == result.initial_cost
        assert not result.improved

    def test_budget_limits_exploration(self, lr_max):
        small = reduce_concurrency(lr_max, max_explored=5)
        assert small.levels <= 5


class TestExplorationStats:
    """``explored`` means the same thing for every strategy: distinct
    configurations whose cost was evaluated, the input included."""

    def test_stats_attached_and_consistent(self, lr_max):
        for strategy in ("beam", "best-first"):
            result = reduce_concurrency(lr_max, strategy=strategy)
            stats = result.stats
            assert isinstance(stats, ExplorationStats)
            assert stats.strategy == strategy
            assert result.explored_count == stats.explored
            assert 1 <= stats.expanded <= stats.explored
            assert not stats.capped

    def test_full_reduction_stats(self, lr_max):
        best, stats = full_reduction_with_stats(lr_max)
        assert stats.strategy == "full"
        assert stats.expanded <= stats.explored
        assert len(best) == 8
        assert full_reduction(lr_max).signature() == best.signature()

    def test_beam_cap_enforced_inside_level(self, lr_max):
        # The first level alone generates more candidates than this budget;
        # the cap must stop generation mid-level, not after it.
        result = reduce_concurrency(lr_max, strategy="beam", max_explored=3)
        assert result.stats.capped
        assert result.explored_count <= 3

    def test_best_first_cap_counts_distinct_configs(self, lr_max):
        result = reduce_concurrency(lr_max, max_explored=5)
        assert result.stats.capped
        assert result.explored_count <= 5

    def test_full_reduction_cap_enforced_inside_level(self, lr_max):
        best, stats = full_reduction_with_stats(lr_max, max_explored=4)
        assert stats.capped
        assert stats.explored <= 4
        assert best is not None

    def test_history_records_improvements_only(self, lr_max):
        for strategy in ("beam", "best-first"):
            result = reduce_concurrency(lr_max, strategy=strategy)
            costs = [step.cost for step in result.history]
            assert all(late < early for early, late in zip(costs, costs[1:]))
            assert all(cost < result.initial_cost for cost in costs)
            if result.history:
                assert result.history[-1].cost == result.best_cost


class TestFullReduction:
    def test_lr_reaches_two_wires(self, lr_max):
        reduced = full_reduction(lr_max)
        assert concurrent_pairs(reduced) == set()
        assert len(csc_conflicts(reduced)) == 0
        assert len(reduced) == 8  # one fully sequential 8-event cycle

    def test_keep_conc_respected(self, lr_max):
        for name, pairs in TABLE1_KEEP_CONC.items():
            reduced = full_reduction(lr_max, keep_conc=pairs)
            label_a, label_b = pairs[0]
            assert are_concurrent(reduced, label_a, label_b), name

    def test_terminal_has_no_valid_moves_outside_keep(self, lr_max):
        from repro.reduction.fwdred import forward_reduction, reducible_pairs
        reduced = full_reduction(lr_max)
        for before, delayed in reducible_pairs(reduced):
            assert not forward_reduction(reduced, delayed, before).valid

    def test_already_sequential_is_fixed_point(self):
        from repro.specs.lr import q_module_stg
        sg = generate_sg(q_module_stg())
        reduced = full_reduction(sg)
        assert set(reduced.arcs()) == set(sg.arcs())
