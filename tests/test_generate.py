"""The random live-safe STG generator and its shrinker.

Three contracts under test:

* **determinism** -- same (seed, knobs) means the same derivation trace,
  in this process and across ``PYTHONHASHSEED`` subprocesses; a
  :class:`~repro.specs.generate.random.GenSpec` survives a JSON
  round-trip byte-for-byte;
* **correctness by construction** -- every generated spec is live, 1-safe
  and consistent (the token-flow argument in the generator's docstring,
  checked here over a 200-spec corpus);
* **shrinking** -- the shrink log replays to the identical shrunk spec,
  and at the fixpoint no single derivation step is removable.
"""

import json
import os
import subprocess
import sys
from collections import deque
from pathlib import Path

import pytest

from repro.petri.analysis import dead_transitions, is_deadlock_free, is_safe
from repro.sg.generator import generate_sg
from repro.sg.properties import is_consistent
from repro.specs.generate import (GenKnobs, GenSpec, TraceError,
                                  build_from_trace, generate_spec,
                                  replay_shrink, shrink, spec_seed)
from repro.specs.generate.shrink import _candidates

CORPUS_SIZE = 200


def _corpus(count=CORPUS_SIZE, seed=0):
    return [generate_spec(spec_seed(seed, index)) for index in range(count)]


class TestDeterminism:
    def test_same_seed_same_trace(self):
        for index in (0, 7, 123):
            seed = spec_seed(0, index)
            first, second = generate_spec(seed), generate_spec(seed)
            assert first == second
            assert first.digest == second.digest

    def test_knobs_are_part_of_the_identity(self):
        small = GenKnobs(max_fragments=1, max_mutations=1, max_signals=6)
        assert generate_spec(3, small) != generate_spec(3)
        spec = generate_spec(3, small)
        assert len([s for s in spec.trace
                    if s.get("op") == "fragment"]) == 1

    def test_json_round_trip(self):
        for spec in _corpus(20):
            line = spec.to_json()
            assert "\n" not in line
            again = GenSpec.from_json(line)
            assert again == spec
            assert again.to_json() == line
            assert again.build().name == spec.name

    def test_build_is_a_pure_function_of_the_trace(self):
        from repro.pipeline.artifacts import sg_to_payload
        from repro.pipeline.hashing import digest_payload

        spec = generate_spec(spec_seed(0, 0))
        digests = {digest_payload(sg_to_payload(generate_sg(spec.build())))
                   for _ in range(3)}
        assert len(digests) == 1


_TRACE_PROBE = """
import json, sys
from repro.specs.generate import generate_spec, spec_seed

out = [generate_spec(spec_seed(0, index)).to_json()
       for index in range(40)]
json.dump(out, sys.stdout)
"""


def _run_probe(probe, seed):
    env = dict(os.environ, PYTHONHASHSEED=seed)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(Path(__file__).parents[1] / "src")]
        + env.get("PYTHONPATH", "").split(os.pathsep))
    proc = subprocess.run([sys.executable, "-c", probe],
                          capture_output=True, text=True, env=env,
                          check=True)
    return json.loads(proc.stdout)


class TestHashSeedIndependence:
    def test_traces_stable_across_hash_seeds(self):
        first, second = [_run_probe(_TRACE_PROBE, seed)
                         for seed in ("0", "4242")]
        assert first == second
        # ... and identical to this process's own draws.
        assert first == [generate_spec(spec_seed(0, index)).to_json()
                        for index in range(40)]


def _marking_graph(net):
    """(forward, backward) adjacency of the reachable marking graph,
    plus the fired-transition set -- a bare BFS, so checking 200 specs
    does not pay the full SG construction (codes, consistency) per
    spec."""
    initial = net.initial_marking()
    forward = {initial: set()}
    backward = {initial: set()}
    fired = set()
    queue = deque([(initial, frozenset(net.enabled_transitions(initial)))])
    while queue:
        marking, enabled = queue.popleft()
        for transition in enabled:
            successor, succ_enabled = net.fire_incremental(
                transition, marking, enabled)
            fired.add(transition)
            if successor not in forward:
                forward[successor] = set()
                backward[successor] = set()
                queue.append((successor, succ_enabled))
            forward[marking].add(successor)
            backward[successor].add(marking)
    return forward, backward, fired


def _covers_all(adjacency):
    start = next(iter(adjacency))
    seen = {start}
    queue = deque(seen)
    while queue:
        for nxt in adjacency[queue.popleft()]:
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
    return len(seen) == len(adjacency)


class TestLiveSafeByConstruction:
    def test_corpus_invariants(self):
        for spec in _corpus():
            net = spec.build().net
            forward, backward, fired = _marking_graph(net)
            assert all(count <= 1 for marking in forward
                       for count in marking), spec.name  # 1-safe
            assert fired == set(net.transition_names), spec.name
            assert all(forward.values()), spec.name  # deadlock-free
            # Every reachable marking can reach every other: each
            # transition stays fireable forever (liveness), not just
            # once.
            assert _covers_all(forward), spec.name
            assert _covers_all(backward), spec.name

    def test_sample_consistency_and_net_analysis(self):
        # The heavier per-spec machinery (full SG with code assignment,
        # the library's own net analyses) agrees with the bare-BFS
        # shortcuts above; consistency over the whole corpus is the
        # differential suite's coding oracle.
        for index in (0, 3, 11, 17):
            stg = generate_spec(spec_seed(0, index)).build()
            assert is_consistent(generate_sg(stg))
            assert is_safe(stg.net)
            assert is_deadlock_free(stg.net)
            assert not dead_transitions(stg.net)

    def test_corpus_is_not_degenerate(self):
        corpus = _corpus()
        shapes = set()
        ops = set()
        for spec in corpus:
            for step in spec.trace:
                if step.get("op") == "fragment":
                    shapes.add(step["shape"])
                else:
                    ops.add(step["op"])
        assert shapes == {"link", "fifo", "micropipeline"}
        assert ops == {"insert", "widen", "choice"}

    def test_trace_errors_are_rejected_not_crashes(self):
        with pytest.raises(TraceError):
            build_from_trace([])  # no fragments
        with pytest.raises(TraceError):
            build_from_trace([{"op": "fragment", "shape": "nope"}])
        with pytest.raises(TraceError):
            build_from_trace([{"op": "fragment", "shape": "link"},
                              {"op": "insert", "place": "ghost",
                               "signal": "x0"}])
        with pytest.raises(TraceError):
            build_from_trace([{"op": "fragment", "shape": "link"},
                              {"op": "teleport", "place": "p"}])


def _needs_x0(candidate):
    """A deterministic stand-in failure: the spec still carries x0."""
    return any(step.get("signal") == "x0" for step in candidate.trace)


def _spec_with_x0():
    for index in range(50):
        spec = generate_spec(spec_seed(0, index))
        if _needs_x0(spec) and len(spec.trace) >= 3:
            return spec
    raise AssertionError("no corpus spec with an x0 mutation")


class TestShrink:
    def test_shrink_log_replays_byte_identically(self):
        spec = _spec_with_x0()
        result = shrink(spec, _needs_x0)
        assert result.steps == len(result.log)
        replayed = replay_shrink(spec, result.log)
        assert replayed == result.spec
        assert replayed.to_json() == result.spec.to_json()

    def test_shrunk_spec_is_minimal(self):
        spec = _spec_with_x0()
        result = shrink(spec, _needs_x0)
        final = result.spec.trace
        assert len(final) < len(spec.trace)
        # No single derivation step is removable: every drop candidate
        # either no longer builds or no longer fails.
        for entry, candidate in _candidates(final):
            if entry["action"] != "drop":
                continue
            try:
                build_from_trace(candidate)
            except TraceError:
                continue
            shrunk = GenSpec(seed=spec.seed, knobs=spec.knobs,
                             trace=candidate)
            assert not _needs_x0(shrunk), entry

    def test_shrink_rejects_unbuildable_spec(self):
        broken = GenSpec(seed=0, knobs=GenKnobs(),
                         trace=({"op": "insert", "place": "p",
                                 "signal": "x0"},))
        with pytest.raises(TraceError):
            shrink(broken, lambda candidate: True)
