"""Unit tests for the parity union-find and constraint-based code assignment.

The solver in :mod:`repro.sg.generator` carries equality/inequality (XOR)
constraints between (state, signal) variables; these tests exercise it both
directly (:class:`_ParityUnionFind`) and through :func:`_assign_codes` on
hand-built toggle (2-phase) state graphs, including the inconsistency
witnesses and the declared-initial-value flip of an unconstrained class.
"""

import subprocess
import sys

import pytest

from repro.petri.stg import Direction, SignalEvent, SignalKind, STG
from repro.sg.generator import (ConsistencyError, _ParityUnionFind,
                                _assign_codes, generate_sg)
from repro.sg.graph import StateGraph


class TestParityUnionFind:
    def test_fresh_item_is_its_own_even_root(self):
        uf = _ParityUnionFind()
        root, parity = uf.find("x")
        assert root == "x" and parity == 0

    def test_equal_union_keeps_parity_zero(self):
        uf = _ParityUnionFind()
        assert uf.union("a", "b", 0)
        root_a, parity_a = uf.find("a")
        root_b, parity_b = uf.find("b")
        assert root_a == root_b
        assert parity_a == parity_b

    def test_unequal_union_gives_odd_relative_parity(self):
        uf = _ParityUnionFind()
        assert uf.union("a", "b", 1)
        root_a, parity_a = uf.find("a")
        root_b, parity_b = uf.find("b")
        assert root_a == root_b
        assert parity_a ^ parity_b == 1

    def test_parity_composes_over_chains(self):
        # a != b, b != c  =>  a == c;  c != d  =>  a != d.
        uf = _ParityUnionFind()
        uf.union("a", "b", 1)
        uf.union("b", "c", 1)
        uf.union("c", "d", 1)
        _, pa = uf.find("a")
        _, pc = uf.find("c")
        _, pd = uf.find("d")
        assert pa == pc
        assert pa ^ pd == 1

    def test_contradiction_detected(self):
        uf = _ParityUnionFind()
        assert uf.union("a", "b", 0)
        assert uf.union("b", "c", 1)
        assert not uf.union("a", "c", 0)  # a==b, b!=c forces a!=c
        assert uf.union("a", "c", 1)      # restating the truth is fine

    def test_redundant_union_is_consistent(self):
        uf = _ParityUnionFind()
        assert uf.union("a", "b", 1)
        assert uf.union("a", "b", 1)
        assert not uf.union("a", "b", 0)

    def test_path_compression_preserves_parities(self):
        uf = _ParityUnionFind()
        items = [f"v{i}" for i in range(20)]
        for first, second in zip(items, items[1:]):
            uf.union(first, second, 1)
        # Alternating chain: v0 and v_k agree iff k is even.
        _, p0 = uf.find(items[0])
        for k, item in enumerate(items):
            root, parity = uf.find(item)
            assert root == uf.find(items[0])[0]
            assert (parity ^ p0) == (k % 2)


def _toggle_stg(*signals):
    stg = STG("toggle-codes")
    for name, kind in signals:
        stg.declare_signal(name, kind)
    return stg


def _toggle_sg(stg, arcs, states):
    sg = StateGraph(stg.name)
    for name, kind in stg.signals.items():
        sg.declare_signal(name, kind)
    for label in {label for _, label, _ in arcs}:
        sg.declare_event(label)
    for state in states:
        sg.add_state(state)
    sg.initial = states[0]
    for source, label, target in arcs:
        sg.add_arc(source, label, target)
    return sg


class TestAssignCodesToggle:
    def test_toggle_arc_flips_only_its_signal(self):
        stg = _toggle_stg(("a", SignalKind.OUTPUT), ("b", SignalKind.INPUT))
        sg = _toggle_sg(stg, [("s0", "a~", "s1"), ("s1", "a~", "s0")],
                        ["s0", "s1"])
        _assign_codes(stg, sg)
        a_index, b_index = sg.signal_index("a"), sg.signal_index("b")
        assert sg.codes["s0"][a_index] != sg.codes["s1"][a_index]  # flip
        assert sg.codes["s0"][b_index] == sg.codes["s1"][b_index]  # preserve

    def test_toggle_constrained_equal_is_witnessed(self):
        # A self-loop demands a flip between a state and itself.
        stg = _toggle_stg(("a", SignalKind.OUTPUT))
        sg = _toggle_sg(stg, [("s0", "a~", "s0")], ["s0"])
        with pytest.raises(ConsistencyError, match="flip"):
            _assign_codes(stg, sg)

    def test_preserve_conflicting_with_flip_is_witnessed(self):
        # b must both hold (across a~) and flip (across b~) on parallel arcs
        # forming an odd cycle: s0 --a~--> s1, s0 --b~--> s1.
        stg = _toggle_stg(("a", SignalKind.OUTPUT), ("b", SignalKind.OUTPUT))
        sg = _toggle_sg(stg, [("s0", "a~", "s1"), ("s0", "b~", "s1")],
                        ["s0", "s1"])
        with pytest.raises(ConsistencyError):
            _assign_codes(stg, sg)

    def test_rise_fall_fixed_values_still_apply(self):
        # A 4-phase signal `a` interleaved with a toggle signal `t` that
        # flips twice per cycle (an even toggle count is required).
        stg = _toggle_stg(("a", SignalKind.OUTPUT), ("t", SignalKind.OUTPUT))
        sg = _toggle_sg(stg, [("s0", "a+", "s1"), ("s1", "t~", "s2"),
                              ("s2", "a-", "s3"), ("s3", "t~", "s0")],
                        ["s0", "s1", "s2", "s3"])
        _assign_codes(stg, sg)
        a_index = sg.signal_index("a")
        t_index = sg.signal_index("t")
        assert [sg.codes[s][a_index] for s in ("s0", "s1", "s2", "s3")] == [0, 1, 1, 0]
        assert sg.codes["s1"][t_index] != sg.codes["s2"][t_index]
        assert sg.codes["s3"][t_index] != sg.codes["s0"][t_index]

    def test_declared_initial_value_flips_free_class(self):
        # The toggle class of `a` has no fixed value anywhere, so the
        # declared initial value must flip the whole connected class.
        stg = _toggle_stg(("a", SignalKind.OUTPUT))
        stg.set_initial_value("a", 1)
        sg = _toggle_sg(stg, [("s0", "a~", "s1"), ("s1", "a~", "s0")],
                        ["s0", "s1"])
        _assign_codes(stg, sg)
        a_index = sg.signal_index("a")
        assert sg.codes["s0"][a_index] == 1
        assert sg.codes["s1"][a_index] == 0

    def test_declared_initial_value_conflict_with_forced_encoding(self):
        stg = _toggle_stg(("a", SignalKind.OUTPUT))
        stg.set_initial_value("a", 1)
        sg = _toggle_sg(stg, [("s0", "a+", "s1"), ("s1", "a-", "s0")],
                        ["s0", "s1"])
        # a+ from the initial state forces a=0 there; declaring 1 must fail.
        with pytest.raises(ConsistencyError, match="initial"):
            _assign_codes(stg, sg)

    def test_unconstrained_signal_gets_declared_value_everywhere(self):
        stg = _toggle_stg(("a", SignalKind.OUTPUT), ("idle", SignalKind.INPUT))
        stg.set_initial_value("idle", 1)
        sg = _toggle_sg(stg, [("s0", "a~", "s1"), ("s1", "a~", "s0")],
                        ["s0", "s1"])
        _assign_codes(stg, sg)
        idle_index = sg.signal_index("idle")
        assert all(sg.codes[s][idle_index] == 1 for s in ("s0", "s1"))


class TestMinimizeDeterminism:
    ON = [(0, 0, 1, 0), (0, 1, 1, 0), (1, 1, 1, 0), (1, 1, 1, 1), (0, 0, 0, 1)]
    DC = [(1, 0, 1, 0), (0, 1, 0, 1)]

    def test_two_runs_identical_covers(self):
        from repro.logic.minimize import minimize, minimize_fast

        for engine_fn in (minimize, minimize_fast):
            first = engine_fn(4, self.ON, self.DC)
            # Present the same sets in a different order: the result must
            # not depend on set iteration or insertion order.
            second = engine_fn(4, list(reversed(self.ON)),
                               list(reversed(self.DC)))
            assert [str(c) for c in first] == [str(c) for c in second]

    def test_identical_across_hash_seeds(self):
        # str hashing is the classic cross-process nondeterminism source;
        # the cover must not depend on it.
        script = (
            "from repro.logic.minimize import minimize, minimize_fast\n"
            f"on = {self.ON!r}\n"
            f"dc = {self.DC!r}\n"
            "print([str(c) for c in minimize(4, on, dc)])\n"
            "print([str(c) for c in minimize_fast(4, on, dc)])\n"
        )
        outputs = set()
        for seed in ("0", "1", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", script], capture_output=True,
                text=True, check=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed})
            outputs.add(result.stdout)
        assert len(outputs) == 1
