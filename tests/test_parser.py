"""Unit tests for the .g format reader/writer (repro.petri.parser)."""

import pytest

from repro.petri.parser import ParseError, parse_stg, read_stg, save_stg, write_stg
from repro.petri.stg import SignalKind
from repro.sg.generator import generate_sg
from repro.specs import suite
from repro.specs.fig1 import fig1_stg
from repro.specs.lr import lr_expanded, q_module_stg

SIMPLE = """
.model demo
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.initial_state !req !ack
.end
"""


class TestParse:
    def test_basic(self):
        stg = parse_stg(SIMPLE)
        assert stg.name == "demo"
        assert stg.signals == {"req": SignalKind.INPUT, "ack": SignalKind.OUTPUT}
        assert set(stg.net.transition_names) == {"req+", "ack+", "req-", "ack-"}
        assert stg.initial_values == {"req": 0, "ack": 0}

    def test_marking_on_implicit_place(self):
        stg = parse_stg(SIMPLE)
        marked = stg.net.marking_dict(stg.net.initial_marking())
        assert marked == {"<ack-,req+>": 1}

    def test_explicit_places(self):
        text = """
.model p
.inputs a
.outputs b
.graph
p0 a+
a+ b+
b+ p0
.marking { p0 }
.end
"""
        stg = parse_stg(text)
        assert stg.net.has_place("p0")
        assert not stg.net.place("p0").auto

    def test_comments_and_blank_lines(self):
        text = SIMPLE.replace(".graph", ".graph\n# a comment\n\n")
        assert parse_stg(text).name == "demo"

    def test_instance_suffixes(self):
        text = """
.model i
.outputs a
.graph
a+ a-
a- a+/1
a+/1 a-/1
a-/1 a+
.marking { <a-/1,a+> }
.end
"""
        stg = parse_stg(text)
        assert set(stg.transitions_of_event("a+")) == {"a+", "a+/1"}

    def test_dummy_declaration(self):
        text = """
.model d
.outputs b
.dummy eps
.graph
eps b+
b+ eps
.marking { <b+,eps> }
.end
"""
        stg = parse_stg(text)
        assert stg.event_of("eps") is None

    def test_undeclared_signal_rejected(self):
        text = ".model x\n.graph\nfoo+ bar+\n.end\n"
        with pytest.raises(ParseError):
            parse_stg(text)

    def test_unknown_directive_rejected(self):
        with pytest.raises(ParseError):
            parse_stg(".model x\n.bogus y\n.end\n")

    def test_marking_unknown_place_rejected(self):
        text = ".model x\n.outputs a\n.graph\na+ a-\na- a+\n.marking { zz }\n.end\n"
        with pytest.raises(ParseError):
            parse_stg(text)

    def test_content_outside_graph_rejected(self):
        with pytest.raises(ParseError):
            parse_stg(".model x\nstray line\n.end\n")

    def test_weighted_marking(self):
        text = """
.model w
.outputs a
.graph
p0 a+
a+ p0
.marking { p0=2 }
.end
"""
        stg = parse_stg(text)
        assert stg.net.marking_dict(stg.net.initial_marking()) == {"p0": 2}

    def test_end_stops_parsing(self):
        stg = parse_stg(SIMPLE + "\ngarbage after end\n")
        assert stg.name == "demo"


class TestRoundTrip:
    @pytest.mark.parametrize("make", [fig1_stg, q_module_stg, lr_expanded])
    def test_roundtrip_preserves_behaviour(self, make):
        original = make()
        rebuilt = parse_stg(write_stg(original))
        assert rebuilt.signals == original.signals
        sg_a = generate_sg(original)
        sg_b = generate_sg(rebuilt)
        assert len(sg_a) == len(sg_b)
        assert sg_a.arc_count() == sg_b.arc_count()
        assert sorted(map(str, sg_a.events.values())) == \
            sorted(map(str, sg_b.events.values()))

    def test_roundtrip_codes_match(self):
        original = fig1_stg()
        rebuilt = parse_stg(write_stg(original))
        sg_a, sg_b = generate_sg(original), generate_sg(rebuilt)
        assert sorted(sg_a.codes.values()) == sorted(sg_b.codes.values())

    def test_file_io(self, tmp_path):
        path = tmp_path / "demo.g"
        save_stg(fig1_stg(), str(path))
        loaded = read_stg(str(path))
        assert loaded.name == "fig1_controller"
        assert len(generate_sg(loaded)) == 5

    def test_write_contains_sections(self):
        text = write_stg(fig1_stg())
        for token in (".model", ".inputs Req", ".outputs Ack", ".graph",
                      ".marking", ".initial_state", ".end"):
            assert token in text


class TestSuiteRoundTrip:
    """Property test: parse(write(stg)) over the whole specs/ suite.

    Round-tripping must preserve the signal table, the transition set, the
    place structure (explicit names kept, implicit places fold back to the
    same count), the token marking and the generated behaviour, and a
    second write must be a fixed point (byte-identical text).
    """

    @pytest.fixture(params=suite.suite_names())
    def spec(self, request):
        return suite.load(request.param)

    def test_roundtrip_preserves_structure(self, spec):
        text = write_stg(spec)
        rebuilt = parse_stg(text)
        assert rebuilt.signals == spec.signals
        assert rebuilt.initial_values == spec.initial_values
        assert (sorted(t.name for t in rebuilt.net.transitions)
                == sorted(t.name for t in spec.net.transitions))
        explicit = lambda stg: sorted(p.name for p in stg.net.places
                                      if not p.auto)
        implicit = lambda stg: sum(1 for p in stg.net.places if p.auto)
        assert explicit(rebuilt) == explicit(spec)
        assert implicit(rebuilt) == implicit(spec)
        tokens = lambda stg: sorted(
            stg.net.marking_dict(stg.net.initial_marking()).values())
        assert tokens(rebuilt) == tokens(spec)

    def test_roundtrip_preserves_behaviour(self, spec):
        rebuilt = parse_stg(write_stg(spec))
        sg_a, sg_b = generate_sg(spec), generate_sg(rebuilt)
        assert len(sg_a) == len(sg_b)
        assert sg_a.arc_count() == sg_b.arc_count()
        assert sorted(sg_a.codes.values()) == sorted(sg_b.codes.values())

    def test_second_write_is_fixed_point(self, spec):
        once = write_stg(parse_stg(write_stg(spec)))
        twice = write_stg(parse_stg(once))
        assert once == twice
