"""Tests for the synthesis service (repro.serve).

Unit-level: protocol canonicalization and content-addressed job identity,
the job manager's dedup/batching/budget machinery (driven on a plain
asyncio loop, no sockets).  End-to-end: a real HTTP server on an
ephemeral port, exercised with urllib from threads -- including the
acceptance properties: N identical concurrent requests trigger exactly
one computation, a warm repeat computes zero pipeline stages, and service
sweep rows are byte-identical to CLI sweep rows.
"""

import asyncio
import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve.app import ServeApp, json_bytes
from repro.serve.http import BackgroundServer
from repro.serve.jobs import JobManager
from repro.serve.protocol import (ProtocolError, job_id, parse_sweep_request,
                                  parse_synth_request, point_from_task,
                                  point_task, task_group)
from repro.specs.suite import source_text
from repro.sweep import render, run_sweep, tables_grid


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_registry_name_and_inline_text_share_identity(self):
        by_name = parse_synth_request({"spec": "half"})
        by_text = parse_synth_request({"stg": source_text("half")})
        assert by_name == by_text
        assert job_id(by_name) == job_id(by_text)

    def test_keep_conc_order_is_canonical(self):
        a = parse_synth_request({"spec": "lr", "config": {
            "keep_conc": [["ri-", "li-"], ["ro-", "lo-"]]}})
        b = parse_synth_request({"spec": "lr", "config": {
            "keep_conc": [["lo-", "ro-"], ["li-", "ri-"]]}})
        assert job_id(a) == job_id(b)

    def test_delays_list_spelling(self):
        explicit = parse_synth_request({"spec": "half", "config": {
            "delays": [2, 1, 1]}})
        default = parse_synth_request({"spec": "half"})
        assert job_id(explicit) == job_id(default)

    def test_unknown_spec_is_404(self):
        with pytest.raises(ProtocolError) as err:
            parse_synth_request({"spec": "no-such-spec"})
        assert err.value.status == 404

    def test_unknown_config_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown config field"):
            parse_synth_request({"spec": "half", "config": {"wat": 1}})

    def test_spec_xor_stg_required(self):
        with pytest.raises(ProtocolError):
            parse_synth_request({})
        with pytest.raises(ProtocolError):
            parse_synth_request({"spec": "half", "stg": "x"})

    def test_verify_budget_clamped(self):
        task = parse_synth_request(
            {"spec": "half",
             "config": {"verify": True, "verify_max_states": 10**9}},
            max_verify_states=5000)
        assert task["config"]["verify_max_states"] == 5000

    def test_point_task_round_trip(self):
        grid = tables_grid(specs=["lr"], strategies=("none", "full"))
        for point in grid.points:
            assert point_from_task(point_task(point)) == point

    def test_task_groups(self):
        synth = parse_synth_request({"spec": "half"})
        point = point_task(tables_grid(specs=["lr"],
                                       strategies=("none",)).points[0])
        assert task_group(point) == "lr"
        assert task_group(synth).startswith("synth:")

    def test_sweep_request_validation(self):
        with pytest.raises(ProtocolError, match="unknown sweep field"):
            parse_sweep_request({"spec": "lr"})
        with pytest.raises(ProtocolError):
            parse_sweep_request({"specs": ["nope"]})
        grid = parse_sweep_request({"specs": ["lr"],
                                    "strategies": ["none", "full"]})
        assert len(grid.points) == 6  # none, full, 4 keep variants


# ----------------------------------------------------------------------
# job manager (no sockets)
# ----------------------------------------------------------------------
def _run(coro):
    return asyncio.run(coro)


class TestJobManager:
    def test_inflight_dedup_single_execution(self, tmp_path):
        async def scenario():
            manager = JobManager(store_root=str(tmp_path / "store"),
                                 workers=0)
            await manager.start()
            try:
                task = parse_synth_request({"spec": "half"})
                jobs = [manager.submit(task)[0] for _ in range(5)]
                assert len({job.id for job in jobs}) == 1
                await asyncio.wait_for(jobs[0].done.wait(), 60)
                assert jobs[0].status == "done"
                assert manager.stats["tasks_executed"] == 1
                assert manager.stats["dedup_hits"] == 4
            finally:
                await manager.stop()

        _run(scenario())

    def test_finished_job_serves_repeats(self, tmp_path):
        async def scenario():
            manager = JobManager(store_root=str(tmp_path / "store"),
                                 workers=0)
            await manager.start()
            try:
                task = parse_synth_request({"spec": "half"})
                job, created = manager.submit(task)
                assert created
                await asyncio.wait_for(job.done.wait(), 60)
                again, created = manager.submit(task)
                assert not created and again is job
            finally:
                await manager.stop()

        _run(scenario())

    def test_budget_expires_unstarted_job(self):
        async def scenario():
            # Never started: no dispatcher, so the watchdog must fire.
            manager = JobManager(workers=0)
            task = parse_synth_request({"spec": "half"})
            job, _ = manager.submit(task, timeout=0.05)
            await asyncio.wait_for(job.done.wait(), 10)
            assert job.status == "failed"
            assert "timeout" in job.error
            assert manager.stats["timeouts"] == 1

        _run(scenario())

    def test_timeout_retry_executes_once(self, tmp_path):
        async def scenario():
            manager = JobManager(store_root=str(tmp_path / "store"),
                                 workers=0)
            task = parse_synth_request({"spec": "half"})
            # Expire while queued (manager not started): the stale id
            # stays in the pending deque.
            expired, _ = manager.submit(task, timeout=0.01)
            await asyncio.wait_for(expired.done.wait(), 10)
            assert expired.status == "failed"
            # Retry the identical task, then start dispatching: the job
            # must run exactly once despite two pending entries.
            retry, created = manager.submit(task)
            assert created and retry is not expired
            await manager.start()
            try:
                await asyncio.wait_for(retry.done.wait(), 60)
                assert retry.status == "done"
                assert manager.stats["tasks_executed"] == 1
                assert manager.stats["late_results_discarded"] == 0
            finally:
                await manager.stop()

        _run(scenario())

    def test_failed_task_reports_error(self, tmp_path):
        async def scenario():
            manager = JobManager(store_root=str(tmp_path / "store"),
                                 workers=0)
            await manager.start()
            try:
                # Inconsistent encoding: SG generation raises.
                broken = (".model bad\n.inputs a\n.outputs b\n.graph\n"
                          "a+ b+\nb+ a+\n.marking { <b+,a+> }\n.end\n")
                task = parse_synth_request({"stg": broken})
                job, _ = manager.submit(task)
                await asyncio.wait_for(job.done.wait(), 60)
                assert job.status == "failed"
                assert job.error
            finally:
                await manager.stop()

        _run(scenario())

    def test_micro_batching_groups_same_spec(self, tmp_path):
        async def scenario():
            manager = JobManager(store_root=str(tmp_path / "store"),
                                 workers=0, batch_size=8)
            # Submit before starting so the whole backlog is visible to
            # the first dispatch round.
            grid = tables_grid(specs=["lr", "fifo_cell"],
                               strategies=("none", "full"),
                               include_keep_variants=False)
            jobs = [manager.submit(point_task(p))[0] for p in grid.points]
            await manager.start()
            try:
                for job in jobs:
                    await asyncio.wait_for(job.done.wait(), 120)
                assert all(job.status == "done" for job in jobs)
                # 4 points over 2 specs in <= 3 chunks proves grouping
                # (pure FIFO with no affinity would need 4).
                assert manager.stats["chunks"] <= 3
            finally:
                await manager.stop()

        _run(scenario())


# ----------------------------------------------------------------------
# app dispatch (transport-free)
# ----------------------------------------------------------------------
class TestDispatch:
    def _dispatch(self, app, method, path, body=b""):
        async def call():
            await app.startup()
            try:
                return await app.dispatch(method, path, body)
            finally:
                await app.shutdown()

        return _run(call())

    def test_healthz(self):
        status, payload = self._dispatch(ServeApp(workers=0),
                                         "GET", "/healthz")
        assert status == 200 and payload["status"] == "ok"

    def test_unknown_route_and_method(self):
        assert self._dispatch(ServeApp(workers=0), "GET", "/nope")[0] == 404
        assert self._dispatch(ServeApp(workers=0), "PUT", "/synth")[0] == 405

    def test_bad_json_is_400(self):
        status, payload = self._dispatch(ServeApp(workers=0), "POST",
                                         "/synth", b"{nope")
        assert status == 400 and "invalid JSON" in payload["error"]

    def test_artifacts_without_store_404(self):
        assert self._dispatch(ServeApp(workers=0), "GET",
                              "/artifacts/abc")[0] == 404

    def test_synth_wait_round_trip(self, tmp_path):
        body = json.dumps({"spec": "half", "wait": True}).encode()
        status, payload = self._dispatch(
            ServeApp(store_root=str(tmp_path / "store"), workers=0),
            "POST", "/synth", body)
        assert status == 200
        assert payload["status"] == "done"
        assert payload["result"]["summary"]["csc_resolved"] is True
        assert payload["result"]["equations"]


# ----------------------------------------------------------------------
# end to end over real sockets
# ----------------------------------------------------------------------
def _get(base, path):
    with urllib.request.urlopen(base + path, timeout=60) as response:
        return response.status, json.loads(response.read())


def _post(base, path, payload):
    request = urllib.request.Request(
        base + path, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.status, json.loads(response.read())


class TestHttpEndToEnd:
    def test_full_service_round_trip(self, tmp_path):
        store = str(tmp_path / "store")
        with BackgroundServer(store_root=store, workers=0) as server:
            base = f"http://127.0.0.1:{server.port}"
            assert _get(base, "/healthz")[0] == 200

            # Cold synthesis: fire, then poll to completion.
            status, job = _post(base, "/synth", {"spec": "half"})
            assert status in (200, 202)
            for _ in range(600):
                status, view = _get(base, "/jobs/" + job["job"])
                if view["status"] in ("done", "failed"):
                    break
            assert view["status"] == "done"
            assert set(view["stages"].values()) == {"computed"}

            # Warm repeat within the same server: dedup, zero stages.
            status, again = _post(base, "/synth",
                                  {"spec": "half", "wait": True})
            assert again["job"] == job["job"]
            assert again["result"] == view["result"]

            # Artifacts resolve by content digest.
            digest = view["result"]["artifacts"]["synthesize"]
            status, artifact = _get(base, "/artifacts/" + digest)
            assert status == 200 and artifact["stage"] == "synthesize"
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(base, "/artifacts/" + "0" * 64)
            assert err.value.code == 404

            # Unknown job id.
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(base, "/jobs/unknown")
            assert err.value.code == 404

            status, stats = _get(base, "/stats")
            assert stats["tasks_executed"] == 1
            assert stats["store"]["entries"] > 0

        # A fresh server over the same store: all stages served warm.
        with BackgroundServer(store_root=store, workers=0) as server:
            base = f"http://127.0.0.1:{server.port}"
            status, warm = _post(base, "/synth",
                                 {"spec": "half", "wait": True})
            assert warm["status"] == "done"
            assert set(warm["stages"].values()) == {"cached"}
            assert warm["result"] == view["result"]

    def test_concurrent_identical_requests_compute_once(self, tmp_path):
        with BackgroundServer(store_root=str(tmp_path / "store"),
                              workers=0) as server:
            base = f"http://127.0.0.1:{server.port}"
            results = []

            def hit():
                results.append(_post(base, "/synth",
                                     {"spec": "fifo_cell", "wait": True})[1])

            threads = [threading.Thread(target=hit) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len({r["job"] for r in results}) == 1
            bodies = {json_bytes(r["result"]) for r in results}
            assert len(bodies) == 1
            stats = _get(base, "/stats")[1]
            assert stats["tasks_executed"] == 1
            assert stats["dedup_hits"] == 5

    def test_sweep_rows_match_cli_sweep(self, tmp_path):
        grid = tables_grid(specs=["lr"], strategies=("none", "full"))
        expected = run_sweep(grid, jobs=1).rows
        with BackgroundServer(store_root=str(tmp_path / "store"),
                              workers=0) as server:
            base = f"http://127.0.0.1:{server.port}"
            status, job = _post(base, "/sweep", {
                "specs": ["lr"], "strategies": ["none", "full"],
                "wait": True})
            assert job["status"] == "done"
            assert job["points"] == len(expected)
        assert job["result"]["rows"] == expected
        # Byte-level: the rendered reports are identical too.
        assert (render(job["result"]["rows"], "json")
                == render(expected, "json"))

    def test_malformed_http_gets_400(self, tmp_path):
        with BackgroundServer(workers=0) as server:
            with socket.create_connection(("127.0.0.1", server.port),
                                          timeout=10) as conn:
                conn.sendall(b"NOT-HTTP\r\n\r\n")
                reply = conn.recv(4096)
            assert reply.startswith(b"HTTP/1.1 400")

    def test_timeout_budget_fails_job(self, tmp_path):
        with BackgroundServer(store_root=str(tmp_path / "store"),
                              workers=0, batch_size=1) as server:
            base = f"http://127.0.0.1:{server.port}"
            status, job = _post(base, "/synth", {
                "spec": "mmu", "wait": True, "timeout": 0.2})
            assert job["status"] == "failed"
            assert "timeout" in job["error"]
            stats = _get(base, "/stats")[1]
            assert stats["timeouts"] == 1
