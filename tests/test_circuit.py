"""Unit tests for library, netlist, mapping and synthesis (repro.circuit)."""

import pytest

from repro.circuit.library import DEFAULT_LIBRARY, Cell, Library
from repro.circuit.mapping import cover_mapped_area, map_cover, map_gc
from repro.circuit.netlist import Alias, Gate, Netlist, NetlistError
from repro.circuit.synthesize import (SynthesisError, estimate_circuit_area,
                                      synthesize_circuit, synthesize_signal)
from repro.logic.cube import Cube, Cover
from repro.reduction.explore import full_reduction
from repro.sg.generator import generate_sg
from repro.specs.fig1 import fig1_stg
from repro.specs.lr import lr_expanded


class TestLibrary:
    def test_default_cells_present(self):
        for cell in ("INV", "AND2", "OR2", "C2"):
            assert cell in DEFAULT_LIBRARY

    def test_missing_cell_raises(self):
        with pytest.raises(KeyError):
            DEFAULT_LIBRARY.cell("AND9")

    def test_relative_sizes(self):
        inv = DEFAULT_LIBRARY.cell("INV")
        and2 = DEFAULT_LIBRARY.cell("AND2")
        c2 = DEFAULT_LIBRARY.cell("C2")
        assert inv.area < and2.area < c2.area
        assert c2.sequential and not and2.sequential


class TestNetlist:
    def test_gate_fanin_checked(self):
        with pytest.raises(NetlistError):
            Gate("g", DEFAULT_LIBRARY.cell("AND2"), ("a",), "out")

    def test_area_accumulates(self):
        netlist = Netlist("n")
        netlist.add_gate("INV", ["a"], output="na")
        netlist.add_gate("AND2", ["na", "b"], output="y")
        assert netlist.area == 8 + 16
        assert netlist.gate_count == 2

    def test_aliases_are_free(self):
        netlist = Netlist("n")
        netlist.add_alias("a", "y")
        assert netlist.area == 0
        assert netlist.driver_of("y") == "alias:a"

    def test_double_drive_rejected(self):
        netlist = Netlist("n")
        netlist.add_gate("INV", ["a"], output="y")
        with pytest.raises(NetlistError):
            netlist.add_gate("INV", ["b"], output="y")
        with pytest.raises(NetlistError):
            netlist.add_alias("b", "y")

    def test_depth(self):
        netlist = Netlist("n")
        netlist.add_input("a")
        netlist.add_gate("INV", ["a"], output="na")
        netlist.add_gate("AND2", ["na", "a"], output="y")
        assert netlist.depth_of("y") == 2.0
        assert netlist.depth_of("a") == 0.0

    def test_depth_combinational_feedback_is_unbounded(self):
        # SI circuits are cyclic: a complex gate feeds its own output back.
        # A combinational loop has no finite worst-case depth; the defined
        # sentinel is math.inf (the old code silently under-reported).
        import math
        netlist = Netlist("n")
        netlist.add_input("a")
        netlist.add_gate("AND2", ["y", "a"], output="y")
        netlist.add_gate("INV", ["y"], output="z")
        assert netlist.depth_of("y") == math.inf
        assert netlist.depth_of("z") == math.inf  # downstream of the loop
        assert netlist.depth_of("a") == 0.0       # untouched by the loop

    def test_depth_breaks_at_sequential_cells(self):
        # A C element's feedback is sequential, not combinational: its
        # output starts a new timing path at the cell's own delay.
        netlist = Netlist("n")
        netlist.add_input("a")
        netlist.add_gate("INV", ["y"], output="ny")
        netlist.add_gate("C2", ["a", "ny"], output="y")
        assert netlist.depth_of("y") == 1.5
        assert netlist.depth_of("ny") == 2.5

    def test_depth_alias_cycle_terminates(self):
        netlist = Netlist("n")
        netlist.add_gate("BUF", ["b"], output="a")
        netlist.add_alias("a", "b")
        import math
        assert netlist.depth_of("b") == math.inf

    def test_depth_wide_dag_is_linear(self):
        # The old per-path visited-set recursion was exponential on ladders
        # of reconvergent fanout; the memoized walk must handle 60 levels.
        netlist = Netlist("n")
        netlist.add_input("x0")
        netlist.add_input("y0")
        for i in range(60):
            netlist.add_gate("AND2", [f"x{i}", f"y{i}"], output=f"x{i+1}")
            netlist.add_gate("OR2", [f"x{i}", f"y{i}"], output=f"y{i+1}")
        assert netlist.depth_of("x60") == 60.0

    def test_nets_sorted(self):
        netlist = Netlist("n")
        netlist.add_input("b")
        netlist.add_input("a")
        netlist.add_gate("AND2", ["b", "a"], output="z")
        netlist.add_alias("z", "y")
        assert netlist.nets() == ["a", "b", "y", "z"]

    def test_merge(self):
        first = Netlist("a")
        first.add_gate("INV", ["x"], output="a.n")
        second = Netlist("b")
        second.add_gate("INV", ["y"], output="b.n")
        first.merge(second)
        assert first.gate_count == 2

    def test_merge_conflict_rejected(self):
        first = Netlist("a")
        first.add_gate("INV", ["x"], output="same")
        second = Netlist("b")
        second.add_gate("INV", ["y"], output="same")
        with pytest.raises(NetlistError):
            first.merge(second)

    def test_verilog_dump(self):
        netlist = Netlist("n")
        netlist.add_input("a")
        netlist.add_output("y")
        netlist.add_gate("INV", ["a"], output="y")
        text = netlist.to_verilog_like()
        assert "module n" in text
        assert "INV" in text

    def test_sequential_gates_listed(self):
        netlist = Netlist("n")
        netlist.add_gate("C2", ["a", "b"], output="y")
        netlist.add_gate("INV", ["y"], output="z")
        assert [g.cell.name for g in netlist.sequential_gates()] == ["C2"]


class TestMapping:
    NAMES = ["a", "b", "c"]

    def test_single_positive_literal_is_wire(self):
        cover = Cover(3, [Cube.parse("-1-")])
        netlist = map_cover(cover, self.NAMES, "y")
        assert netlist.area == 0
        assert any(alias.source == "b" and alias.target == "y"
                   for alias in netlist.aliases)

    def test_single_negative_literal_is_inverter(self):
        cover = Cover(3, [Cube.parse("0--")])
        netlist = map_cover(cover, self.NAMES, "y")
        assert netlist.area == 8
        assert netlist.gate_count == 1

    def test_two_literal_cube(self):
        cover = Cover(3, [Cube.parse("11-")])
        netlist = map_cover(cover, self.NAMES, "y")
        assert netlist.area == 16  # one AND2

    def test_sop_tree(self):
        cover = Cover(3, [Cube.parse("11-"), Cube.parse("--0")])
        netlist = map_cover(cover, self.NAMES, "y")
        # AND2 + INV(c) + OR2
        assert netlist.area == 16 + 8 + 16

    def test_inverter_sharing(self):
        cover = Cover(3, [Cube.parse("0-1"), Cube.parse("0-0")])
        cache = {}
        netlist = map_cover(cover, self.NAMES, "y", inverter_cache=cache)
        inv_count = sum(1 for g in netlist.gates if g.cell.name == "INV")
        assert inv_count == 2  # a' shared, c' once

    def test_constants(self):
        zero = map_cover(Cover.zero(3), self.NAMES, "y")
        assert any(a.source == "GND" for a in zero.aliases)
        one = map_cover(Cover.one(3), self.NAMES, "y")
        assert any(a.source == "VDD" for a in one.aliases)

    def test_gc_mapping_has_c_element(self):
        set_cover = Cover(3, [Cube.parse("1--")])
        reset_cover = Cover(3, [Cube.parse("-1-")])
        netlist = map_gc(set_cover, reset_cover, self.NAMES, "y")
        assert any(g.cell.name == "C2" for g in netlist.gates)
        assert netlist.driver_of("y") is not None

    def test_cover_mapped_area_matches_map(self):
        cover = Cover(3, [Cube.parse("11-"), Cube.parse("--0")])
        assert cover_mapped_area(cover, self.NAMES) == 40


class TestSynthesize:
    def test_full_reduction_lr_is_wires(self):
        sg = full_reduction(generate_sg(lr_expanded()))
        circuit = synthesize_circuit(sg)
        assert circuit.area == 0
        assert circuit.style_of("lo") == "wire"
        assert circuit.style_of("ro") == "wire"
        assert circuit.equations["lo"] == "lo = ri"
        assert circuit.equations["ro"] == "ro = li"

    def test_conflicted_sg_rejected(self):
        sg = generate_sg(fig1_stg())
        with pytest.raises(SynthesisError):
            synthesize_signal(sg, "Ack")
        with pytest.raises(SynthesisError):
            synthesize_circuit(sg)

    def test_estimate_tolerates_conflicts(self):
        sg = generate_sg(fig1_stg())
        estimate = estimate_circuit_area(sg)
        assert estimate >= 0

    def test_netlist_io_declared(self):
        sg = full_reduction(generate_sg(lr_expanded()))
        circuit = synthesize_circuit(sg)
        assert set(circuit.netlist.primary_inputs) == {"li", "ri"}
        assert set(circuit.netlist.primary_outputs) == {"lo", "ro"}

    def test_style_override(self):
        sg = full_reduction(generate_sg(lr_expanded()),
                            keep_conc=[("lo-", "ro-")])
        from repro.encoding.insertion import resolve_csc
        resolved = resolve_csc(sg).sg
        complex_only = synthesize_circuit(resolved, style="complex")
        for signal, impl in complex_only.signals.items():
            assert impl.style in ("complex", "wire", "constant")

    def test_gc_style(self):
        sg = full_reduction(generate_sg(lr_expanded()),
                            keep_conc=[("li-", "ri-")])
        circuit = synthesize_circuit(sg, style="gc")
        assert any(impl.style == "gc" for impl in circuit.signals.values())
