"""Unit tests for partial specs and handshake expansion (repro.hse)."""

import pytest

from repro.hse.constraints import (InterfaceConstraint, apply_interface_constraint,
                                   normalise_keep_conc)
from repro.hse.expansion import (ExpansionError, expand, expand_four_phase,
                                 expand_two_phase)
from repro.hse.spec import (ChannelAction, ChannelRole, PartialPulse,
                            PartialSpec)
from repro.petri.net import PetriNetError
from repro.petri.stg import SignalEvent, SignalKind
from repro.sg.generator import generate_sg
from repro.sg.properties import check_implementability, is_consistent
from repro.sg.regions import are_concurrent, concurrent_pairs
from repro.specs.fragments import fig6_spec
from repro.specs.lr import lr_spec


class TestPartialSpec:
    def test_parse_channel_actions(self):
        spec = PartialSpec()
        spec.declare_channel("a")
        event = spec.parse_event("a?")
        assert isinstance(event, ChannelAction)
        assert event.is_input
        assert str(spec.parse_event("a!")) == "a!"

    def test_parse_partial_pulse(self):
        spec = PartialSpec()
        spec.declare_partial_signal("b")
        event = spec.parse_event("b")
        assert isinstance(event, PartialPulse)
        assert str(spec.parse_event("b/1")) == "b/1"

    def test_parse_full_signal_event(self):
        spec = PartialSpec()
        spec.declare_signal("c", SignalKind.OUTPUT)
        assert isinstance(spec.parse_event("c+"), SignalEvent)

    def test_undeclared_rejected(self):
        spec = PartialSpec()
        with pytest.raises(PetriNetError):
            spec.parse_event("z?")
        with pytest.raises(PetriNetError):
            spec.parse_event("z+")
        with pytest.raises(PetriNetError):
            spec.parse_event("z")

    def test_partial_signal_cannot_be_input(self):
        spec = PartialSpec()
        with pytest.raises(PetriNetError):
            spec.declare_partial_signal("b", SignalKind.INPUT)

    def test_channel_role_conflict(self):
        spec = PartialSpec()
        spec.declare_channel("a", ChannelRole.PASSIVE)
        with pytest.raises(PetriNetError):
            spec.declare_channel("a", ChannelRole.ACTIVE)

    def test_wire_names(self):
        spec = PartialSpec()
        spec.declare_channel("l")
        assert spec.wire_names("l") == ("li", "lo")
        with pytest.raises(PetriNetError):
            spec.wire_names("zz")

    def test_connect_lazily_creates_transitions(self):
        spec = PartialSpec()
        spec.declare_channel("a")
        spec.connect("a?", "a!")
        assert spec.net.has_transition("a?")

    def test_bad_action_kind(self):
        with pytest.raises(ValueError):
            ChannelAction("a", "x")


class TestTwoPhase:
    def test_lr_two_phase_has_toggles(self):
        stg = expand_two_phase(lr_spec())
        assert set(stg.net.transition_names) == {"li~", "lo~", "ri~", "ro~"}
        assert stg.signals["li"] == SignalKind.INPUT
        assert stg.signals["lo"] == SignalKind.OUTPUT

    def test_lr_two_phase_behaviour(self):
        sg = generate_sg(expand_two_phase(lr_spec()))
        # four markings x toggle parity unfolding = 8 binary states
        assert len(sg) == 8
        assert is_consistent(sg)

    def test_two_phase_rejects_constraints(self):
        with pytest.raises(ExpansionError):
            expand(lr_spec(), phases=2,
                   extra_constraints=[InterfaceConstraint.passive("l")])

    def test_unsupported_phase_count(self):
        with pytest.raises(ExpansionError):
            expand(lr_spec(), phases=3)


class TestFourPhase:
    def test_lr_four_phase_events(self):
        stg = expand_four_phase(lr_spec())
        names = set(stg.net.transition_names)
        assert names == {"li+", "li-", "lo+", "lo-", "ri+", "ri-", "ro+", "ro-"}

    def test_rtz_structure_present(self):
        stg = expand_four_phase(lr_spec())
        for wire in ("li", "lo", "ri", "ro"):
            assert stg.net.has_place(f"rtz_{wire}")
            assert stg.net.has_place(f"rdy_{wire}")

    def test_lr_four_phase_is_implementable_modulo_csc(self):
        sg = generate_sg(expand_four_phase(lr_spec()))
        report = check_implementability(sg)
        assert report.consistent
        assert report.speed_independent
        assert report.deadlock_free
        assert len(sg) == 16  # Fig. 2.f

    def test_interface_constraints_enforced(self):
        sg = generate_sg(expand_four_phase(lr_spec()))
        # Passive port l: never reset the request before the acknowledgment,
        # so li- is *not* concurrent with lo+ and fires only after it.
        assert not are_concurrent(sg, "li-", "lo+")
        # But resets of different channels overlap.
        assert are_concurrent(sg, "li-", "ri-")

    def test_free_channel_is_less_constrained(self):
        free = lr_spec()
        free.channels["l"] = ChannelRole.FREE
        free.channels["r"] = ChannelRole.FREE
        sg_free = generate_sg(expand_four_phase(free))
        sg_constrained = generate_sg(expand_four_phase(lr_spec()))
        # Fig 2.e vs Fig 2.f: dropping the interface constraints admits
        # strictly more behaviour.
        assert len(sg_free) > len(sg_constrained)

    def test_initial_values_all_zero(self):
        stg = expand_four_phase(lr_spec())
        assert all(value == 0 for value in stg.initial_values.values())

    def test_fig6_mixed_spec_expands(self):
        stg = expand_four_phase(fig6_spec())
        # channel a contributes ai/ao wires; b gets an inserted b-;
        # c keeps its explicit c+/c-.
        names = set(stg.net.transition_names)
        assert {"ai+", "ao+", "ai-", "ao-", "b+", "b+/1", "b-", "c+", "c-"} <= names
        sg = generate_sg(stg)
        assert is_consistent(sg)

    def test_fig6_two_phase(self):
        stg = expand_two_phase(fig6_spec())
        names = set(stg.net.transition_names)
        assert {"ai~", "ao~", "b~", "b~/1", "c+", "c-"} <= names
        assert is_consistent(generate_sg(stg))

    def test_toggle_in_four_phase_rejected(self):
        spec = PartialSpec()
        spec.declare_signal("c", SignalKind.OUTPUT)
        spec.add("c~")
        spec.net.add_place("p", 1)
        spec.net.add_arc("p", "c~")
        spec.net.add_arc("c~", "p")
        with pytest.raises(ExpansionError):
            expand_four_phase(spec)


class TestConstraints:
    def test_constraint_factories(self):
        passive = InterfaceConstraint.passive("l")
        assert passive.order == ("li+", "lo+", "li-", "lo-")
        active = InterfaceConstraint.active("r")
        assert active.order == ("ro+", "ri+", "ro-", "ri-")

    def test_constraint_missing_event_rejected(self):
        stg = expand_four_phase(lr_spec())
        with pytest.raises(ValueError):
            apply_interface_constraint(
                stg, InterfaceConstraint(("zz+", "li+"), 0))

    def test_normalise_keep_conc(self):
        sg = generate_sg(expand_four_phase(lr_spec()))
        pairs = normalise_keep_conc(sg, [("li-", "ri-")])
        assert pairs == {frozenset(("li-", "ri-"))}

    def test_normalise_expands_signals(self):
        sg = generate_sg(expand_four_phase(lr_spec()))
        pairs = normalise_keep_conc(sg, [("li", "ri")])
        assert frozenset(("li+", "ri+")) in pairs
        assert frozenset(("li-", "ri-")) in pairs
        assert len(pairs) == 4

    def test_normalise_unknown_item(self):
        sg = generate_sg(expand_four_phase(lr_spec()))
        with pytest.raises(ValueError):
            normalise_keep_conc(sg, [("zz", "li")])
