"""Unit tests for the state graph container (repro.sg.graph)."""

import pytest

from repro.petri.stg import Direction, SignalEvent, SignalKind
from repro.sg.graph import StateGraph, StateGraphError


@pytest.fixture
def diamond():
    """a and b concurrent from s0: the four-state diamond."""
    sg = StateGraph("diamond")
    sg.declare_signal("a", SignalKind.OUTPUT)
    sg.declare_signal("b", SignalKind.INPUT)
    sg.declare_event("a+")
    sg.declare_event("b+")
    sg.add_state("s0", (0, 0))
    sg.add_state("s1", (1, 0))
    sg.add_state("s2", (0, 1))
    sg.add_state("s3", (1, 1))
    sg.add_arc("s0", "a+", "s1")
    sg.add_arc("s0", "b+", "s2")
    sg.add_arc("s1", "b+", "s3")
    sg.add_arc("s2", "a+", "s3")
    return sg


class TestConstruction:
    def test_declare_event_parses_label(self, diamond):
        assert diamond.events["a+"] == SignalEvent("a", Direction.RISE)

    def test_declare_event_undeclared_signal(self):
        sg = StateGraph()
        with pytest.raises(StateGraphError):
            sg.declare_event("x+")

    def test_declare_event_explicit(self):
        sg = StateGraph()
        sg.declare_signal("a", SignalKind.OUTPUT)
        sg.declare_event("first_a", SignalEvent("a", Direction.RISE))
        assert sg.events["first_a"].signal == "a"

    def test_redeclare_event_conflict(self, diamond):
        with pytest.raises(StateGraphError):
            diamond.declare_event("a+", SignalEvent("b", Direction.RISE))

    def test_undeclared_arc_label_rejected(self, diamond):
        with pytest.raises(StateGraphError):
            diamond.add_arc("s0", "zz", "s1")

    def test_first_state_is_initial(self):
        sg = StateGraph()
        sg.add_state("x")
        assert sg.initial == "x"

    def test_nondeterminism_rejected(self, diamond):
        with pytest.raises(StateGraphError):
            diamond.add_arc("s0", "a+", "s3")

    def test_duplicate_arc_tolerated(self, diamond):
        diamond.add_arc("s0", "a+", "s1")  # same target: fine
        assert diamond.arc_count() == 4

    def test_code_length_checked(self, diamond):
        with pytest.raises(StateGraphError):
            diamond.add_state("bad", (0, 1, 0))


class TestQueries:
    def test_successors_and_predecessors(self, diamond):
        assert diamond.successors("s0") == {"a+": "s1", "b+": "s2"}
        assert diamond.predecessors("s3") == {("b+", "s1"), ("a+", "s2")}

    def test_enabled_and_target(self, diamond):
        assert set(diamond.enabled("s0")) == {"a+", "b+"}
        assert diamond.target("s0", "a+") == "s1"
        assert diamond.target("s3", "a+") is None

    def test_arcs_iteration(self, diamond):
        assert len(list(diamond.arcs())) == 4

    def test_labels_of_signal(self, diamond):
        assert diamond.labels_of_signal("a") == ["a+"]

    def test_is_input_label(self, diamond):
        assert diamond.is_input_label("b+")
        assert not diamond.is_input_label("a+")

    def test_codes(self, diamond):
        assert diamond.code_of("s3") == (1, 1)
        assert diamond.value_of("s1", "a") == 1
        with pytest.raises(StateGraphError):
            diamond.value_of("s1", "zz")

    def test_code_of_missing(self, diamond):
        diamond.add_state("nocode")
        with pytest.raises(StateGraphError):
            diamond.code_of("nocode")

    def test_code_string_marks_excited(self, diamond):
        assert diamond.code_string("s0") == "0*0*"
        assert diamond.code_string("s3") == "11"

    def test_len_and_contains(self, diamond):
        assert len(diamond) == 4
        assert "s0" in diamond
        assert "zz" not in diamond


class TestReachability:
    def test_reachable_from_initial(self, diamond):
        assert diamond.reachable_from() == {"s0", "s1", "s2", "s3"}

    def test_reachable_from_state(self, diamond):
        assert diamond.reachable_from("s1") == {"s1", "s3"}

    def test_backward_reachable(self, diamond):
        assert diamond.backward_reachable(["s3"]) == {"s0", "s1", "s2", "s3"}

    def test_backward_reachable_within(self, diamond):
        within = {"s1", "s3"}
        assert diamond.backward_reachable(["s3"], within=within) == {"s1", "s3"}

    def test_backward_reachable_target_outside_within(self, diamond):
        assert diamond.backward_reachable(["s3"], within={"s0"}) == set()

    def test_restrict_to_reachable(self, diamond):
        diamond.add_state("orphan", (0, 0))
        removed = diamond.restrict_to_reachable()
        assert removed == 1
        assert "orphan" not in diamond


class TestMutation:
    def test_remove_arc(self, diamond):
        diamond.remove_arc("s0", "a+")
        assert diamond.target("s0", "a+") is None
        assert ("a+", "s0") not in diamond.predecessors("s1")

    def test_remove_missing_arc(self, diamond):
        with pytest.raises(StateGraphError):
            diamond.remove_arc("s3", "a+")

    def test_remove_state(self, diamond):
        diamond.remove_state("s1")
        assert "s1" not in diamond
        assert diamond.target("s0", "a+") is None
        assert ("b+", "s1") not in diamond.predecessors("s3")

    def test_remove_initial_state_clears_initial(self, diamond):
        diamond.remove_state("s0")
        assert diamond.initial is None

    def test_copy_is_independent(self, diamond):
        clone = diamond.copy()
        clone.remove_arc("s0", "a+")
        assert diamond.target("s0", "a+") == "s1"

    def test_copy_preserves_everything(self, diamond):
        clone = diamond.copy("c")
        assert clone.name == "c"
        assert clone.codes == diamond.codes
        assert set(clone.arcs()) == set(diamond.arcs())
        assert clone.initial == diamond.initial


class TestDot:
    def test_dot_output(self, diamond):
        dot = diamond.to_dot()
        assert "digraph" in dot
        assert '"a+"' in dot
        assert dot.count("->") == 4
