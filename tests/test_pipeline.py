"""Unit tests for the staged pipeline core (repro.pipeline)."""

import json
import pathlib
import subprocess
import sys

import pytest

from repro.pipeline import (ArtifactStore, FlowConfig, digest_payload,
                            run_pipeline)
from repro.pipeline.artifacts import sg_from_payload, sg_to_payload
from repro.pipeline.config import STRATEGY_DEFAULTS
from repro.sg.generator import generate_sg
from repro.specs.suite import load, suite_names
from repro.sweep import make_point, tables_grid
from repro.timing.delays import DelayModel


def _report_payloads(result):
    """Canonical JSON of every stage payload of a pipeline result."""
    return json.dumps({stage: res.payload
                       for stage, res in result.results.items()},
                      sort_keys=True)


class TestFlowConfig:
    def test_json_round_trip_over_whole_grid(self):
        # Every Tables 1-2 point (verification on, for full field coverage)
        # must survive FlowConfig JSON serialization bit-exactly.
        grid = tables_grid(specs=["lr", "mmu", "half"], verify=True,
                           verify_max_states=4096, delays=(3, 1, "3/2"))
        assert len(grid) > 10
        for point in grid:
            config = point.flow_config()
            round_tripped = FlowConfig.from_json(config.to_json())
            assert round_tripped == config
            assert round_tripped.digest() == config.digest()

    def test_strategy_defaults_centralized(self):
        assert STRATEGY_DEFAULTS["beam"] == (4, 10_000)
        assert STRATEGY_DEFAULTS["full"] == (6, 20_000)
        full = FlowConfig.create(strategy="full")
        assert full.effective_frontier() == 6
        assert full.effective_max_explored() == 20_000
        beam = FlowConfig.create(strategy="beam", size_frontier=9)
        assert beam.effective_frontier() == 9
        assert beam.effective_max_explored() == 10_000
        none = FlowConfig.create(strategy="none")
        assert none.effective_frontier() is None
        assert none.effective_max_explored() is None

    def test_grid_frontier_defaults_match_flow(self):
        # The sweep grid and the flow resolve the same frontier numbers.
        assert make_point("lr", "beam").frontier == 4
        assert make_point("lr", "full").frontier == 6

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            FlowConfig.create(strategy="dfs")
        with pytest.raises(ValueError):
            FlowConfig.create(verify_model="magic")
        with pytest.raises(KeyError):
            FlowConfig.create(library="no-such-library")

    def test_keep_conc_canonicalized(self):
        one = FlowConfig.create(strategy="full", keep_conc=[("ri-", "li-")])
        two = FlowConfig.create(strategy="full", keep_conc=[("li-", "ri-")])
        assert one == two
        assert one.digest() == two.digest()

    def test_sg_budget_round_trip(self):
        config = FlowConfig.create(strategy="full", sg_max_states=4096,
                                   sg_max_arcs=100_000)
        round_tripped = FlowConfig.from_json(config.to_json())
        assert round_tripped == config
        assert round_tripped.sg_max_states == 4096
        assert round_tripped.sg_max_arcs == 100_000

    def test_sg_budget_absent_in_old_payloads(self):
        # Payloads serialized before the exploration-core budgets existed
        # lack the two keys entirely; they must decode to the defaults.
        config = FlowConfig.create(strategy="full")
        payload = config.to_payload()
        del payload["sg_max_states"], payload["sg_max_arcs"]
        revived = FlowConfig.from_payload(payload)
        assert revived == config
        assert revived.sg_max_states is None
        assert revived.sg_max_arcs is None

    def test_sg_budget_slice_keys_generate_only(self):
        # Default budgets key exactly like the pre-budget era (empty
        # generate slice -> warm stores keep serving old artifacts);
        # setting one invalidates generate and nothing else.
        base = FlowConfig.create(strategy="full")
        assert base.slice_for("generate") == {}
        capped = base.replace(sg_max_states=10_000)
        assert capped.slice_for("generate") == {"max_states": 10_000,
                                                "max_arcs": None}
        for stage in ("expand", "reduce", "resolve", "synthesize",
                      "timing", "verify"):
            assert base.slice_for(stage) == capped.slice_for(stage), stage

    def test_delay_slice_isolated(self):
        base = FlowConfig.create(strategy="full")
        slow = base.replace(delays=DelayModel.by_kind(4, 1, 1))
        assert base.digest() != slow.digest()
        for stage in ("reduce", "resolve", "synthesize", "verify"):
            assert base.slice_for(stage) == slow.slice_for(stage)
        assert base.slice_for("timing") != slow.slice_for("timing")


class TestSgArtifact:
    @pytest.mark.parametrize("name", suite_names())
    def test_payload_round_trip_is_idempotent(self, name):
        sg = generate_sg(load(name))
        payload = sg_to_payload(sg)
        decoded = sg_from_payload(payload)
        assert len(decoded) == len(sg)
        assert decoded.arc_count() == sg.arc_count()
        assert decoded.signals == sg.signals
        # Canonical renaming is a fixpoint: encoding the decoded graph
        # reproduces the payload byte-for-byte.
        assert sg_to_payload(decoded) == payload


class TestResume:
    @pytest.fixture
    def store(self, tmp_path):
        return ArtifactStore(tmp_path / "store")

    def test_warm_rerun_serves_every_stage(self, store):
        config = FlowConfig.create(strategy="full", verify=True,
                                   resynthesise=True)
        cold = run_pipeline(config, stg=load("half"), store=store)
        assert set(cold.stage_status().values()) == {"computed"}
        warm = run_pipeline(config, stg=load("half"), store=store)
        assert set(warm.stage_status().values()) == {"cached"}
        assert _report_payloads(cold) == _report_payloads(warm)

    def test_delays_only_change_recomputes_only_timing(self, store):
        config = FlowConfig.create(strategy="best-first")
        run_pipeline(config, stg=load("vme_read"), store=store)
        slowed = config.replace(delays=DelayModel.by_kind(5, 2, 1))
        warm = run_pipeline(slowed, stg=load("vme_read"), store=store)
        status = warm.stage_status()
        assert status["timing"] == "computed"
        recomputed = {stage for stage, state in status.items()
                      if state == "computed"}
        assert recomputed == {"timing"}

    def test_search_knob_change_keeps_generation(self, store):
        config = FlowConfig.create(strategy="best-first", weight=0.5)
        run_pipeline(config, stg=load("half"), store=store)
        reweighted = config.replace(weight=0.0)
        warm = run_pipeline(reweighted, stg=load("half"), store=store)
        status = warm.stage_status()
        assert status["generate"] == "cached"
        assert status["reduce"] == "computed"

    def test_corrupt_entry_recomputed_gracefully(self, store):
        config = FlowConfig.create(strategy="full")
        cold = run_pipeline(config, stg=load("half"), store=store)
        for path in store.root.glob("*.json"):
            path.write_text("{definitely not json")
        again = run_pipeline(config, stg=load("half"), store=store)
        assert set(again.stage_status().values()) == {"computed"}
        assert _report_payloads(cold) == _report_payloads(again)

    def test_old_schema_entry_ignored(self, store):
        config = FlowConfig.create(strategy="full")
        cold = run_pipeline(config, stg=load("half"), store=store)
        for path in store.root.glob("*.json"):
            entry = json.loads(path.read_text())
            entry["schema"] = 999  # a future (or ancient) layout
            path.write_text(json.dumps(entry))
        again = run_pipeline(config, stg=load("half"), store=store)
        assert set(again.stage_status().values()) == {"computed"}
        assert _report_payloads(cold) == _report_payloads(again)

    def test_stg_text_entry_shares_downstream_artifacts(self, store):
        # Driving the pipeline from raw .g text keys SG generation on the
        # text digest, but the downstream stages are content-addressed and
        # shared with the parsed-STG entry point.
        from repro.specs.suite import source_text
        config = FlowConfig.create(strategy="full")
        cold = run_pipeline(config, stg=load("half"), store=store)
        warm = run_pipeline(config, stg_text=source_text("half"),
                            store=store)
        status = warm.stage_status()
        assert status["generate"] == "computed"  # raw text, another key
        assert status["reduce"] == "cached"
        assert status["synthesize"] == "cached"
        assert _report_payloads(cold) == _report_payloads(warm)

    def test_shared_stages_across_design_points(self, store):
        # Content-addressed keys: two strategies that reach the same
        # reduced graph share every downstream artifact.
        full = FlowConfig.create(strategy="full")
        run_pipeline(full, stg=load("fifo_cell"), store=store)
        none = FlowConfig.create(strategy="none")
        warm = run_pipeline(none, stg=load("fifo_cell"), store=store)
        status = warm.stage_status()
        # fifo_cell admits no valid reduction, so "full" keeps the initial
        # graph and "none" hits its resolve/synthesize/timing artifacts.
        assert status["resolve"] == "cached"
        assert status["synthesize"] == "cached"
        assert status["timing"] == "cached"

    def test_warm_store_byte_identical_across_hash_seeds(self, tmp_path):
        root = pathlib.Path(__file__).resolve().parents[1]
        store_dir = tmp_path / "seed-store"
        program = (
            "import json, sys\n"
            "from repro.pipeline import ArtifactStore, FlowConfig, "
            "run_pipeline\n"
            "from repro.specs.suite import load\n"
            "config = FlowConfig.create(strategy='full', verify=True)\n"
            "result = run_pipeline(config, stg=load('half'), "
            "store=ArtifactStore(sys.argv[1]))\n"
            "payloads = {s: r.payload for s, r in result.results.items()}\n"
            "cached = all(r.cached for r in result.results.values())\n"
            "print(json.dumps({'cached': cached, 'payloads': payloads}, "
            "sort_keys=True))\n")
        outputs = []
        for index, seed in enumerate(("0", "1", "12345")):
            completed = subprocess.run(
                [sys.executable, "-c", program, str(store_dir)], cwd=root,
                env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin",
                     "PYTHONPATH": str(root / "src")},
                capture_output=True, text=True, check=True)
            payload = json.loads(completed.stdout)
            # The first seed populates the store; later seeds must be
            # served entirely from it.
            assert payload["cached"] == (index > 0)
            outputs.append(json.dumps(payload["payloads"], sort_keys=True))
        assert len(set(outputs)) == 1


class TestResultIsolation:
    def test_caller_mutation_cannot_poison_later_runs(self):
        # Graphs handed out by flow results belong to the caller; mutating
        # them must not leak into the pipeline's decode memo.
        from repro.flow import implement
        sg = generate_sg(load("half"))
        first = implement(sg)
        victim = first.resolved_sg
        victim.remove_state(next(s for s in victim.states
                                 if s != victim.initial))
        second = implement(generate_sg(load("half")))
        assert len(second.resolved_sg) == second.resolved_sg.arc_count() == 8
        assert len(second.resolved_sg) != len(victim)


class TestVerifyMaxStates:
    def test_flow_plumbs_the_cap(self):
        from repro.flow import implement, run_flow_stg
        flow = run_flow_stg(load("half"), strategy="full", verify=True,
                            verify_max_states=3)
        assert flow.report.verification.verdict == "state-limit"
        report = implement(generate_sg(load("half")), verify=True,
                           verify_max_states=3)
        assert report.verification.verdict == "state-limit"

    def test_sweep_axis_and_normalization(self):
        point = make_point("half", "full", verify=True, verify_max_states=7)
        assert point.config()["verify_max_states"] == 7
        assert point.flow_config().verify_max_states == 7
        # Without verification the cap is meaningless and normalizes away.
        plain = make_point("half", "full", verify=False, verify_max_states=7)
        assert plain.verify_max_states is None
        assert plain.key() == make_point("half", "full").key()

    def test_cli_round_trip(self, capsys):
        from repro.cli import main
        assert main(["sweep", "--specs", "half", "--strategies", "full",
                     "--verify", "--verify-max-states", "3",
                     "--format", "csv"]) == 0
        out = capsys.readouterr().out
        header, row = [line for line in out.splitlines() if line][:2]
        assert "verify_max_states" in header
        assert "state-limit" in row and ",3" in row
        # The verify command exposes the same cap and fails on the limit.
        assert main(["verify", "half", "--strategies", "full",
                     "--max-states", "3"]) == 1
        assert "state-limit" in capsys.readouterr().out


class TestCacheCli:
    @pytest.fixture
    def populated(self, tmp_path, capsys):
        from repro.cli import main
        store = tmp_path / "store"
        assert main(["sweep", "--specs", "fifo_cell", "--strategies",
                     "none,full", "--store", str(store)]) == 0
        capsys.readouterr()
        return store

    def test_stats(self, populated, capsys):
        from repro.cli import main
        assert main(["cache", "stats", str(populated)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out
        assert "sweep-point" in out
        assert "timing" in out
        assert "engine memo tables" in out

    def test_gc_respects_budget(self, populated, capsys):
        from repro.cli import main
        assert main(["cache", "gc", str(populated), "--max-bytes", "0"]) == 0
        assert "deleted" in capsys.readouterr().out
        assert list(populated.glob("*.json")) == []

    def test_gc_requires_budget(self, populated):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["cache", "gc", str(populated)])

    def test_missing_store_rejected_not_created(self, tmp_path):
        from repro.cli import main
        typo = tmp_path / "no-such-store"
        with pytest.raises(SystemExit):
            main(["cache", "stats", str(typo)])
        assert not typo.exists()

    def test_clear(self, populated, capsys):
        from repro.cli import main
        assert main(["cache", "clear", str(populated)]) == 0
        assert "deleted" in capsys.readouterr().out
        assert list(populated.glob("*.json")) == []


class TestSweepStageAccounting:
    def test_delays_only_sweep_reuses_upstream_stages(self, tmp_path):
        from repro.sweep import ResultStore, render, run_sweep
        store = ResultStore(tmp_path / "store")
        cold = run_sweep(tables_grid(specs=["fifo_cell"],
                                     strategies=("none", "full")),
                         store=store)
        assert cold.computed == 2
        slow = tables_grid(specs=["fifo_cell"], strategies=("none", "full"),
                           delays=(2, 1, 3))
        warm = run_sweep(slow, store=store)
        # New delay model -> new rows, but only timing stages recompute.
        assert warm.computed == 2
        assert set(warm.stage_computed) == {"timing"}
        for stage in ("generate", "reduce", "resolve", "synthesize"):
            assert warm.stage_reused.get(stage, 0) >= 1
        # And the changed delay shows up in the results.
        cold_cycle = [row["cycle_time"] for row in cold.rows]
        warm_cycle = [row["cycle_time"] for row in warm.rows]
        assert cold_cycle != warm_cycle
        assert "stages:" in warm.stage_summary()

    def test_synth_store_round_trip(self, tmp_path, capsys):
        from repro.cli import main
        from repro.petri.parser import save_stg
        from repro.specs.lr import lr_expanded
        spec = tmp_path / "lr.g"
        save_stg(lr_expanded(), str(spec))
        argv = ["synth", str(spec), "--full",
                "--store", str(tmp_path / "store")]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert cold == warm
        assert "lo = ri" in warm


class TestEntryByDigest:
    """Content lookup (the ``GET /artifacts/<digest>`` substrate)."""

    def test_lookup_and_miss(self, tmp_path):
        from repro.pipeline.store import ArtifactStore

        store = ArtifactStore(tmp_path / "store")
        entry = store.put_entry("k" * 64, "generate", {"states": 3})
        found = store.entry_by_digest(entry["digest"])
        assert found is not None and found["payload"] == {"states": 3}
        assert store.entry_by_digest("0" * 64) is None

    def test_fresh_handle_scans_directory(self, tmp_path):
        from repro.pipeline.store import ArtifactStore

        writer = ArtifactStore(tmp_path / "store")
        entry = writer.put_entry("k" * 64, "timing", {"cycle": None})
        reader = ArtifactStore(tmp_path / "store")  # no in-memory index yet
        assert reader.entry_by_digest(entry["digest"]) is not None

    def test_stale_index_recovers_after_external_gc(self, tmp_path):
        from repro.pipeline.store import ArtifactStore

        store = ArtifactStore(tmp_path / "store")
        # The same payload digest under two different stage keys.
        first = store.put_entry("a" * 64, "generate", {"states": 5})
        store.put_entry("b" * 64, "generate", {"states": 5})
        assert store.entry_by_digest(first["digest"]) is not None
        # External deletion of the indexed key (last writer wins: "b"*64).
        (store.root / ("b" * 64 + ".json")).unlink()
        found = store.entry_by_digest(first["digest"])
        assert found is not None, "surviving duplicate key must be found"
