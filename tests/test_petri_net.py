"""Unit tests for the Petri net kernel (repro.petri.net)."""

import pytest

from repro.petri.net import PetriNet, PetriNetError


@pytest.fixture
def ring():
    """A two-transition ring: p0 -> t0 -> p1 -> t1 -> p0, token on p0."""
    net = PetriNet("ring")
    net.add_place("p0", tokens=1)
    net.add_place("p1")
    net.add_transition("t0")
    net.add_transition("t1")
    net.add_arc("p0", "t0")
    net.add_arc("t0", "p1")
    net.add_arc("p1", "t1")
    net.add_arc("t1", "p0")
    return net


class TestConstruction:
    def test_add_place_and_transition(self):
        net = PetriNet()
        net.add_place("p")
        net.add_transition("t", label="x")
        assert net.has_place("p")
        assert net.has_transition("t")
        assert net.label_of("t") == "x"

    def test_add_place_twice_is_idempotent(self):
        net = PetriNet()
        first = net.add_place("p")
        second = net.add_place("p")
        assert first is second
        assert len(net.places) == 1

    def test_add_place_readd_is_idempotent(self):
        net = PetriNet()
        net.add_place("p", tokens=1)
        net.add_place("p", tokens=1)
        assert net.initial_marking() == (1,)

    def test_add_place_readd_can_mark_unmarked_place(self):
        net = PetriNet()
        net.add_place("p")
        net.add_place("p", tokens=2)
        net.add_place("p")  # token-less re-add never clears the marking
        assert net.initial_marking() == (2,)

    def test_add_place_readd_with_conflicting_tokens_rejected(self):
        net = PetriNet()
        net.add_place("p", tokens=1)
        with pytest.raises(PetriNetError):
            net.add_place("p", tokens=2)

    def test_place_and_transition_name_clash_rejected(self):
        net = PetriNet()
        net.add_place("x")
        with pytest.raises(PetriNetError):
            net.add_transition("x")
        net.add_transition("t")
        with pytest.raises(PetriNetError):
            net.add_place("t")

    def test_transition_relabel_conflict_rejected(self):
        net = PetriNet()
        net.add_transition("t", label="a")
        with pytest.raises(PetriNetError):
            net.add_transition("t", label="b")

    def test_arc_between_transitions_creates_implicit_place(self):
        net = PetriNet()
        net.add_transition("t0")
        net.add_transition("t1")
        net.add_arc("t0", "t1")
        assert net.has_place("<t0,t1>")
        assert net.place("<t0,t1>").auto

    def test_arc_between_places_rejected(self):
        net = PetriNet()
        net.add_place("p0")
        net.add_place("p1")
        with pytest.raises(PetriNetError):
            net.add_arc("p0", "p1")

    def test_arc_to_unknown_node_rejected(self):
        net = PetriNet()
        net.add_place("p")
        with pytest.raises(PetriNetError):
            net.add_arc("p", "nope")

    def test_zero_weight_arc_rejected(self):
        net = PetriNet()
        net.add_place("p")
        net.add_transition("t")
        with pytest.raises(PetriNetError):
            net.add_arc("p", "t", weight=0)

    def test_presets_and_postsets(self, ring):
        assert ring.preset_of_transition("t0") == {"p0": 1}
        assert ring.postset_of_transition("t0") == {"p1": 1}
        assert ring.preset_of_place("p1") == {"t0"}
        assert ring.postset_of_place("p1") == {"t1"}

    def test_remove_arc(self, ring):
        ring.remove_arc("p0", "t0")
        assert ring.preset_of_transition("t0") == {}
        assert "t0" not in ring.postset_of_place("p0")

    def test_remove_place_cleans_arcs(self, ring):
        ring.remove_place("p1")
        assert not ring.has_place("p1")
        assert ring.postset_of_transition("t0") == {}
        assert ring.preset_of_transition("t1") == {}

    def test_remove_transition_cleans_arcs(self, ring):
        ring.remove_transition("t0")
        assert not ring.has_transition("t0")
        assert ring.postset_of_place("p0") == set()
        assert ring.preset_of_place("p1") == set()

    def test_rename_transition(self, ring):
        ring.rename_transition("t0", "fire")
        assert ring.has_transition("fire")
        assert not ring.has_transition("t0")
        assert ring.preset_of_transition("fire") == {"p0": 1}
        assert ring.postset_of_place("p0") == {"fire"}

    def test_rename_to_existing_name_rejected(self, ring):
        with pytest.raises(PetriNetError):
            ring.rename_transition("t0", "t1")

    def test_fresh_names(self, ring):
        assert not ring.has_place(ring.fresh_place_name())
        fresh = ring.fresh_transition_name("t0")
        assert fresh != "t0"
        assert not ring.has_transition(fresh)

    def test_contains(self, ring):
        assert "p0" in ring
        assert "t1" in ring
        assert "zz" not in ring


class TestTokenGame:
    def test_initial_marking(self, ring):
        assert ring.initial_marking() == (1, 0)

    def test_marking_dict_roundtrip(self, ring):
        marking = ring.initial_marking()
        assert ring.marking_from_dict(ring.marking_dict(marking)) == marking

    def test_marking_from_dict_unknown_place(self, ring):
        with pytest.raises(PetriNetError):
            ring.marking_from_dict({"nope": 1})

    def test_enabled_transitions(self, ring):
        assert ring.enabled_transitions(ring.initial_marking()) == ["t0"]

    def test_fire_moves_token(self, ring):
        after = ring.fire("t0", ring.initial_marking())
        assert after == (0, 1)
        assert ring.enabled_transitions(after) == ["t1"]

    def test_fire_disabled_raises(self, ring):
        with pytest.raises(PetriNetError):
            ring.fire("t1", ring.initial_marking())

    def test_reachable_markings_of_ring(self, ring):
        assert ring.reachable_markings() == {(1, 0), (0, 1)}

    def test_reachability_limit(self):
        net = PetriNet()
        net.add_place("p", tokens=1)
        net.add_transition("t")
        net.add_arc("p", "t")
        net.add_arc("t", "p")
        net.add_arc("t", "p")  # weight accumulates: unbounded growth
        with pytest.raises(PetriNetError):
            net.reachable_markings(limit=10)

    def test_weighted_arcs(self):
        net = PetriNet()
        net.add_place("p", tokens=2)
        net.add_transition("t")
        net.add_arc("p", "t", weight=2)
        assert net.is_enabled("t", net.initial_marking())
        assert net.fire("t", net.initial_marking()) == (0,)

    def test_concurrent_diamond(self):
        net = PetriNet()
        for place in ("pa", "pb"):
            net.add_place(place, tokens=1)
        net.add_transition("a")
        net.add_transition("b")
        net.add_arc("pa", "a")
        net.add_arc("pb", "b")
        markings = net.reachable_markings()
        assert len(markings) == 4  # both orders commute

    def test_set_initial_validates(self, ring):
        with pytest.raises(PetriNetError):
            ring.set_initial({"nope": 1})


class TestCopy:
    def test_copy_is_deep_for_structure(self, ring):
        clone = ring.copy()
        clone.remove_transition("t0")
        assert ring.has_transition("t0")

    def test_copy_preserves_marking_and_arcs(self, ring):
        clone = ring.copy("clone")
        assert clone.name == "clone"
        assert clone.initial_marking() == ring.initial_marking()
        assert clone.preset_of_transition("t1") == ring.preset_of_transition("t1")

    def test_copy_preserves_labels(self):
        net = PetriNet()
        net.add_transition("t", label=("sig", "+"))
        assert net.copy().label_of("t") == ("sig", "+")
