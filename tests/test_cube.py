"""Unit and property tests for cube/cover algebra (repro.logic.cube)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.cube import DC, Cube, Cover


def cubes(num_vars=4):
    return st.tuples(*[st.sampled_from((0, 1, DC))] * num_vars).map(Cube)


def minterms(num_vars=4):
    return st.tuples(*[st.sampled_from((0, 1))] * num_vars)


class TestCube:
    def test_parse_and_str(self):
        cube = Cube.parse("10-1")
        assert str(cube) == "10-1"
        assert cube.literal_count == 3
        assert cube.num_vars == 4

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            Cube.parse("10z")

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            Cube((0, 3))

    def test_full_cube(self):
        cube = Cube.full(3)
        assert cube.literal_count == 0
        assert cube.size() == 8

    def test_contains(self):
        cube = Cube.parse("1-0")
        assert cube.contains((1, 0, 0))
        assert cube.contains((1, 1, 0))
        assert not cube.contains((0, 0, 0))

    def test_covers(self):
        assert Cube.parse("1--").covers(Cube.parse("10-"))
        assert not Cube.parse("10-").covers(Cube.parse("1--"))

    def test_intersect(self):
        assert Cube.parse("1--").intersect(Cube.parse("-0-")) == Cube.parse("10-")
        assert Cube.parse("1--").intersect(Cube.parse("0--")) is None

    def test_distance(self):
        assert Cube.parse("10-").distance(Cube.parse("11-")) == 1
        assert Cube.parse("10-").distance(Cube.parse("01-")) == 2

    def test_merge_adjacent(self):
        assert Cube.parse("10-").merge(Cube.parse("11-")) == Cube.parse("1--")

    def test_merge_non_adjacent(self):
        assert Cube.parse("10-").merge(Cube.parse("01-")) is None
        assert Cube.parse("10-").merge(Cube.parse("1--")) is None

    def test_cofactor(self):
        cube = Cube.parse("10-")
        assert cube.cofactor(0, 1) == Cube.parse("-0-")
        assert cube.cofactor(0, 0) is None
        assert cube.cofactor(2, 1) == Cube.parse("10-")

    def test_minterms_enumeration(self):
        cube = Cube.parse("1-0")
        assert set(cube.minterms()) == {(1, 0, 0), (1, 1, 0)}
        assert cube.size() == 2

    def test_expression(self):
        assert Cube.parse("10-").to_expression(["a", "b", "c"]) == "a b'"
        assert Cube.full(2).to_expression(["a", "b"]) == "1"

    @given(cubes(), minterms())
    def test_contains_agrees_with_minterms(self, cube, minterm):
        assert cube.contains(minterm) == (minterm in set(cube.minterms()))

    @given(cubes(), cubes())
    def test_intersect_is_set_intersection(self, a, b):
        result = a.intersect(b)
        expected = set(a.minterms()) & set(b.minterms())
        if result is None:
            assert expected == set()
        else:
            assert set(result.minterms()) == expected

    @given(cubes(), cubes())
    def test_merge_is_exact_union(self, a, b):
        merged = a.merge(b)
        if merged is not None:
            assert set(merged.minterms()) == \
                set(a.minterms()) | set(b.minterms())

    @given(cubes(), cubes())
    def test_covers_agrees_with_minterms(self, a, b):
        assert a.covers(b) == (set(b.minterms()) <= set(a.minterms()))


class TestCover:
    def test_constants(self):
        assert Cover.zero(3).is_constant_zero
        assert Cover.one(3).is_constant_one
        assert not Cover.zero(3).contains((0, 0, 0))
        assert Cover.one(3).contains((1, 1, 1))

    def test_from_minterms(self):
        cover = Cover.from_minterms(2, [(0, 0), (1, 1)])
        assert cover.contains((0, 0))
        assert not cover.contains((0, 1))
        assert cover.literal_count == 4

    def test_arity_mismatch_rejected(self):
        cover = Cover(3)
        with pytest.raises(ValueError):
            cover.add(Cube.parse("10"))

    def test_single_literal(self):
        cover = Cover(3, [Cube.parse("-1-")])
        assert cover.single_literal() == (1, 1)
        assert Cover(3, [Cube.parse("-0-")]).single_literal() == (1, 0)
        assert Cover(3, [Cube.parse("11-")]).single_literal() is None

    def test_support(self):
        cover = Cover(3, [Cube.parse("1--"), Cube.parse("-0-")])
        assert cover.support() == {0, 1}

    def test_remove_redundant(self):
        cover = Cover(3, [Cube.parse("1--"), Cube.parse("10-")])
        cleaned = cover.remove_redundant()
        assert cleaned.cube_count == 1
        assert cleaned.cubes[0] == Cube.parse("1--")

    def test_covers_cube(self):
        cover = Cover(2, [Cube.parse("1-"), Cube.parse("-1")])
        assert cover.covers_cube(Cube.parse("11"))
        assert not cover.covers_cube(Cube.parse("--"))

    def test_expression(self):
        cover = Cover(2, [Cube.parse("10"), Cube.parse("01")])
        assert cover.to_expression(["x", "y"]) == "x y' + x' y"
        assert Cover.zero(2).to_expression(["x", "y"]) == "0"
        assert Cover.one(2).to_expression(["x", "y"]) == "1"

    @given(st.lists(cubes(), max_size=5), minterms())
    def test_cover_contains_iff_some_cube_contains(self, cube_list, minterm):
        cover = Cover(4, cube_list)
        assert cover.contains(minterm) == \
            any(c.contains(minterm) for c in cube_list)
