"""CI gate: the public API surface must be documented.

Every module listed in ``PUBLIC_MODULES`` must carry a module docstring
and an ``__all__``; every name it exports must resolve, and every
exported function or class must have a non-trivial docstring.  For
classes, public methods and properties *defined by that class* (not
inherited, not dataclass machinery) must be documented too.

This is deliberately a test rather than a linter config: it runs in
tier-1 on every push, and adding a module to the public surface means
adding it here.
"""

import importlib
import inspect

import pytest

#: The documented public surface: flow, the pipeline core, sweeps,
#: verification and the serving layer.
PUBLIC_MODULES = (
    "repro",
    "repro.flow",
    "repro.pipeline",
    "repro.pipeline.config",
    "repro.pipeline.jobs",
    "repro.pipeline.stages",
    "repro.pipeline.store",
    "repro.sweep",
    "repro.sweep.grid",
    "repro.sweep.report",
    "repro.sweep.runner",
    "repro.verify",
    "repro.serve",
    "repro.serve.app",
    "repro.serve.http",
    "repro.serve.jobs",
    "repro.serve.protocol",
    "repro.serve.tasks",
)


def _documented(obj) -> bool:
    doc = inspect.getdoc(obj)
    return bool(doc and doc.strip())


def _own_members(cls):
    """Public methods/properties defined by ``cls`` itself."""
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            yield name, member
        elif inspect.isfunction(member):
            yield name, member
        elif isinstance(member, (classmethod, staticmethod)):
            yield name, member.__func__


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_documented(module_name):
    module = importlib.import_module(module_name)
    assert _documented(module), f"{module_name} has no module docstring"
    assert hasattr(module, "__all__"), f"{module_name} defines no __all__"
    assert module.__all__, f"{module_name} exports an empty __all__"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_exported_names_documented(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name in module.__all__:
        assert hasattr(module, name), \
            f"{module_name}.__all__ names {name!r} but it does not exist"
        obj = getattr(module, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if not _documented(obj):
                missing.append(f"{module_name}.{name}")
            if inspect.isclass(obj):
                for member_name, member in _own_members(obj):
                    if not _documented(member):
                        missing.append(
                            f"{module_name}.{name}.{member_name}")
    assert not missing, f"undocumented exported names: {missing}"
