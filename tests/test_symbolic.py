"""Unit tests for the symbolic engine (repro.symbolic).

The BDD manager's determinism contract -- identical op sequences build
identical tables regardless of hash seed -- is what lets the rest of the
suite pin node counts and payload digests, so it is tested directly
here, alongside the encoder/reachability corpus counts and the budget
semantics.
"""

import pytest

from repro.explore.budget import BudgetExceeded, ExplorationBudget
from repro.petri.parser import parse_stg
from repro.sg.generator import generate_sg
from repro.specs import suite
from repro.specs.families import (arbiter_tree, counter, fifo_chain,
                                  micropipeline_chain)
from repro.symbolic import (FALSE, TRUE, BDD, SymbolicEncodingError,
                            SymbolicOverflowError, check_coding_symbolic,
                            encode_stg, symbolic_reach)


def _eval(bdd, f, assignment):
    while f > TRUE:
        f = bdd.high_of(f) if assignment[bdd.var_of(f)] else bdd.low_of(f)
    return f


class TestBDDCore:
    def test_terminals(self):
        assert FALSE == 0 and TRUE == 1
        bdd = BDD(2)
        assert bdd.node_count == 2

    def test_hash_consing(self):
        bdd = BDD(3)
        assert bdd.var(1) == bdd.var(1)
        a = bdd.apply_and(bdd.var(0), bdd.var(2))
        b = bdd.apply_and(bdd.var(2), bdd.var(0))
        assert a == b  # semantic equality is id equality

    def test_reduction(self):
        bdd = BDD(2)
        assert bdd.node(0, TRUE, TRUE) == TRUE  # low == high collapses

    def test_identical_op_sequences_build_identical_tables(self):
        def build(bdd):
            x, y, z = bdd.var(0), bdd.var(1), bdd.var(2)
            f = bdd.apply_or(bdd.apply_and(x, y), bdd.apply_xor(y, z))
            return bdd.ite(f, bdd.negate(z), x)

        one, two = BDD(3), BDD(3)
        assert build(one) == build(two)
        assert one.node_count == two.node_count

    def test_connective_truth_tables(self):
        bdd = BDD(2)
        x, y = bdd.var(0), bdd.var(1)
        for a in (0, 1):
            for b in (0, 1):
                env = {0: a, 1: b}
                assert _eval(bdd, bdd.apply_and(x, y), env) == (a & b)
                assert _eval(bdd, bdd.apply_or(x, y), env) == (a | b)
                assert _eval(bdd, bdd.apply_xor(x, y), env) == (a ^ b)
                assert _eval(bdd, bdd.negate(x), env) == 1 - a
                assert _eval(bdd, bdd.diff(x, y), env) == (a & ~b & 1)

    def test_count_and_models(self):
        bdd = BDD(3)
        f = bdd.apply_xor(bdd.var(0), bdd.var(2))  # parity over 0, 2
        assert bdd.count(f, (0, 1, 2)) == 4  # 2 parities x don't-care 1
        models = list(bdd.models(f, (0, 1, 2)))
        assert len(models) == 4
        assert models == sorted(models)  # deterministic 0-first order
        assert models[0] == ((0, 0), (1, 0), (2, 1))
        assert list(bdd.models(f, (0, 1, 2), limit=2)) == models[:2]

    def test_cube(self):
        bdd = BDD(4)
        cube = bdd.cube([(3, 1), (0, 0), (2, 1)])
        assert bdd.count(cube, range(4)) == 2  # var 1 free
        assert _eval(bdd, cube, {0: 0, 1: 0, 2: 1, 3: 1}) == 1
        assert _eval(bdd, cube, {0: 1, 1: 0, 2: 1, 3: 1}) == 0

    def test_restrict_and_exists(self):
        bdd = BDD(2)
        f = bdd.apply_and(bdd.var(0), bdd.var(1))
        assert bdd.restrict(f, 0, 1) == bdd.var(1)
        assert bdd.restrict(f, 0, 0) == FALSE
        assert bdd.exists(f, [0]) == bdd.var(1)
        assert bdd.exists(f, [0, 1]) == TRUE

    def test_and_exists_matches_two_step(self):
        bdd = BDD(4)
        f = bdd.apply_or(bdd.apply_and(bdd.var(0), bdd.var(1)),
                         bdd.var(3))
        g = bdd.apply_xor(bdd.var(1), bdd.var(2))
        assert (bdd.and_exists(f, g, [1, 3])
                == bdd.exists(bdd.apply_and(f, g), [1, 3]))

    def test_rename_shifts_and_validates(self):
        bdd = BDD(4)
        f = bdd.apply_and(bdd.var(0), bdd.var(2))
        assert bdd.rename(f, {0: 1, 2: 3}) \
            == bdd.apply_and(bdd.var(1), bdd.var(3))
        with pytest.raises(ValueError):
            bdd.rename(f, {0: 3, 2: 1})  # crossing: order not preserved

    def test_var_bounds(self):
        bdd = BDD(1)
        with pytest.raises(IndexError):
            bdd.var(1)


def _corpus():
    specs = {name: suite.load(name) for name in suite.suite_names()}
    specs["fifo_chain_3"] = fifo_chain(3)
    specs["micropipeline_chain_2"] = micropipeline_chain(2)
    specs["counter_2"] = counter(2)
    specs["arbiter_tree_2"] = arbiter_tree(2)
    return specs


class TestEncodeReach:
    def test_state_counts_match_explicit(self):
        for name, stg in sorted(_corpus().items()):
            run = symbolic_reach(encode_stg(stg))
            assert run.state_count == len(generate_sg(stg)), name

    def test_strict_bfs_matches_chained(self):
        stg = fifo_chain(2)
        chained = symbolic_reach(encode_stg(stg), chaining=True)
        strict = symbolic_reach(encode_stg(stg), chaining=False)
        assert strict.state_count == chained.state_count
        # Strict levels are the BFS diameter + the empty closing level;
        # chained passes converge much faster.
        assert chained.levels < strict.levels

    def test_level_stats_recorded(self):
        run = symbolic_reach(encode_stg(suite.load("half")))
        assert len(run.level_stats) == run.levels
        for stat in run.level_stats:
            assert {"level", "frontier_nodes", "reached_nodes",
                    "bdd_nodes", "seconds"} <= set(stat)

    def test_dummy_rejected(self):
        stg = suite.load("half")
        stg.net.add_transition("eps", None)
        with pytest.raises(SymbolicEncodingError):
            encode_stg(stg)

    def test_overflow_detected(self):
        stg = parse_stg(".model ovf\n.inputs a\n.outputs b\n.graph\n"
                        "p a+\na+ q\nq b+\nb+ p\n"
                        ".marking { p q }\n.end\n")
        with pytest.raises(SymbolicOverflowError):
            symbolic_reach(encode_stg(stg))

    def test_node_budget_exceedance_is_structured(self):
        stg = fifo_chain(6)
        with pytest.raises(BudgetExceeded) as err:
            symbolic_reach(encode_stg(stg),
                           budget=ExplorationBudget(max_nodes=2000))
        exceedance = err.value.exceedance
        assert exceedance.resource == "nodes"
        assert exceedance.limit == 2000
        assert exceedance.nodes is not None and exceedance.nodes >= 2000
        assert "nodes" in exceedance.diagnose("symbolic reachability")


class TestCodingReports:
    def test_payload_shape(self):
        report = check_coding_symbolic(suite.load("half"))
        payload = report.to_payload()
        assert payload["usc"] and payload["csc"] and payload["consistent"]
        assert payload["states"] == 8
        assert report.engine == "symbolic"
        assert report.bdd_nodes is not None
        # Engine/diagnostics stay out of the canonical payload.
        assert "engine" not in payload and "bdd_nodes" not in payload

    def test_witness_truncation(self):
        report = check_coding_symbolic(suite.load("micropipeline"),
                                       witness_limit=3)
        assert report.truncated
        assert report.usc_pairs == [] and report.conflicts == []
        assert report.usc_pair_count > 3
