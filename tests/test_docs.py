"""The docs/ tree stays real: generated files in sync, links unbroken.

``docs/cli.md`` is generated from the live argparse tree
(``python -m repro.cli --dump-docs``); this test regenerates it and
compares bytes, so a CLI change without a docs regeneration fails CI.
The link checks keep the README/docs cross-references and the example
catalogue from rotting.
"""

import re
from pathlib import Path

import pytest

from repro.cli import dump_docs

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"


def test_cli_docs_in_sync():
    committed = (DOCS / "cli.md").read_text(encoding="utf-8")
    generated = dump_docs()
    assert committed == generated, (
        "docs/cli.md is out of date; regenerate with\n"
        "    PYTHONPATH=src python -m repro.cli --dump-docs > docs/cli.md")


def test_cli_docs_cover_every_command():
    text = (DOCS / "cli.md").read_text(encoding="utf-8")
    for command in ("check", "sg", "synth", "reduce", "verify", "sweep",
                    "serve", "cache", "bench"):
        assert f"## `repro {command}`" in text, f"{command} missing"


@pytest.mark.parametrize("name", ["architecture.md", "formats.md", "cli.md",
                                  "benchmarks.md"])
def test_docs_exist_and_have_titles(name):
    text = (DOCS / name).read_text(encoding="utf-8")
    assert text.startswith("# "), f"{name} lacks a top-level title"


def _markdown_links(text):
    # [label](target) -- ignore http(s) and in-page anchors.
    for target in re.findall(r"\]\(([^)#]+)\)", text):
        if not target.startswith(("http://", "https://")):
            yield target


@pytest.mark.parametrize("path", ["README.md", "docs/architecture.md",
                                  "docs/formats.md", "docs/benchmarks.md"])
def test_relative_links_resolve(path):
    source = REPO / path
    broken = [target for target in _markdown_links(
        source.read_text(encoding="utf-8"))
        if not (source.parent / target).exists()]
    assert not broken, f"{path} has broken links: {broken}"


def test_readme_links_docs_and_changes():
    text = (REPO / "README.md").read_text(encoding="utf-8")
    for target in ("docs/architecture.md", "docs/formats.md", "docs/cli.md",
                   "docs/benchmarks.md", "CHANGES.md"):
        assert target in text, f"README does not link {target}"


def test_every_example_referenced_from_docs():
    corpus = "".join(
        (REPO / name).read_text(encoding="utf-8")
        for name in ("README.md", "docs/architecture.md"))
    for example in sorted((REPO / "examples").glob("*.py")):
        assert example.name in corpus, \
            f"examples/{example.name} is not referenced from the docs"
