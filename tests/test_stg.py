"""Unit tests for signal transition graphs (repro.petri.stg)."""

import pytest

from repro.petri.net import PetriNetError
from repro.petri.stg import STG, Direction, SignalEvent, SignalKind


class TestSignalEvent:
    @pytest.mark.parametrize("text,signal,direction,instance", [
        ("a+", "a", Direction.RISE, 0),
        ("req-", "req", Direction.FALL, 0),
        ("x~", "x", Direction.TOGGLE, 0),
        ("ack+/2", "ack", Direction.RISE, 2),
        ("b_1-/10", "b_1", Direction.FALL, 10),
    ])
    def test_parse(self, text, signal, direction, instance):
        event = SignalEvent.parse(text)
        assert event.signal == signal
        assert event.direction == direction
        assert event.instance == instance

    @pytest.mark.parametrize("bad", ["a", "+a", "a++", "a+/x", "", "a +"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            SignalEvent.parse(bad)

    def test_str_roundtrip(self):
        for text in ("a+", "b-", "c~", "d+/3"):
            assert str(SignalEvent.parse(text)) == text

    def test_base_strips_instance(self):
        assert SignalEvent.parse("a+/5").base == SignalEvent.parse("a+")

    def test_opposite(self):
        assert SignalEvent.parse("a+").opposite() == SignalEvent.parse("a-")
        assert SignalEvent.parse("a-").opposite() == SignalEvent.parse("a+")
        assert SignalEvent.parse("a~").opposite().direction == Direction.TOGGLE

    def test_ordering_is_total(self):
        events = [SignalEvent.parse(t) for t in ("b+", "a-", "a+", "a+/1")]
        assert sorted(events)  # does not raise

    def test_direction_opposite(self):
        assert Direction.RISE.opposite() == Direction.FALL
        assert Direction.FALL.opposite() == Direction.RISE


class TestSTG:
    @pytest.fixture
    def stg(self):
        stg = STG("t")
        stg.declare_signal("a", SignalKind.INPUT)
        stg.declare_signal("b", SignalKind.OUTPUT)
        stg.declare_signal("x", SignalKind.INTERNAL)
        return stg

    def test_signal_partition(self, stg):
        assert stg.inputs == ["a"]
        assert stg.outputs == ["b"]
        assert stg.internals == ["x"]
        assert stg.non_inputs == ["b", "x"]

    def test_redeclare_same_kind_ok(self, stg):
        stg.declare_signal("a", SignalKind.INPUT)

    def test_redeclare_other_kind_rejected(self, stg):
        with pytest.raises(PetriNetError):
            stg.declare_signal("a", SignalKind.OUTPUT)

    def test_kind_of_undeclared(self, stg):
        with pytest.raises(PetriNetError):
            stg.kind_of("zz")

    def test_add_event_requires_declaration(self, stg):
        with pytest.raises(PetriNetError):
            stg.add_event("undeclared+")

    def test_add_event_returns_name(self, stg):
        assert stg.add_event("a+") == "a+"
        assert stg.event_of("a+") == SignalEvent.parse("a+")

    def test_add_fresh_event_picks_new_instance(self, stg):
        first = stg.add_fresh_event("a+")
        second = stg.add_fresh_event("a+")
        assert first == "a+"
        assert second == "a+/1"
        assert stg.event_of(second).instance == 1

    def test_is_input_event(self, stg):
        assert stg.is_input_event(SignalEvent.parse("a+"))
        assert not stg.is_input_event(SignalEvent.parse("b-"))

    def test_transitions_of_signal_and_event(self, stg):
        stg.add_event("a+")
        stg.add_event("a-")
        stg.add_fresh_event("a+")
        assert set(stg.transitions_of_signal("a")) == {"a+", "a-", "a+/1"}
        assert set(stg.transitions_of_event("a+")) == {"a+", "a+/1"}

    def test_chain_and_cycle(self, stg):
        for e in ("a+", "b+", "a-", "b-"):
            stg.add_event(e)
        stg.cycle("a+", "b+", "a-", "b-")
        assert stg.net.has_place("<b-,a+>")
        assert stg.net.preset_of_transition("b+") == {"<a+,b+>": 1}

    def test_mark(self, stg):
        stg.add_event("a+")
        stg.add_event("b+")
        stg.connect("a+", "b+")
        stg.mark("<a+,b+>")
        assert stg.net.marking_dict(stg.net.initial_marking()) == {"<a+,b+>": 1}

    def test_mark_unknown_place(self, stg):
        with pytest.raises(PetriNetError):
            stg.mark("nope")

    def test_initial_values(self, stg):
        stg.set_initial_value("a", 1)
        assert stg.initial_values["a"] == 1
        with pytest.raises(PetriNetError):
            stg.set_initial_value("a", 2)
        with pytest.raises(PetriNetError):
            stg.set_initial_value("zz", 0)

    def test_dummy_transitions(self, stg):
        stg.add_dummy("eps")
        assert stg.event_of("eps") is None
        assert "eps" not in stg.event_names()

    def test_copy_independent(self, stg):
        stg.add_event("a+")
        clone = stg.copy("c")
        clone.declare_signal("new", SignalKind.OUTPUT)
        clone.add_event("new+")
        assert "new" not in stg.signals
        assert not stg.net.has_transition("new+")
