"""The unified benchmark harness: registry, BENCH files, comparison.

Pins the contracts ``repro bench`` lives by: every metric the six legacy
``benchmarks/*_report.json`` shapes reported has a home in the registry
(the mapping in ``docs/benchmarks.md``), the BENCH report round-trips
through JSON, the canonical payload is byte-identical across hash seeds,
and the baseline comparison classifies regressions, improvements,
missing metrics and tolerance edges the way the CI gate assumes.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import bench
from repro.bench import (BenchCase, Check, CheckFailed, CheckSkipped,
                         Metric, RunContext, canonical_payload, compare,
                         run_case, run_cases, select_cases, to_json_bytes)

REPO = Path(__file__).resolve().parents[1]
ENV = {**os.environ, "PYTHONPATH": str(REPO / "src")}


# --------------------------------------------------------------------------
# Registry completeness: the legacy *_report.json metrics all have homes.
# --------------------------------------------------------------------------

#: Where every value of the six legacy report shapes lives now; the
#: prose version of this table is in docs/benchmarks.md.  ``metrics``
#: and ``info`` name registry entries (asserted to exist); ``checks``
#: name case checks that replaced boolean report fields.
LEGACY_HOMES = {
    # engine_scaling_report.json (+ baseline_seed.json, its input anchor)
    "engine_scaling": {
        "metrics": [
            "lr_states", "mmu_states", "par_states",
            "lr_explored", "mmu_explored", "par_explored",
            "lr_best_cost", "mmu_best_cost", "par_best_cost",
            "lr_states_per_second", "mmu_states_per_second",
            "par_states_per_second",
            "lr_explored_per_second", "mmu_explored_per_second",
            "par_explored_per_second",
            "ablation_sweep_seconds", "ablation_sweep_seconds_caches_off",
            "total_explore_seconds",
            "speedup_vs_seed_ablation", "speedup_vs_seed_total_explore",
            "speedup_vs_seed_explored_lr", "speedup_vs_seed_explored_mmu",
            "speedup_vs_seed_explored_par",
        ],
        "checks": ["caches_are_pure", "deterministic_repeat",
                   "seed_speedup_floor"],
        "info": ["suite_names"],
    },
    # sweep_report.json
    "sweep_throughput": {
        "metrics": [
            "points", "serial_computed", "parallel_computed",
            "warm_computed", "warm_cached",
            "serial_seconds", "parallel_seconds", "warm_seconds",
            "points_per_second_serial", "points_per_second_parallel",
            "points_per_second_warm",
            "speedup_parallel_vs_serial", "speedup_warm_vs_cold",
        ],
        "checks": ["sharding_deterministic", "warm_store_sound",
                   "parallel_speedup_floor"],
        "info": [],
    },
    # pipeline_report.json
    "pipeline_resume": {
        "metrics": [
            "points", "cold_computed_points", "warm_computed_points",
            "warm_cached_points", "delays_computed_points",
            "cold_stages_computed_total", "delays_stages_computed_total",
            "cold_stage_slots",
            "cold_seconds", "warm_seconds", "delays_seconds",
            "jobs_seconds", "speedup_warm_vs_cold",
            "speedup_delays_vs_cold",
        ],
        "checks": ["determinism", "warm_store_sound",
                   "stage_granular_resume", "cross_point_sharing"],
        "info": ["specs", "cold_stage_computed", "cold_stage_reused",
                 "delays_stage_computed", "delays_stage_reused"],
    },
    # serve_report.json
    "serve_throughput": {
        "metrics": [
            "concurrent_clients", "dedup_executions", "dedup_hits",
            "dedup_distinct_bodies",
            "cold_stages_computed", "cold_stages_reused",
            "warm_stages_computed", "warm_stages_reused",
            "cold_seconds", "history_seconds", "warm_seconds",
            "cold_rps", "history_rps", "warm_rps", "warm_speedup",
        ],
        "checks": ["warm_computes_nothing", "in_flight_dedup",
                   "worker_count_determinism"],
        "info": ["specs"],
    },
    # verify_report.json
    "verify_throughput": {
        "metrics": [
            "checks_total", "verified", "product_states", "product_arcs",
            "states_per_second", "arcs_per_second", "verify_seconds",
            "full_suite_wall_seconds",
        ],
        "checks": ["all_conforming", "only_micropipeline_skipped",
                   "certificates_deterministic",
                   "structural_probes_as_expected"],
        "info": ["skipped", "structural_probes"],
    },
}


def test_legacy_report_metrics_have_homes():
    for case_name, homes in LEGACY_HOMES.items():
        case = bench.get_case(case_name)
        check_names = {check.name for check in case.checks}
        for metric in homes["metrics"]:
            case.metric(metric)  # raises MissingMetric if absent
        for check in homes["checks"]:
            assert check in check_names, f"{case_name} lost check {check}"
        for key in homes["info"]:
            assert key in case.info_keys, f"{case_name} lost info {key}"


def test_registry_covers_all_seventeen_benchmarks():
    names = bench.case_names()
    assert len(names) == 17
    assert len(set(names)) == 17
    assert set(bench.case_names("quick")) | set(bench.case_names("full")) \
        == set(names)
    # Every registered case is reachable from a thin benchmarks/ shim.
    shims = (REPO / "benchmarks").glob("bench_*.py")
    shim_text = "".join(path.read_text() for path in shims)
    for name in names:
        assert f'pytest_case("{name}"' in shim_text, \
            f"no benchmarks/ shim runs case {name}"


def test_select_cases():
    assert [c.name for c in select_cases(names=["table1_lr"])] \
        == ["table1_lr"]
    assert all(c.tier == "quick" for c in select_cases(tier="quick"))
    assert len(select_cases(tier="all")) == 17
    with pytest.raises(KeyError):
        select_cases(names=["no_such_case"])
    with pytest.raises(KeyError):
        select_cases(tier="leisurely")


# --------------------------------------------------------------------------
# Harness: report shape, failed/skipped checks, canonical payload.
# --------------------------------------------------------------------------

def _toy_case(name="toy", fail=False, skip=False):
    def run(context):
        return {"area": 34, "items": ["a", "b"], "seconds": 0.5}

    def check(result):
        if skip:
            raise CheckSkipped("needs 4 CPUs")
        if fail:
            raise CheckFailed("area exploded")

    return BenchCase(
        name=name, title="Toy", tier="quick", run=run,
        metrics=(Metric("area", "units", direction="lower"),
                 Metric("seconds", "s", direction="lower", measured=True)),
        checks=(Check("area_sane", check),),
        info_keys=("items",))


def test_report_round_trip_and_shape():
    report = run_cases([_toy_case()], printer=None)
    assert report["bench_schema"] == bench.BENCH_SCHEMA
    for key in ("git_rev", "python", "cpu_count", "hash_seed"):
        assert key in report["env"]
    entry = report["cases"]["toy"]
    assert entry["tier"] == "quick"
    assert entry["seconds"] > 0
    assert entry["metrics"]["area"] == {
        "value": 34, "unit": "units", "direction": "lower",
        "measured": False, "gated": True}
    assert entry["checks"] == {"area_sane": "passed"}
    assert entry["skipped_checks"] == []
    assert entry["info"] == {"items": ["a", "b"]}
    assert json.loads(to_json_bytes(report)) == report


def test_failed_check_recorded_not_raised():
    report = run_cases([_toy_case(fail=True)], printer=None)
    assert report["cases"]["toy"]["checks"]["area_sane"] \
        == "failed: area exploded"
    assert bench.failed_checks(report) \
        == ["toy/area_sane: failed: area exploded"]


def test_skipped_check_is_loud():
    report = run_cases([_toy_case(skip=True)], printer=None)
    entry = report["cases"]["toy"]
    assert entry["checks"]["area_sane"] == "skipped: needs 4 CPUs"
    assert entry["skipped_checks"] == ["area_sane: needs 4 CPUs"]
    assert bench.skipped_checks(report) == ["toy/area_sane: needs 4 CPUs"]
    assert bench.failed_checks(report) == []
    # The skip survives into the canonical payload: it is part of the
    # deterministic record, never dropped.
    assert canonical_payload(report)["cases"]["toy"]["skipped_checks"]


def test_canonical_payload_drops_env_and_measured():
    report = run_cases([_toy_case()], printer=None)
    payload = canonical_payload(report)
    assert "env" not in payload
    entry = payload["cases"]["toy"]
    assert "seconds" not in entry
    assert "area" in entry["metrics"]
    assert "seconds" not in entry["metrics"]
    assert entry["info"] == {"items": ["a", "b"]}


def test_run_context_best_of_min_of_n():
    calls = []

    def fn():
        calls.append(1)
        return "result"

    seconds, result = RunContext(quick=False, rounds=3).best_of(
        fn, clear_caches=True)
    assert result == "result" and len(calls) == 3 and seconds >= 0
    calls.clear()
    # Warm timing: one untimed warmup round precedes the 3 timed ones.
    RunContext(quick=False, rounds=3).best_of(fn, clear_caches=False)
    assert len(calls) == 4
    calls.clear()
    RunContext(quick=True).best_of(fn)
    assert len(calls) == 1


# --------------------------------------------------------------------------
# Comparison: the verdict matrix the CI gate rides on.
# --------------------------------------------------------------------------

def _metric(value, direction="neutral", measured=False, gated=None,
            tolerance=None):
    record = {"value": value, "unit": "u", "direction": direction,
              "measured": measured,
              "gated": (not measured) if gated is None else gated}
    if tolerance is not None:
        record["tolerance"] = tolerance
    return record


def _report(metrics, case="toy"):
    return {"bench_schema": bench.BENCH_SCHEMA,
            "env": {}, "cases": {case: {"tier": "quick", "metrics": metrics,
                                        "checks": {},
                                        "skipped_checks": []}}}


def test_compare_exact_drift_is_regression():
    result = compare(_report({"area": _metric(35)}),
                     _report({"area": _metric(34)}))
    assert result.verdict == "fail"
    assert [d.metric for d in result.regressions] == ["area"]


def test_compare_exact_improvement_passes():
    result = compare(_report({"area": _metric(30, direction="lower")}),
                     _report({"area": _metric(34, direction="lower")}))
    assert result.verdict == "pass"
    assert [d.metric for d in result.improvements] == ["area"]


def test_compare_missing_metric_fails():
    result = compare(_report({}), _report({"area": _metric(34)}))
    assert result.verdict == "fail"
    assert [d.metric for d in result.missing] == ["area"]
    assert result.to_dict()["counts"]["missing"] == 1


def test_compare_new_metric_and_not_run_case_pass():
    current = _report({"area": _metric(34), "extra": _metric(1)})
    baseline = _report({"area": _metric(34)})
    baseline["cases"]["other"] = {"tier": "full",
                                  "metrics": {"x": _metric(1)},
                                  "checks": {}, "skipped_checks": []}
    result = compare(current, baseline)
    assert result.verdict == "pass"
    assert result.cases_not_run == ["other"]
    assert [d.metric for d in result.with_status("new")] == ["extra"]


def test_compare_ungated_measured_is_tracked_never_fails():
    result = compare(
        _report({"t": _metric(99.0, "lower", measured=True, gated=False)}),
        _report({"t": _metric(1.0, "lower", measured=True, gated=False)}))
    assert result.verdict == "pass"
    assert [d.status for d in result.deltas] == ["tracked"]


def test_compare_gated_measured_tolerance_edge():
    baseline = _report({"speedup": _metric(4.0, "higher", measured=True,
                                           gated=True, tolerance=0.5)})
    # -50% exactly: within tolerance, ok.
    at_edge = _report({"speedup": _metric(2.0, "higher", measured=True,
                                          gated=True, tolerance=0.5)})
    assert compare(at_edge, baseline).verdict == "pass"
    # Just beyond: regression in the bad direction.
    beyond = _report({"speedup": _metric(1.9, "higher", measured=True,
                                         gated=True, tolerance=0.5)})
    result = compare(beyond, baseline)
    assert result.verdict == "fail"
    assert result.regressions[0].rel_change == pytest.approx(-0.525)
    # Same magnitude in the good direction: improvement, passes.
    better = _report({"speedup": _metric(6.1, "higher", measured=True,
                                         gated=True, tolerance=0.5)})
    assert compare(better, baseline).verdict == "pass"


def test_compare_non_numeric_values():
    ok = compare(_report({"flag": _metric(True)}),
                 _report({"flag": _metric(True)}))
    assert ok.verdict == "pass"
    bad = compare(_report({"flag": _metric(False)}),
                  _report({"flag": _metric(True)}))
    assert bad.verdict == "fail"


def test_compare_schema_mismatch_refused():
    baseline = _report({"area": _metric(34)})
    baseline["bench_schema"] = 99
    with pytest.raises(ValueError, match="schema mismatch"):
        compare(_report({"area": _metric(34)}), baseline)


def test_compare_markdown_mentions_verdict_and_rows():
    result = compare(_report({"area": _metric(35)}),
                     _report({"area": _metric(34)}))
    text = result.to_markdown()
    assert "**fail**" in text and "| area |" in text
    assert "1 regression" in text


# --------------------------------------------------------------------------
# Determinism: canonical bytes identical across hash seeds (subprocess).
# --------------------------------------------------------------------------

_SEED_SCRIPT = """
import sys
from repro.bench import (canonical_payload, run_cases, select_cases,
                         to_json_bytes)
report = run_cases(select_cases(names=["fig1_controller", "fig8_fwdred",
                                       "ablation_search"]),
                   quick=True, printer=None)
sys.stdout.buffer.write(to_json_bytes(canonical_payload(report)))
"""


def test_canonical_payload_identical_across_hash_seeds():
    outputs = []
    for seed in ("0", "12345"):
        proc = subprocess.run(
            [sys.executable, "-c", _SEED_SCRIPT],
            env={**ENV, "PYTHONHASHSEED": seed},
            capture_output=True, cwd=str(REPO), timeout=300)
        assert proc.returncode == 0, proc.stderr.decode()
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1]
    assert b'"measured": true' not in outputs[0]


# --------------------------------------------------------------------------
# CLI round-trip: repro bench --quick, the baseline gate, regressions.
# --------------------------------------------------------------------------

def _bench_cli(*args, cwd):
    return subprocess.run(
        [sys.executable, "-m", "repro", "bench", *args],
        env=ENV, capture_output=True, text=True, cwd=str(cwd), timeout=300)


def test_cli_quick_round_trip_and_regression_gate(tmp_path):
    out = tmp_path / "BENCH_fresh.json"
    proc = _bench_cli("--cases", "fig1_controller,fig8_fwdred",
                      "--quick", "--out", str(out), cwd=tmp_path)
    assert proc.returncode == 0, proc.stderr
    report = json.loads(out.read_text())
    assert set(report["cases"]) == {"fig1_controller", "fig8_fwdred"}
    assert all(outcome == "passed"
               for entry in report["cases"].values()
               for outcome in entry["checks"].values())

    # Against itself: pass, exit 0, verdict file written.
    verdict_path = tmp_path / "verdict.json"
    proc = _bench_cli("--cases", "fig1_controller,fig8_fwdred", "--quick",
                      "--out", str(tmp_path / "BENCH_again.json"),
                      "--against", str(out),
                      "--verdict", str(verdict_path), cwd=tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert "**pass**" in proc.stdout
    assert json.loads(verdict_path.read_text())["verdict"] == "pass"

    # Injected synthetic regression: tamper with an exact metric in the
    # baseline; the gate must exit non-zero and name the metric.
    tampered = json.loads(out.read_text())
    record = tampered["cases"]["fig1_controller"]["metrics"]["states"]
    record["value"] = record["value"] + 1
    bad = tmp_path / "BENCH_tampered.json"
    bad.write_text(json.dumps(tampered))
    proc = _bench_cli("--cases", "fig1_controller,fig8_fwdred", "--quick",
                      "--out", str(tmp_path / "BENCH_gate.json"),
                      "--against", str(bad), cwd=tmp_path)
    assert proc.returncode == 1
    assert "**fail**" in proc.stdout and "states" in proc.stdout


def test_cli_list_names_every_case(tmp_path):
    proc = _bench_cli("--list", cwd=tmp_path)
    assert proc.returncode == 0
    for name in bench.case_names():
        assert name in proc.stdout


def test_default_bench_name_is_versioned():
    name = bench.default_bench_name({"git_rev": "abc1234"})
    assert name == "BENCH_abc1234.json"


# --------------------------------------------------------------------------
# The committed baseline stays loadable and schema-compatible.
# --------------------------------------------------------------------------

def test_committed_baseline_schema():
    baseline_path = REPO / "BENCH_baseline.json"
    baseline = json.loads(baseline_path.read_text())
    assert baseline["bench_schema"] == bench.BENCH_SCHEMA
    assert set(baseline["cases"]) == set(bench.case_names())
    for name, entry in baseline["cases"].items():
        assert not any(outcome.startswith("failed")
                       for outcome in entry["checks"].values()), \
            f"baseline case {name} has failed checks"
