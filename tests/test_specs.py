"""Sanity tests for the benchmark specifications (repro.specs)."""

import pytest

from repro.sg.generator import generate_sg
from repro.sg.properties import (check_implementability, csc_conflicts,
                                 is_consistent, is_speed_independent)
from repro.sg.regions import are_concurrent
from repro.specs.fig1 import fig1_stg
from repro.specs.fragments import fig6_spec, fig8_sg
from repro.specs.lr import TABLE1_KEEP_CONC, lr_expanded, lr_spec, q_module_stg
from repro.specs.mmu import TABLE2_KEEP_CONC, keep_conc_for, mmu_expanded, mmu_spec
from repro.specs.par import PAR_KEEP_CONC, par_expanded, par_manual_stg, par_spec
from repro.hse.expansion import expand_four_phase


class TestFig1:
    def test_shape(self):
        sg = generate_sg(fig1_stg())
        report = check_implementability(sg)
        assert len(sg) == 5
        assert report.consistent and report.speed_independent
        assert report.csc_conflict_count == 1


class TestLR:
    def test_spec_events(self):
        spec = lr_spec()
        assert {str(e) for e in spec.events()} == {"l?", "l!", "r?", "r!"}

    def test_expansion_is_fig_2f(self):
        sg = generate_sg(lr_expanded())
        assert len(sg) == 16
        assert is_speed_independent(sg)
        assert len(csc_conflicts(sg)) == 3

    def test_q_module_is_valid_reshuffling(self):
        sg = generate_sg(q_module_stg())
        assert len(sg) == 8
        assert is_speed_independent(sg)
        # respects both channel protocols
        assert is_consistent(sg)

    def test_keep_conc_table_covers_four_rows(self):
        assert set(TABLE1_KEEP_CONC) == {"li || ri", "li || ro",
                                         "lo || ri", "lo || ro"}
        sg = generate_sg(lr_expanded())
        for name, pairs in TABLE1_KEEP_CONC.items():
            for a, b in pairs:
                assert are_concurrent(sg, a, b), (name, a, b)


class TestPAR:
    def test_spec_structure(self):
        spec = par_spec()
        assert set(spec.channels) == {"a", "b", "c"}

    def test_expansion(self):
        sg = generate_sg(par_expanded())
        assert len(sg) == 76
        assert is_speed_independent(sg)
        # The parallel acknowledgments stay concurrent in the expansion.
        assert are_concurrent(sg, "bi+", "ci+")

    def test_manual_design_is_clean(self):
        sg = generate_sg(par_manual_stg())
        assert is_speed_independent(sg)
        assert not csc_conflicts(sg)
        assert are_concurrent(sg, "bi+", "ci+")

    def test_keep_conc_preservable(self):
        sg = generate_sg(par_expanded())
        for a, b in PAR_KEEP_CONC:
            assert are_concurrent(sg, a, b)


class TestMMU:
    def test_spec_channels(self):
        assert set(mmu_spec().channels) == {"b", "l", "m", "r"}

    def test_expansion_scale(self):
        sg = generate_sg(mmu_expanded())
        assert len(sg) == 264
        assert is_speed_independent(sg)
        assert len(csc_conflicts(sg)) > 0

    def test_keep_conc_tables(self):
        assert len(TABLE2_KEEP_CONC) == 4
        pairs = keep_conc_for(("b", "m"))
        assert ("bi-", "mi-") in pairs
        assert ("bo-", "mo-") in pairs
        assert len(pairs) == 4

    def test_translation_and_read_are_parallel(self):
        sg = generate_sg(mmu_expanded())
        assert are_concurrent(sg, "mo+", "ro+")


class TestFragments:
    def test_fig8_shape(self):
        sg = fig8_sg()
        assert len(sg) == 10
        assert sg.initial == "s0"

    def test_fig6_expands_both_ways(self):
        spec = fig6_spec()
        four = expand_four_phase(spec)
        sg = generate_sg(four)
        assert is_consistent(sg)
        # the channel acts in both roles: ao+ (active) precedes ai+ (passive)
        assert "ao+" in sg.events
