"""Unit tests for SG generation and code assignment (repro.sg.generator)."""

import pytest

from repro.petri.stg import STG, SignalKind
from repro.sg.generator import ConsistencyError, generate_sg
from repro.sg.graph import StateGraphError
from repro.sg.properties import is_consistent
from repro.specs.fig1 import fig1_stg


def simple_cycle(events, marked_arc, inputs=(), name="c"):
    stg = STG(name)
    signals = sorted({e.split("/")[0][:-1] for e in events})
    for signal in signals:
        kind = SignalKind.INPUT if signal in inputs else SignalKind.OUTPUT
        stg.declare_signal(signal, kind)
    for event in events:
        stg.add_event(event)
    stg.cycle(*events)
    stg.mark(marked_arc)
    return stg


class TestGeneration:
    def test_fig1_states_and_codes(self):
        sg = generate_sg(fig1_stg())
        assert len(sg) == 5
        assert sg.signals == ["Req", "Ack"]
        codes = sorted(sg.codes.values())
        assert codes == [(0, 0), (0, 1), (1, 0), (1, 1), (1, 1)]

    def test_fig1_initial_state_code(self):
        sg = generate_sg(fig1_stg())
        # Initial state of Fig. 1.d is 0*1: Ack = 0 (excited), Req = 1.
        assert sg.code_of(sg.initial) == (1, 0)
        assert set(sg.enabled(sg.initial)) == {"Ack+"}

    def test_codes_are_consistent(self):
        sg = generate_sg(fig1_stg())
        assert is_consistent(sg)

    def test_simple_cycle(self):
        stg = simple_cycle(["a+", "b+", "a-", "b-"], "<b-,a+>")
        sg = generate_sg(stg)
        assert len(sg) == 4
        assert sg.code_of(sg.initial) == (0, 0)

    def test_initial_value_inference_from_fall_first(self):
        # Cycle starting with a falling transition forces a = 1 initially.
        stg = simple_cycle(["a-", "b+", "a+", "b-"], "<b-,a->")
        sg = generate_sg(stg)
        assert sg.value_of(sg.initial, "a") == 1

    def test_declared_initial_value_conflict_detected(self):
        stg = simple_cycle(["a-", "b+", "a+", "b-"], "<b-,a->")
        stg.set_initial_value("a", 0)  # contradicts a- being first
        with pytest.raises(ConsistencyError):
            generate_sg(stg)

    def test_inconsistent_stg_rejected(self):
        # a+ twice in a row with no a- between: no consistent encoding.
        stg = STG("bad")
        stg.declare_signal("a", SignalKind.OUTPUT)
        stg.add_event("a+")
        stg.add_fresh_event("a+")
        stg.cycle("a+", "a+/1")
        stg.mark("<a+/1,a+>")
        with pytest.raises(ConsistencyError):
            generate_sg(stg)

    def test_toggle_self_loop_unfolds(self):
        # 2-phase semantics: one marking, but two binary states (a=0, a=1).
        stg = STG("toggle2")
        stg.declare_signal("a", SignalKind.OUTPUT)
        stg.add_event("a~")
        stg.net.add_place("p", tokens=1)
        stg.net.add_arc("p", "a~")
        stg.net.add_arc("a~", "p")
        sg = generate_sg(stg)
        assert len(sg) == 2
        assert {sg.code_of(s) for s in sg.states} == {(0,), (1,)}

    def test_toggle_cycle_unfolds_to_four_phases(self):
        stg = STG("toggle3")
        stg.declare_signal("a", SignalKind.OUTPUT)
        stg.declare_signal("b", SignalKind.OUTPUT)
        stg.add_event("a~")
        stg.add_event("b~")
        stg.cycle("a~", "b~")
        stg.mark("<b~,a~>")
        sg = generate_sg(stg)
        # two markings x two parity phases
        assert len(sg) == 4
        a_index = sg.signal_index("a")
        values = {sg.code_of(s)[a_index] for s in sg.states}
        assert values == {0, 1}

    def test_mixed_toggle_and_rise_consistency_checked(self):
        stg = STG("mixed")
        stg.declare_signal("a", SignalKind.OUTPUT)
        stg.declare_signal("b", SignalKind.OUTPUT)
        stg.add_event("a~")
        stg.add_event("b+")
        stg.cycle("a~", "b+")  # b+ fires twice without b-: inconsistent
        stg.mark("<b+,a~>")
        with pytest.raises(ConsistencyError):
            generate_sg(stg)

    def test_dummy_rejected(self):
        stg = STG("dummy")
        stg.declare_signal("a", SignalKind.OUTPUT)
        stg.add_event("a+")
        stg.add_dummy("eps")
        stg.cycle("a+", "eps")
        stg.mark("<eps,a+>")
        with pytest.raises(StateGraphError):
            generate_sg(stg)

    def test_state_limit(self):
        stg = simple_cycle(["a+", "b+", "a-", "b-"], "<b-,a+>")
        with pytest.raises(StateGraphError):
            generate_sg(stg, limit=2)

    def test_unused_signal_gets_declared_value(self):
        stg = simple_cycle(["a+", "b+", "a-", "b-"], "<b-,a+>")
        stg.declare_signal("idle", SignalKind.INPUT)
        stg.set_initial_value("idle", 1)
        sg = generate_sg(stg)
        assert all(sg.value_of(s, "idle") == 1 for s in sg.states)

    def test_arc_labels_are_transition_names(self):
        sg = generate_sg(fig1_stg())
        assert set(sg.events) == {"Req+", "Req-", "Ack+", "Ack-"}

    def test_concurrent_events_make_diamond(self):
        stg = STG("conc")
        stg.declare_signal("a", SignalKind.OUTPUT)
        stg.declare_signal("b", SignalKind.OUTPUT)
        for e in ("a+", "b+", "a-", "b-"):
            stg.add_event(e)
        # a and b handshakes fully independent
        stg.cycle("a+", "a-")
        stg.cycle("b+", "b-")
        stg.mark("<a-,a+>", "<b-,b+>")
        sg = generate_sg(stg)
        assert len(sg) == 4
