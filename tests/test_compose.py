"""Unit tests for STG parallel composition (repro.petri.compose)."""

import pytest

from repro.petri.compose import compose, compose_all
from repro.petri.net import PetriNetError
from repro.petri.stg import STG, SignalKind
from repro.sg.generator import generate_sg


def cycle_stg(name, signals, events, marked_arc, kinds=None):
    stg = STG(name)
    kinds = kinds or {}
    for signal in signals:
        stg.declare_signal(signal, kinds.get(signal, SignalKind.OUTPUT))
    for event in events:
        stg.add_event(event)
    stg.cycle(*events)
    stg.mark(marked_arc)
    for signal in signals:
        stg.set_initial_value(signal, 0)
    return stg


class TestCompose:
    def test_private_events_interleave(self):
        left = cycle_stg("L", ["a"], ["a+", "a-"], "<a-,a+>")
        right = cycle_stg("R", ["b"], ["b+", "b-"], "<b-,b+>")
        product = compose(left, right)
        sg = generate_sg(product)
        assert len(sg) == 4  # full interleaving of two independent cycles

    def test_shared_events_synchronise(self):
        left = cycle_stg("L", ["a", "b"], ["a+", "b+", "a-", "b-"], "<b-,a+>")
        right = cycle_stg("R", ["b", "c"], ["b+", "c+", "b-", "c-"], "<c-,b+>")
        product = compose(left, right)
        sg = generate_sg(product)
        # b transitions are fused: both components step through them together.
        assert len(product.transitions_of_signal("b")) == 2
        assert len(sg) > 0

    def test_signal_kind_resolution_input_loses(self):
        left = STG("L")
        left.declare_signal("x", SignalKind.INPUT)
        left.add_event("x+")
        left.add_event("x-")
        left.cycle("x+", "x-")
        left.mark("<x-,x+>")
        right = cycle_stg("R", ["x"], ["x+", "x-"], "<x-,x+>")
        product = compose(left, right)
        assert product.signals["x"] == SignalKind.OUTPUT

    def test_conflicting_kinds_rejected(self):
        left = cycle_stg("L", ["x"], ["x+", "x-"], "<x-,x+>")
        right = STG("R")
        right.declare_signal("x", SignalKind.INTERNAL)
        right.add_event("x+")
        right.add_event("x-")
        right.cycle("x+", "x-")
        right.mark("<x-,x+>")
        with pytest.raises(PetriNetError):
            compose(left, right)

    def test_composition_preserves_initial_values(self):
        left = cycle_stg("L", ["a"], ["a+", "a-"], "<a-,a+>")
        left.set_initial_value("a", 0)
        right = cycle_stg("R", ["b"], ["b+", "b-"], "<b-,b+>")
        product = compose(left, right)
        assert product.initial_values["a"] == 0
        assert product.initial_values["b"] == 0

    def test_compose_all(self):
        parts = [cycle_stg(n, [s], [f"{s}+", f"{s}-"], f"<{s}-,{s}+>")
                 for n, s in (("A", "a"), ("B", "b"), ("C", "c"))]
        product = compose_all(parts, name="abc")
        assert product.name == "abc"
        assert len(generate_sg(product)) == 8

    def test_compose_all_empty_rejected(self):
        with pytest.raises(PetriNetError):
            compose_all([])

    def test_synchronised_behaviour_is_constrained(self):
        # A sequential left component forces order on the shared event that
        # the right component alone would leave free.
        left = cycle_stg("L", ["a", "s"], ["a+", "s+", "a-", "s-"], "<s-,a+>")
        right = cycle_stg("R", ["s"], ["s+", "s-"], "<s-,s+>")
        product = compose(left, right)
        sg = generate_sg(product)
        # s+ must wait for a+: no state enables s+ before a+ has fired.
        initial_enabled = sg.enabled(sg.initial)
        assert any(label.startswith("a+") for label in initial_enabled)
        assert not any(label.startswith("s+") for label in initial_enabled)
