"""Unit tests for structural/behavioural net analysis (repro.petri.analysis)."""

import pytest

from repro.petri.analysis import (bound, dead_transitions, deadlock_markings,
                                  is_deadlock_free, is_free_choice,
                                  is_marked_graph, is_safe, is_state_machine,
                                  isolated_places, live_transitions,
                                  redundant_places, strongly_connected)
from repro.petri.net import PetriNet
from repro.specs.fig1 import fig1_stg
from repro.specs.lr import lr_expanded, q_module_stg


def ring(tokens=1):
    net = PetriNet("ring")
    net.add_place("p0", tokens=tokens)
    net.add_place("p1")
    net.add_transition("t0")
    net.add_transition("t1")
    net.add_arc("p0", "t0")
    net.add_arc("t0", "p1")
    net.add_arc("p1", "t1")
    net.add_arc("t1", "p0")
    return net


def choice_net():
    """One marked place feeding two transitions (free choice)."""
    net = PetriNet("choice")
    net.add_place("p", tokens=1)
    net.add_transition("a")
    net.add_transition("b")
    net.add_arc("p", "a")
    net.add_arc("p", "b")
    return net


class TestStructure:
    def test_ring_is_marked_graph(self):
        assert is_marked_graph(ring())

    def test_choice_is_not_marked_graph(self):
        assert not is_marked_graph(choice_net())

    def test_ring_is_state_machine(self):
        assert is_state_machine(ring())

    def test_choice_is_free_choice(self):
        assert is_free_choice(choice_net())

    def test_non_free_choice(self):
        net = choice_net()
        net.add_place("q", tokens=1)
        net.add_arc("q", "a")  # a has preset {p, q}, b has {p}: not FC
        assert not is_free_choice(net)

    def test_lr_expansion_is_not_marked_graph(self):
        # interface-constraint places fan out to single transitions, but the
        # rtz/rdy places of the RTZ structure keep it a marked graph here;
        # the q-module chain definitely is one.
        assert is_marked_graph(q_module_stg().net)

    def test_fig1_is_marked_graph(self):
        assert is_marked_graph(fig1_stg().net)


class TestBehaviour:
    def test_ring_is_safe(self):
        assert is_safe(ring())

    def test_two_tokens_not_safe(self):
        assert not is_safe(ring(tokens=2))
        assert bound(ring(tokens=2)) == 2

    def test_deadlock_detection(self):
        net = PetriNet()
        net.add_place("p", tokens=1)
        net.add_transition("t")
        net.add_arc("p", "t")  # t consumes and never returns the token
        assert not is_deadlock_free(net)
        assert deadlock_markings(net) == [(0,)]

    def test_ring_deadlock_free(self):
        assert is_deadlock_free(ring())

    def test_live_and_dead_transitions(self):
        net = ring()
        net.add_place("never")
        net.add_transition("stuck")
        net.add_arc("never", "stuck")
        assert live_transitions(net) == {"t0", "t1"}
        assert dead_transitions(net) == {"stuck"}

    def test_isolated_places(self):
        net = ring()
        net.add_place("island")
        assert isolated_places(net) == {"island"}

    def test_redundant_place_detected(self):
        net = ring()
        # A place marked with plenty of tokens that never constrains t0.
        net.add_place("slack", tokens=5)
        net.add_arc("slack", "t0")
        net.add_arc("t0", "slack")
        assert "slack" in redundant_places(net)
        assert "p0" not in redundant_places(net)

    def test_strongly_connected(self):
        assert strongly_connected(ring())
        net = ring()
        net.add_place("tail")
        net.add_transition("out")
        net.add_arc("p0", "out")
        net.add_arc("out", "tail")
        assert not strongly_connected(net)

    def test_benchmarks_are_safe_and_live(self):
        for stg in (fig1_stg(), q_module_stg(), lr_expanded()):
            assert is_safe(stg.net), stg.name
            assert is_deadlock_free(stg.net), stg.name
            assert not dead_transitions(stg.net), stg.name
