"""Integration tests for the end-to-end flow (repro.flow)."""

import pytest

from repro.flow import FlowResult, ImplementationReport, implement, implement_stg, run_flow
from repro.sg.generator import generate_sg
from repro.specs.fig1 import fig1_stg
from repro.specs.lr import TABLE1_KEEP_CONC, lr_expanded, lr_spec, q_module_stg
from repro.timing.delays import DelayModel


class TestImplement:
    def test_q_module_report(self):
        report = implement_stg(q_module_stg(), name="Q-module (hand)")
        assert report.csc_resolved
        assert report.csc_signal_count == 1
        assert report.area > 0
        assert report.cycle_time > 0
        assert report.input_event_count == 4
        name, area, csc, cycle, inputs = report.row()
        assert name == "Q-module (hand)"
        assert (area, csc, inputs) == (report.area, 1, 4)

    def test_unresolved_falls_back_to_estimate(self):
        report = implement(generate_sg(fig1_stg()))
        assert not report.csc_resolved
        assert report.circuit is None
        assert report.area == report.area_estimate
        assert report.area is not None

    def test_resynthesise_flag(self):
        report = implement_stg(q_module_stg(), resynthesise=True)
        assert report.stg is not None
        assert set(report.stg.signals) >= {"li", "lo", "ri", "ro"}

    def test_custom_delays(self):
        fast = implement_stg(q_module_stg(),
                             delays=DelayModel.by_kind(1, 1, 1))
        slow = implement_stg(q_module_stg(),
                             delays=DelayModel.by_kind(4, 1, 1))
        assert fast.cycle_time < slow.cycle_time


class TestRunFlow:
    def test_max_concurrency(self):
        result = run_flow(lr_spec(), reduce=False, name="max")
        assert len(result.initial_sg) == 16
        assert result.exploration is None
        assert result.report.csc_signal_count == 2
        assert result.report.csc_resolved

    def test_full_reduction_flow(self):
        result = run_flow(lr_spec(), full=True, name="full")
        assert result.report.area == 0
        assert result.report.csc_signal_count == 0
        assert result.report.circuit.equations["lo"] == "lo = ri"

    def test_beam_flow_improves(self):
        result = run_flow(lr_spec(), name="auto")
        assert result.exploration is not None
        assert result.exploration.best_cost <= result.exploration.initial_cost
        assert result.report.csc_resolved

    def test_keep_conc_flow(self):
        from repro.sg.regions import are_concurrent
        result = run_flow(lr_spec(), full=True,
                          keep_conc=TABLE1_KEEP_CONC["li || ri"])
        assert are_concurrent(result.reduced_sg, "li-", "ri-")

    def test_two_phase_flow_skips_logic(self):
        # 2-phase refinements have toggle events: the SG generates, the
        # timing works, but logic extraction is a 4-phase concept.
        result = run_flow(lr_spec(), phases=2, reduce=False,
                          max_csc_signals=0)
        assert len(result.initial_sg) == 8
