"""Property-based tests over the reduction pipeline.

Hypothesis drives random *sequences* of forward reductions on the LR
expansion and checks that every intermediate SG maintains the invariants
Definition 5.1 promises, that the heuristic cost estimator stays consistent
with the exact one, and that insertion preserves the projected behaviour.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.complexity import estimate_logic_complexity
from repro.reduction.fwdred import forward_reduction, reducible_pairs
from repro.sg.generator import generate_sg
from repro.sg.properties import (csc_conflicts, is_commutative, is_consistent,
                                 is_output_persistent)
from repro.specs.lr import lr_expanded


@pytest.fixture(scope="module")
def lr_max():
    return generate_sg(lr_expanded())


@st.composite
def reduction_paths(draw):
    """A list of indices selecting reductions along a random path."""
    return draw(st.lists(st.integers(min_value=0, max_value=10_000),
                         min_size=0, max_size=6))


def apply_path(sg, picks):
    """Apply a sequence of valid reductions chosen by the random indices."""
    current = sg
    trail = []
    for pick in picks:
        pairs = sorted(reducible_pairs(current))
        if not pairs:
            break
        before, delayed = pairs[pick % len(pairs)]
        result = forward_reduction(current, delayed, before)
        if result.valid:
            current = result.sg
            trail.append((before, delayed))
    return current, trail


class TestReductionPathProperties:
    @given(reduction_paths())
    @settings(max_examples=25, deadline=None)
    def test_invariants_along_any_path(self, lr_max, picks):
        reduced, trail = apply_path(lr_max, picks)
        assert is_consistent(reduced)
        assert is_commutative(reduced)
        assert is_output_persistent(reduced)
        assert reduced.initial == lr_max.initial

    @given(reduction_paths())
    @settings(max_examples=25, deadline=None)
    def test_states_and_arcs_shrink_monotonically(self, lr_max, picks):
        reduced, trail = apply_path(lr_max, picks)
        assert set(reduced.states) <= set(lr_max.states)
        assert set(reduced.arcs()) <= set(lr_max.arcs())
        if trail:
            assert reduced.arc_count() < lr_max.arc_count()

    @given(reduction_paths())
    @settings(max_examples=25, deadline=None)
    def test_no_event_ever_disappears(self, lr_max, picks):
        reduced, _ = apply_path(lr_max, picks)
        original = {label for _, label, _ in lr_max.arcs()}
        surviving = {label for _, label, _ in reduced.arcs()}
        assert surviving == original

    @given(reduction_paths())
    @settings(max_examples=25, deadline=None)
    def test_inputs_never_delayed(self, lr_max, picks):
        reduced, _ = apply_path(lr_max, picks)
        for state in reduced.states:
            original_inputs = {label for label in lr_max.enabled(state)
                               if lr_max.is_input_label(label)}
            surviving_inputs = {label for label in reduced.enabled(state)
                                if reduced.is_input_label(label)}
            assert surviving_inputs == original_inputs

    @given(reduction_paths())
    @settings(max_examples=15, deadline=None)
    def test_fast_estimate_is_sound(self, lr_max, picks):
        # The fast estimator may be off by a literal or two but must agree
        # with the exact one on which functions exist and never undercut a
        # *valid* exact cover (fast covers are valid SOPs too).
        reduced, _ = apply_path(lr_max, picks)
        fast = estimate_logic_complexity(reduced, fast=True)
        exact = estimate_logic_complexity(reduced, fast=False, exact=True)
        assert set(fast.per_signal_literals) == set(exact.per_signal_literals)
        assert fast.csc_conflict_codes == exact.csc_conflict_codes
        for signal, exact_literals in exact.per_signal_literals.items():
            assert fast.per_signal_literals[signal] >= exact_literals

    @given(reduction_paths())
    @settings(max_examples=15, deadline=None)
    def test_conflict_count_never_grows(self, lr_max, picks):
        reduced, _ = apply_path(lr_max, picks)
        assert len(csc_conflicts(reduced)) <= len(csc_conflicts(lr_max)) + 0
