"""Unit tests for region-based STG re-derivation (repro.sg.resynthesis)."""

import pytest

from repro.petri.analysis import is_safe
from repro.sg.generator import generate_sg
from repro.sg.regions import excitation_region
from repro.sg.resynthesis import (excitation_closure_holds, is_region,
                                  minimal_preregions, resynthesise_stg,
                                  verify_resynthesis)
from repro.specs.fig1 import fig1_stg
from repro.specs.lr import lr_expanded, q_module_stg, TABLE1_KEEP_CONC
from repro.reduction.explore import full_reduction


@pytest.fixture(scope="module")
def fig1():
    return generate_sg(fig1_stg())


class TestRegions:
    def test_whole_state_set_is_not_a_region(self, fig1):
        assert not is_region(fig1, set(fig1.states))
        assert not is_region(fig1, set())

    def test_er_based_candidates(self, fig1):
        for label in fig1.events:
            for region in minimal_preregions(fig1, label):
                assert is_region(fig1, set(region))
                assert excitation_region(fig1, label) <= region

    def test_preregions_are_minimal(self, fig1):
        for label in fig1.events:
            regions = minimal_preregions(fig1, label)
            for region in regions:
                assert not any(other < region for other in regions)

    def test_excitation_closure(self, fig1):
        for label in fig1.events:
            preregions = minimal_preregions(fig1, label)
            assert excitation_closure_holds(fig1, label, preregions), label

    def test_unknown_event_has_no_preregions(self, fig1):
        assert minimal_preregions(fig1, "Req+") != []


class TestResynthesis:
    def test_fig1_roundtrip(self, fig1):
        stg = resynthesise_stg(fig1)
        assert verify_resynthesis(fig1, stg)
        # The paper's Fig. 1.c has five places.
        assert len(stg.net.places) == 5

    def test_fig1_roundtrip_is_safe(self, fig1):
        stg = resynthesise_stg(fig1)
        assert is_safe(stg.net)

    def test_sequential_cycle_roundtrip(self):
        sg = generate_sg(q_module_stg())
        stg = resynthesise_stg(sg)
        assert verify_resynthesis(sg, stg)

    def test_max_concurrency_lr_roundtrip(self):
        sg = generate_sg(lr_expanded())
        stg = resynthesise_stg(sg)
        assert verify_resynthesis(sg, stg)

    def test_reduced_lr_roundtrip(self):
        sg = generate_sg(lr_expanded())
        reduced = full_reduction(sg, keep_conc=TABLE1_KEEP_CONC["li || ri"])
        stg = resynthesise_stg(reduced)
        assert verify_resynthesis(reduced, stg)

    def test_resynthesis_preserves_signals(self, fig1):
        stg = resynthesise_stg(fig1)
        assert stg.signals.keys() == fig1.kinds.keys()
        assert stg.initial_values == {"Req": 1, "Ack": 0}

    def test_no_pruning_still_verifies(self, fig1):
        stg = resynthesise_stg(fig1, prune_redundant=False)
        assert verify_resynthesis(fig1, stg)
        assert len(stg.net.places) >= 5
