"""Tests for the observability spine (repro.obs) and its wiring.

Unit-level: span nesting/ordering, the Chrome trace-event rendering,
Prometheus text exposition, heartbeat throttling with an injected clock,
and the budget exceedance diagnostics.  Integration: spans recorded
through the real pipeline (one per stage, reuse visible), the serve
surfaces (``/metrics``, ``/jobs/<id>/trace``, ``/stats``), and the hard
invariant of the whole layer -- with tracing on or off, every artifact
digest, certificate and bench canonical payload is byte-identical,
asserted in subprocesses across ``PYTHONHASHSEED`` values.
"""

import asyncio
import json
import os
import subprocess
import sys
import urllib.request
from pathlib import Path

import pytest

from repro.explore.budget import (BudgetExceedance, BudgetExceeded,
                                  ExplorationBudget)
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import Heartbeat, clear_heartbeat, emit, set_heartbeat
from repro.obs.trace import (TraceRecorder, current, load_trace, recording,
                             render_summary, span, summarize, write_trace)


@pytest.fixture(autouse=True)
def _clean_hooks():
    clear_heartbeat()
    yield
    clear_heartbeat()


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
class TestTrace:
    def test_span_is_noop_without_recorder(self):
        assert current() is None
        with span("stage:generate", x=1) as record:
            assert record is None

    def test_nesting_and_ordering(self):
        recorder = TraceRecorder(meta={"command": "test"})
        with recording(recorder):
            with span("pipeline") as outer:
                with span("stage:generate") as inner:
                    with span("frontier:level", level=0):
                        pass
                    with span("frontier:level", level=1):
                        pass
                with span("stage:reduce"):
                    pass
            assert outer is not None and inner is not None
        tree = recorder.to_tree()
        assert tree["trace_schema"] == 1
        assert tree["meta"] == {"command": "test"}
        (root,) = tree["spans"]
        assert root["name"] == "pipeline"
        assert [child["name"] for child in root["children"]] == [
            "stage:generate", "stage:reduce"]
        levels = root["children"][0]["children"]
        assert [node["attrs"]["level"] for node in levels] == [0, 1]

    def test_set_attaches_attrs_after_entry(self):
        recorder = TraceRecorder()
        with recording(recorder):
            with span("stage:reduce") as record:
                record.set(digest="abc", cached=False)
        node = recorder.to_tree()["spans"][0]
        assert node["attrs"] == {"cached": False, "digest": "abc"}

    def test_timings_are_positive_and_nested(self):
        recorder = TraceRecorder()
        with recording(recorder):
            with span("outer"):
                with span("inner"):
                    sum(range(1000))
        outer = recorder.to_tree()["spans"][0]
        inner = outer["children"][0]
        assert outer["wall_s"] >= inner["wall_s"] >= 0.0
        assert inner["start_s"] >= outer["start_s"]

    def test_recorder_restored_after_block(self):
        recorder = TraceRecorder()
        with recording(recorder):
            assert current() is recorder
        assert current() is None

    def test_chrome_schema(self):
        recorder = TraceRecorder(meta={"command": "synth"})
        with recording(recorder):
            with span("pipeline"):
                with span("stage:generate", digest="abc"):
                    pass
        chrome = recorder.to_chrome()
        assert chrome["displayTimeUnit"] == "ms"
        assert chrome["otherData"] == {"command": "synth"}
        events = chrome["traceEvents"]
        assert [event["name"] for event in events] == ["pipeline",
                                                       "stage:generate"]
        for event in events:
            assert event["ph"] == "X"
            assert set(event) >= {"name", "cat", "ph", "ts", "dur",
                                  "pid", "tid", "args"}
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
            assert event["dur"] >= 0.0
        assert events[0]["cat"] == "pipeline"
        assert events[1]["cat"] == "stage"
        assert events[1]["args"] == {"digest": "abc"}
        json.dumps(chrome)  # must be JSON-serializable as-is

    def test_write_load_round_trip(self, tmp_path):
        recorder = TraceRecorder()
        with recording(recorder), span("pipeline"):
            pass
        for fmt, marker in (("json", "spans"), ("chrome", "traceEvents")):
            path = tmp_path / f"t.{fmt}"
            write_trace(recorder, str(path), fmt)
            payload = load_trace(str(path))
            assert marker in payload

    def test_write_rejects_unknown_format(self, tmp_path):
        with pytest.raises(ValueError, match="unknown trace format"):
            write_trace(TraceRecorder(), str(tmp_path / "t"), "xml")

    def test_load_rejects_non_trace_json(self, tmp_path):
        path = tmp_path / "not_a_trace.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ValueError, match="not a repro trace"):
            load_trace(str(path))

    def test_summarize_tree_self_time(self):
        recorder = TraceRecorder()
        with recording(recorder):
            with span("pipeline"):
                with span("stage:generate"):
                    pass
                with span("stage:generate"):
                    pass
        totals = summarize(recorder.to_tree())
        assert totals["stage:generate"]["count"] == 2
        assert totals["pipeline"]["count"] == 1
        pipeline = totals["pipeline"]
        assert pipeline["self_s"] <= pipeline["wall_s"]

    def test_summarize_chrome_equals_wall(self):
        recorder = TraceRecorder()
        with recording(recorder), span("stage:reduce"):
            pass
        totals = summarize(recorder.to_chrome())
        entry = totals["stage:reduce"]
        assert entry["self_s"] == entry["wall_s"]

    def test_render_summary_is_a_table(self):
        recorder = TraceRecorder()
        with recording(recorder), span("stage:reduce"):
            pass
        text = render_summary(recorder.to_tree())
        lines = text.splitlines()
        assert lines[0].split() == ["span", "count", "wall", "s", "self",
                                    "s", "cpu", "s"]
        assert any(line.startswith("stage:reduce") for line in lines)


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total").inc()
        reg.counter("jobs_total").inc(2)
        reg.gauge("depth").set(7)
        reg.gauge("depth").dec(3)
        assert reg.value("jobs_total") == 3
        assert reg.value("depth") == 4

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            MetricsRegistry().counter("c").inc(-1)

    def test_labels_identify_series(self):
        reg = MetricsRegistry()
        reg.counter("stages", stage="generate").inc()
        reg.counter("stages", stage="reduce").inc(5)
        assert reg.value("stages", stage="generate") == 1
        assert reg.value("stages", stage="reduce") == 5
        assert reg.value("stages", stage="nope") is None

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already a counter"):
            reg.gauge("x")

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        hist = reg.histogram("wait", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(55.55)
        assert hist.bucket_counts == [1, 2, 3]  # cumulative, +Inf == count

    def test_histogram_buckets_must_be_sorted(self):
        with pytest.raises(ValueError, match="sorted"):
            MetricsRegistry().histogram("h", buckets=(1.0, 0.1))

    def test_snapshot_is_sorted_and_flat(self):
        reg = MetricsRegistry()
        reg.counter("b_total", stage="z").inc()
        reg.counter("a_total").inc(2)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["a_total"] == 2
        assert snap['b_total{stage="z"}'] == 1

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.counter("repro_jobs_total", "Jobs.", kind="synth").inc(3)
        reg.gauge("repro_depth", "Depth.").set(2)
        reg.histogram("repro_wait_seconds", "Wait.",
                      buckets=(0.1, 1.0)).observe(0.5)
        text = reg.render_prometheus()
        lines = text.splitlines()
        assert "# HELP repro_jobs_total Jobs." in lines
        assert "# TYPE repro_jobs_total counter" in lines
        assert 'repro_jobs_total{kind="synth"} 3' in lines
        assert "# TYPE repro_depth gauge" in lines
        assert "repro_depth 2" in lines
        assert "# TYPE repro_wait_seconds histogram" in lines
        assert 'repro_wait_seconds_bucket{le="0.1"} 0' in lines
        assert 'repro_wait_seconds_bucket{le="1"} 1' in lines
        assert 'repro_wait_seconds_bucket{le="+Inf"} 1' in lines
        assert "repro_wait_seconds_sum 0.5" in lines
        assert "repro_wait_seconds_count 1" in lines
        assert text.endswith("\n")

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c", label='a"b\\c\nd').inc()
        line = reg.render_prometheus().splitlines()[-1]
        assert line == 'c{label="a\\"b\\\\c\\nd"} 1'


# ----------------------------------------------------------------------
# heartbeats
# ----------------------------------------------------------------------
class TestHeartbeat:
    def test_throttles_per_kind(self):
        clock = [0.0]
        events = []
        beat = Heartbeat(lambda kind, fields: events.append(kind),
                         min_interval=0.5, clock=lambda: clock[0])
        assert beat.emit("frontier", {}) is True
        assert beat.emit("frontier", {}) is False  # same instant: dropped
        assert beat.emit("stage", {}) is True      # other kinds unaffected
        clock[0] = 0.6
        assert beat.emit("frontier", {}) is True
        assert events == ["frontier", "stage", "frontier"]

    def test_force_bypasses_throttle(self):
        events = []
        beat = Heartbeat(lambda kind, fields: events.append(fields),
                         min_interval=1000.0, clock=lambda: 0.0)
        beat.emit("stage", {"n": 1})
        assert beat.emit("stage", {"n": 2}, force=True) is True
        assert events == [{"n": 1}, {"n": 2}]

    def test_module_level_install_and_clear(self):
        events = []
        set_heartbeat(lambda kind, fields: events.append((kind, fields)),
                      min_interval=0.0)
        assert emit("frontier", {"level": 3}) is True
        clear_heartbeat()
        assert emit("frontier", {"level": 4}) is False
        assert events == [("frontier", {"level": 3})]

    def test_frontier_emits_heartbeats(self):
        from repro.explore.frontier import explore_packed
        from repro.specs import suite

        events = []
        set_heartbeat(lambda kind, fields: events.append((kind, fields)),
                      min_interval=0.0)
        explore_packed(suite.load("fifo_cell").net.compile_packed())
        frontier = [fields for kind, fields in events if kind == "frontier"]
        assert frontier, "exploration emitted no frontier heartbeats"
        assert frontier[0]["engine"] == "packed"
        assert {"level", "frontier", "states", "arcs",
                "states_per_s"} <= set(frontier[0])


# ----------------------------------------------------------------------
# budget diagnostics
# ----------------------------------------------------------------------
class TestBudgetDiagnostics:
    def test_describe_text_unchanged(self):
        # describe() lands in certificate reasons; its text must never
        # grow timing fields.
        exceedance = BudgetExceedance("states", 10, 10, 40,
                                      seconds=1.25, level=3)
        assert exceedance.describe("product") == "product exceeded 10 states"

    def test_diagnose_adds_elapsed_and_level(self):
        exceedance = BudgetExceedance("states", 10, 10, 40,
                                      seconds=1.25, level=3)
        text = exceedance.diagnose("state graph")
        assert text.startswith("state graph exceeded 10 states")
        assert "10 states, 40 arcs" in text
        assert "1.25s elapsed" in text
        assert "BFS level 3" in text

    def test_diagnose_without_optionals(self):
        text = BudgetExceedance("arcs", 5, 3, 5).diagnose()
        assert text == "exploration exceeded 5 arcs after 3 states, 5 arcs"

    def test_payload_carries_optionals_only_when_set(self):
        bare = BudgetExceedance("states", 10, 10, 40).to_payload()
        assert "seconds" not in bare and "level" not in bare
        rich = BudgetExceedance("states", 10, 10, 40,
                                seconds=0.5, level=2).to_payload()
        assert rich["seconds"] == 0.5 and rich["level"] == 2

    def test_meter_exceedance_reports_where_it_tripped(self):
        from repro.explore.frontier import explore_tuples
        from repro.specs import suite

        with pytest.raises(BudgetExceeded) as err:
            explore_tuples(suite.load("fifo_cell").net,
                           budget=ExplorationBudget(max_states=3))
        exceedance = err.value.exceedance
        assert exceedance.states == 3
        assert exceedance.seconds is not None and exceedance.seconds >= 0.0
        assert exceedance.level is not None and exceedance.level >= 0


# ----------------------------------------------------------------------
# pipeline wiring
# ----------------------------------------------------------------------
class TestPipelineTracing:
    def _run(self, store=None):
        from repro.pipeline.config import FlowConfig
        from repro.pipeline.stages import run_pipeline
        from repro.specs.suite import source_text

        recorder = TraceRecorder()
        with recording(recorder):
            result = run_pipeline(FlowConfig(verify=True),
                                  stg_text=source_text("fifo_cell"),
                                  store=store)
        return recorder.to_tree(), result

    def test_one_span_per_stage(self):
        tree, result = self._run()
        (pipeline,) = tree["spans"]
        assert pipeline["name"] == "pipeline"
        stage_spans = [node for node in pipeline["children"]
                       if node["name"].startswith("stage:")]
        assert [node["name"] for node in stage_spans] == [
            "stage:" + stage for stage in result.results]
        for node in stage_spans:
            assert node["attrs"]["cached"] is False
            stage = node["name"].split(":", 1)[1]
            assert node["attrs"]["digest"] == result.results[stage].digest

    def test_frontier_levels_nest_under_generate(self):
        tree, _ = self._run()
        (pipeline,) = tree["spans"]
        generate = next(node for node in pipeline["children"]
                        if node["name"] == "stage:generate")
        levels = [node for node in generate.get("children", [])
                  if node["name"] == "frontier:level"]
        assert levels, "no frontier:level spans under stage:generate"
        assert [node["attrs"]["level"] for node in levels] == list(
            range(len(levels)))

    def test_warm_rerun_marks_spans_cached(self, tmp_path):
        from repro.pipeline.store import ArtifactStore

        store = ArtifactStore(str(tmp_path / "store"))
        cold_tree, cold = self._run(store=store)
        warm_tree, warm = self._run(store=store)
        (warm_pipeline,) = warm_tree["spans"]
        cached = {node["name"]: node["attrs"]["cached"]
                  for node in warm_pipeline["children"]
                  if node["name"].startswith("stage:")}
        # Every store-keyed stage is served warm on the second run.
        for stage in ("generate", "reduce", "resolve", "synthesize",
                      "timing"):
            assert cached["stage:" + stage] is True, stage
        assert {s: r.digest for s, r in cold.results.items()} \
            == {s: r.digest for s, r in warm.results.items()}

    def test_stage_heartbeats_fire(self):
        events = []
        set_heartbeat(lambda kind, fields: events.append((kind, fields)),
                      min_interval=1000.0)  # only forced events pass
        self._run()
        stages = [fields for kind, fields in events if kind == "stage"]
        assert {"generate", "reduce", "resolve", "synthesize", "timing",
                "verify"} <= {fields["stage"] for fields in stages}
        assert {"start", "computed"} <= {fields["event"]
                                         for fields in stages}

    def test_tracing_changes_no_artifact_byte(self):
        from repro.pipeline.config import FlowConfig
        from repro.pipeline.stages import run_pipeline
        from repro.specs.suite import source_text

        untraced = run_pipeline(FlowConfig(verify=True),
                                stg_text=source_text("fifo_cell"))
        _, traced = self._run()
        assert {s: r.digest for s, r in untraced.results.items()} \
            == {s: r.digest for s, r in traced.results.items()}


# ----------------------------------------------------------------------
# bench wiring
# ----------------------------------------------------------------------
class TestBenchTracing:
    def test_case_entry_has_trace_breakdown(self):
        from repro import bench
        from repro.bench.harness import RunContext, canonical_payload, run_case

        (case,) = bench.select_cases(names=["fig1_controller"])
        entry = run_case(case, RunContext(quick=True), printer=None)
        assert "trace" in entry
        assert "case:fig1_controller" in entry["trace"]
        for totals in entry["trace"].values():
            assert {"count", "wall_s", "self_s", "cpu_s"} == set(totals)
        # The breakdown is timing-flavoured: never canonical.
        report = {"bench_schema": 1, "cases": {case.name: entry}}
        canonical = canonical_payload(report)
        assert "trace" not in canonical["cases"][case.name]


# ----------------------------------------------------------------------
# serve wiring
# ----------------------------------------------------------------------
def _run_async(coro):
    return asyncio.run(coro)


class TestServeObservability:
    def _dispatch_scenario(self, scenario, **app_kwargs):
        from repro.serve.app import ServeApp

        async def run():
            app = ServeApp(workers=0, **app_kwargs)
            await app.startup()
            try:
                return await scenario(app)
            finally:
                await app.shutdown()

        return _run_async(run())

    def test_metrics_endpoint_renders_prometheus(self, tmp_path):
        async def scenario(app):
            body = json.dumps({"spec": "half", "wait": True}).encode()
            status, _ = await app.dispatch("POST", "/synth", body)
            assert status == 200
            status, text = await app.dispatch("GET", "/metrics")
            assert status == 200
            return text

        text = self._dispatch_scenario(
            scenario, store_root=str(tmp_path / "store"))
        assert isinstance(text, str)
        lines = text.splitlines()
        assert "# TYPE repro_requests_total counter" in lines
        assert 'repro_jobs_submitted_total{kind="synth"} 1' in lines
        assert 'repro_stage_computed_total{stage="generate"} 1' in lines
        assert any(line.startswith("repro_queue_wait_seconds_bucket")
                   for line in lines)
        assert "repro_queue_depth 0" in lines

    def test_job_trace_endpoint(self, tmp_path):
        async def scenario(app):
            body = json.dumps({"spec": "half", "wait": True}).encode()
            _, payload = await app.dispatch("POST", "/synth", body)
            jid = payload["job"]
            status, trace = await app.dispatch("GET", f"/jobs/{jid}/trace")
            missing, _ = await app.dispatch("GET", "/jobs/nope/trace")
            return jid, status, trace, missing

        jid, status, trace, missing = self._dispatch_scenario(
            scenario, store_root=str(tmp_path / "store"))
        assert status == 200 and missing == 404
        assert trace["job"] == jid
        tree = trace["trace"]
        assert tree["meta"]["job"] == jid
        (job_span,) = tree["spans"]
        assert job_span["name"] == "job"
        names = {node["name"] for node in _walk(job_span)}
        assert "pipeline" in names and "stage:generate" in names

    def test_stats_gains_live_counters(self, tmp_path):
        async def scenario(app):
            body = json.dumps({"spec": "half", "wait": True}).encode()
            await app.dispatch("POST", "/synth", body)
            _, stats = await app.dispatch("GET", "/stats")
            return stats

        stats = self._dispatch_scenario(
            scenario, store_root=str(tmp_path / "store"))
        assert stats["in_flight"] == 0
        assert stats["queue_depth"] == 0
        metrics = stats["metrics"]
        assert metrics['repro_jobs_submitted_total{kind="synth"}'] == 1
        assert metrics['repro_stage_computed_total{stage="generate"}'] == 1

    def test_results_identical_with_tracing_off(self, tmp_path):
        from repro.serve.jobs import JobManager
        from repro.serve.protocol import parse_synth_request

        async def result_with(trace, root):
            manager = JobManager(store_root=root, workers=0, trace=trace)
            await manager.start()
            try:
                job, _ = manager.submit(parse_synth_request({"spec": "half"}))
                await asyncio.wait_for(job.done.wait(), 60)
                assert job.status == "done"
                assert (job.trace is not None) is trace
                return job.result
            finally:
                await manager.stop()

        async def scenario():
            traced = await result_with(True, str(tmp_path / "a"))
            untraced = await result_with(False, str(tmp_path / "b"))
            return traced, untraced

        traced, untraced = _run_async(scenario())
        assert json.dumps(traced, sort_keys=True) \
            == json.dumps(untraced, sort_keys=True)

    def test_metrics_content_type_over_http(self, tmp_path):
        from repro.serve.http import BackgroundServer

        with BackgroundServer(store_root=str(tmp_path / "store"),
                              workers=0) as server:
            url = f"http://127.0.0.1:{server.port}/metrics"
            with urllib.request.urlopen(url, timeout=60) as response:
                assert response.status == 200
                content_type = response.headers["Content-Type"]
                body = response.read().decode()
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        assert "repro_requests_total" in body


def _walk(node):
    yield node
    for child in node.get("children", []):
        yield from _walk(child)


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
class TestCliTracing:
    def test_synth_trace_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "trace.json"
        assert main(["synth", "fifo_cell", "--trace", str(path)]) == 0
        captured = capsys.readouterr()
        assert f"wrote trace to {path}" in captured.err
        payload = load_trace(str(path))
        assert payload["meta"]["command"] == "synth"
        names = [node["name"] for root in payload["spans"]
                 for node in _walk(root)]
        for stage in ("generate", "reduce", "resolve", "synthesize",
                      "timing"):
            assert names.count("stage:" + stage) == 1, stage
        assert "frontier:level" in names

    def test_chrome_trace_format(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "trace.chrome.json"
        assert main(["synth", "fifo_cell", "--trace", str(path),
                     "--trace-format", "chrome"]) == 0
        payload = load_trace(str(path))
        assert all(event["ph"] == "X" for event in payload["traceEvents"])
        assert {"stage:generate", "pipeline"} <= {
            event["name"] for event in payload["traceEvents"]}

    def test_trace_summarize_command(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "trace.json"
        main(["synth", "fifo_cell", "--trace", str(path)])
        capsys.readouterr()
        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "stage:generate" in out and "pipeline" in out

    def test_trace_summarize_rejects_garbage(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "nope.json"
        path.write_text("{}")
        with pytest.raises(SystemExit, match="not a repro trace"):
            main(["trace", "summarize", str(path)])

    def test_log_level_info_streams_heartbeats(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["--log-level", "info", "synth", "fifo_cell"]) == 0
        err = capsys.readouterr().err
        assert "repro.progress" in err
        assert "stage=generate" in err
        assert "engine=packed" in err

    def test_default_level_is_quiet(self, capsys):
        from repro.cli import main

        assert main(["synth", "fifo_cell"]) == 0
        err = capsys.readouterr().err
        assert "repro.progress" not in err

    def test_bad_env_level_is_a_clean_error(self, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_LOG", "loud")
        with pytest.raises(SystemExit, match="unknown log level"):
            main(["synth", "fifo_cell"])


# ----------------------------------------------------------------------
# the hard invariant: byte identity, in subprocesses, across hash seeds
# ----------------------------------------------------------------------
_IDENTITY_PROBE = """
import json, sys
from repro import bench
from repro.bench.harness import RunContext, canonical_payload, run_case, \\
    to_json_bytes
from repro.obs.trace import TraceRecorder, recording
from repro.pipeline.config import FlowConfig
from repro.pipeline.hashing import digest_payload
from repro.pipeline.stages import run_pipeline
from repro.specs.suite import source_text

def stage_digests(traced):
    def run():
        return run_pipeline(FlowConfig(verify=True),
                            stg_text=source_text("fifo_cell"))
    if traced:
        with recording(TraceRecorder()):
            result = run()
    else:
        result = run()
    return {stage: r.digest for stage, r in result.results.items()}

(case,) = bench.select_cases(names=["fig1_controller"])
entry = run_case(case, RunContext(quick=True), printer=None)
bench_bytes = to_json_bytes(canonical_payload(
    {"bench_schema": 1, "cases": {case.name: entry}}))
json.dump({"untraced": stage_digests(False),
           "traced": stage_digests(True),
           "bench_canonical": digest_payload({"doc": bench_bytes.decode()})},
          sys.stdout)
"""


class TestByteIdentity:
    def test_traced_untraced_identical_across_hash_seeds(self):
        results = []
        for seed in ("0", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                [str(Path(__file__).parents[1] / "src")]
                + env.get("PYTHONPATH", "").split(os.pathsep))
            proc = subprocess.run([sys.executable, "-c", _IDENTITY_PROBE],
                                  capture_output=True, text=True, env=env,
                                  check=True)
            results.append(json.loads(proc.stdout))
        first, second = results
        # Tracing on vs off: every artifact digest (certificate included,
        # via the verify stage) identical within one process.
        assert first["untraced"] == first["traced"]
        assert "verify" in first["untraced"]
        # And everything identical across hash seeds.
        assert first == second
