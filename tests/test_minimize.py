"""Unit and property tests for logic minimization (repro.logic.minimize)."""

from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.cube import Cube, Cover
from repro.logic.minimize import (MinimizationError, complement_minterms,
                                  minimize, minimize_fast, prime_implicants,
                                  verify_cover)


def all_minterms(n):
    return list(product((0, 1), repeat=n))


class TestPrimeImplicants:
    def test_single_minterm(self):
        primes = prime_implicants(2, [(1, 1)])
        assert primes == [Cube.parse("11")]

    def test_pair_merges(self):
        primes = prime_implicants(2, [(0, 0), (0, 1)])
        assert primes == [Cube.parse("0-")]

    def test_xor_has_no_merges(self):
        primes = prime_implicants(2, [(0, 1), (1, 0)])
        assert sorted(str(p) for p in primes) == ["01", "10"]

    def test_full_function(self):
        primes = prime_implicants(2, all_minterms(2))
        assert primes == [Cube.full(2)]

    def test_dc_enables_merging(self):
        primes = prime_implicants(2, [(1, 1)], dc=[(1, 0)])
        assert Cube.parse("1-") in primes

    def test_classic_4var_example(self):
        # f = sum m(4,8,10,11,12,15), dc(9,14): standard textbook QM case.
        def bits(x):
            return tuple(int(b) for b in f"{x:04b}")
        on = [bits(m) for m in (4, 8, 10, 11, 12, 15)]
        dc = [bits(m) for m in (9, 14)]
        primes = {str(p) for p in prime_implicants(4, on, dc)}
        assert "1-1-" in primes  # the textbook prime AC (bit order MSB first)

    def test_bad_minterm_rejected(self):
        with pytest.raises(MinimizationError):
            prime_implicants(2, [(0, 2)])


class TestMinimize:
    def test_constants(self):
        assert minimize(2, []).is_constant_zero
        assert minimize(2, all_minterms(2)).is_constant_one

    def test_dc_fills_to_constant_one(self):
        cover = minimize(2, [(0, 0)], dc=[(0, 1), (1, 0), (1, 1)])
        assert cover.is_constant_one

    def test_single_literal_found(self):
        on = [m for m in all_minterms(3) if m[1] == 1]
        cover = minimize(3, on)
        assert cover.single_literal() == (1, 1)
        assert cover.literal_count == 1

    def test_wire_through_dc(self):
        # ON = {10}, OFF = {01}, rest DC: minimizes to a single literal.
        cover = minimize(2, [(1, 0)], dc=[(0, 0), (1, 1)])
        assert cover.literal_count == 1

    def test_xor_needs_four_literals(self):
        cover = minimize(2, [(0, 1), (1, 0)], exact=True)
        assert cover.literal_count == 4
        assert cover.cube_count == 2

    def test_majority(self):
        on = [m for m in all_minterms(3) if sum(m) >= 2]
        cover = minimize(3, on, exact=True)
        assert cover.literal_count == 6
        assert cover.cube_count == 3

    def test_exact_not_worse_than_greedy(self):
        on = [m for m in all_minterms(4) if sum(m) in (1, 3)]
        greedy = minimize(4, on, exact=False)
        exact = minimize(4, on, exact=True)
        assert exact.literal_count <= greedy.literal_count

    def test_on_overlapping_dc_wins(self):
        cover = minimize(1, [(1,)], dc=[(1,)])
        assert cover.contains((1,))


class TestMinimizeFast:
    def test_matches_simple_cases(self):
        on = [m for m in all_minterms(3) if m[0] == 1]
        cover = minimize_fast(3, on)
        assert cover.single_literal() == (0, 1)

    def test_valid_on_xor(self):
        on = [(0, 1), (1, 0)]
        cover = minimize_fast(2, on)
        assert verify_cover(cover, on, [(0, 0), (1, 1)])

    def test_constants(self):
        assert minimize_fast(2, []).is_constant_zero
        assert minimize_fast(2, all_minterms(2)).is_constant_one


@st.composite
def on_dc_sets(draw, num_vars=4):
    universe = all_minterms(num_vars)
    labels = draw(st.lists(st.sampled_from(["on", "dc", "off"]),
                           min_size=len(universe), max_size=len(universe)))
    on = [m for m, l in zip(universe, labels) if l == "on"]
    dc = [m for m, l in zip(universe, labels) if l == "dc"]
    off = [m for m, l in zip(universe, labels) if l == "off"]
    return on, dc, off


class TestProperties:
    @given(on_dc_sets())
    @settings(max_examples=60, deadline=None)
    def test_minimize_produces_valid_cover(self, sets):
        on, dc, off = sets
        cover = minimize(4, on, dc)
        assert verify_cover(cover, on, off)

    @given(on_dc_sets())
    @settings(max_examples=60, deadline=None)
    def test_minimize_fast_produces_valid_cover(self, sets):
        on, dc, off = sets
        cover = minimize_fast(4, on, dc)
        assert verify_cover(cover, on, off)

    @given(on_dc_sets())
    @settings(max_examples=30, deadline=None)
    def test_exact_never_beaten_by_greedy(self, sets):
        on, dc, off = sets
        exact = minimize(4, on, dc, exact=True)
        greedy = minimize(4, on, dc, exact=False)
        assert exact.literal_count <= greedy.literal_count

    @given(on_dc_sets())
    @settings(max_examples=30, deadline=None)
    def test_primes_cover_every_on_minterm(self, sets):
        on, dc, off = sets
        primes = prime_implicants(4, on, dc)
        for minterm in on:
            assert any(p.contains(minterm) for p in primes)

    @given(on_dc_sets())
    @settings(max_examples=30, deadline=None)
    def test_primes_avoid_off_minterms(self, sets):
        on, dc, off = sets
        for prime in prime_implicants(4, on, dc):
            assert not any(prime.contains(m) for m in off)


class TestComplement:
    def test_complement(self):
        on = {(0, 0)}
        dc = {(1, 1)}
        assert complement_minterms(2, on, dc) == {(0, 1), (1, 0)}

    def test_complement_empty(self):
        assert complement_minterms(1, {(0,), (1,)}, set()) == set()
