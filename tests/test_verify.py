"""Unit and integration tests for the verification subsystem (repro.verify)."""

import json
import pathlib
import subprocess
import sys

import pytest

from repro.circuit.library import DEFAULT_LIBRARY, Cell, Library
from repro.circuit.netlist import Netlist
from repro.flow import STRATEGIES, implement, run_flow_stg
from repro.petri.stg import SignalKind
from repro.sg.generator import generate_sg
from repro.sg.graph import StateGraph
from repro.specs import suite
from repro.specs.fig1 import fig1_stg
from repro.specs.lr import q_module_stg
from repro.sweep import ResultStore, run_sweep, render, tables_grid
from repro.verify import (SimulationError, VerificationReport, cell_table,
                          check_conformance, compile_circuit, skipped_report,
                          verification_key, verify_netlist)


# ----------------------------------------------------------------------
# simulator
# ----------------------------------------------------------------------
class TestCellSemantics:
    def test_combinational_tables(self):
        assert cell_table(DEFAULT_LIBRARY.cell("INV")) == (1, 0)
        assert cell_table(DEFAULT_LIBRARY.cell("AND2")) == (0, 0, 0, 1)
        assert cell_table(DEFAULT_LIBRARY.cell("OR2")) == (0, 1, 1, 1)
        assert cell_table(DEFAULT_LIBRARY.cell("XOR2")) == (0, 1, 1, 0)

    def test_c_element_holds(self):
        # index bit k = input k: holds except at 00 and 11.
        assert cell_table(DEFAULT_LIBRARY.cell("C2")) == (0, None, None, 1)

    def test_srlatch(self):
        table = cell_table(DEFAULT_LIBRARY.cell("SRLATCH"))
        assert table[0b01] == 1   # set alone
        assert table[0b10] == 0   # reset alone
        assert table[0b00] is None and table[0b11] is None

    def test_unknown_cell_rejected(self):
        exotic = Library("x", {"MAJ3": Cell("MAJ3", 3, 1.0, 1.0)})
        with pytest.raises(SimulationError):
            cell_table(exotic.cell("MAJ3"))


def _buffer_spec():
    """input a, output x; x follows a through a full handshake cycle."""
    sg = StateGraph("buf")
    sg.declare_signal("a", SignalKind.INPUT)
    sg.declare_signal("x", SignalKind.OUTPUT)
    for label in ("a+", "a-", "x+", "x-"):
        sg.declare_event(label)
    sg.add_state("00", (0, 0))
    sg.add_state("10", (1, 0))
    sg.add_state("11", (1, 1))
    sg.add_state("01", (0, 1))
    sg.add_arc("00", "a+", "10")
    sg.add_arc("10", "x+", "11")
    sg.add_arc("11", "a-", "01")
    sg.add_arc("01", "x-", "00")
    return sg


def _buffer_netlist():
    netlist = Netlist("buf")
    netlist.add_input("a")
    netlist.add_output("x")
    netlist.add_alias("a", "x")
    return netlist


class TestSimulator:
    def test_atomic_nets_are_signals(self):
        sim = compile_circuit(_buffer_netlist(), ["a", "x"], ["a"], "atomic")
        assert sim.nets == ["a", "x"]
        assert len(sim.nodes) == 1  # only the implemented signal

    def test_excited_and_fire(self):
        sim = compile_circuit(_buffer_netlist(), ["a", "x"], ["a"], "atomic")
        quiescent = 0b00
        assert sim.excited(quiescent) == ()
        raised = sim.set_net(quiescent, 0, 1)     # environment: a+
        assert sim.excited(raised) == (0,)
        fired = sim.fire(raised, 0)               # circuit: x+
        assert fired == 0b11
        assert sim.excited(fired) == ()

    def test_incremental_excited_matches_full_scan(self):
        sim = compile_circuit(_buffer_netlist(), ["a", "x"], ["a"], "atomic")
        for previous in range(4):
            base = sim.excited(previous)
            for net in range(2):
                flipped = previous ^ (1 << net)
                sim._excited_memo.pop(flipped, None)
                incremental = sim.excited_after(previous, base, flipped)
                sim._excited_memo.pop(flipped, None)
                assert incremental == sim.excited(flipped)

    def test_structural_settles_internal_nets(self):
        netlist = Netlist("n")
        netlist.add_input("a")
        netlist.add_output("x")
        netlist.add_gate("INV", ["a"], output="na")
        netlist.add_gate("INV", ["na"], output="x")
        sim = compile_circuit(netlist, ["a", "x"], ["a"], "structural")
        values = sim.settle({"a": 1, "x": 1})
        assert sim.value(values, sim.net_index["na"]) == 0
        assert sim.excited(values) == ()

    def test_structural_ignores_drivers_of_input_signals(self):
        # A netlist driving an environment input keeps no node for it: the
        # spec chooses input values, never the circuit.
        netlist = _buffer_netlist()
        netlist.add_gate("INV", ["x"], output="a2")
        netlist.add_alias("a2", "a")  # pathological: drives the input
        sim = compile_circuit(netlist, ["a", "x"], ["a"], "structural")
        assert all(sim.nets[node.out] != "a" for node in sim.nodes)
        report = check_conformance(netlist, _buffer_spec(),
                                   model="structural")
        assert report.ok

    def test_missing_driver_reported(self):
        netlist = Netlist("n")
        netlist.add_input("a")
        with pytest.raises(SimulationError):
            compile_circuit(netlist, ["a", "x"], ["a"], "atomic")


# ----------------------------------------------------------------------
# conformance
# ----------------------------------------------------------------------
class TestConformance:
    def test_buffer_conforms(self):
        report = check_conformance(_buffer_netlist(), _buffer_spec())
        assert report.ok
        assert report.verdict == "conforming"
        assert (report.conforming and report.hazard_free
                and report.deadlock_free and report.semi_modular)
        # simulator-vs-SG cross-check: the product is exactly the spec.
        assert report.product_states == report.spec_states == 4
        assert report.product_arcs == report.spec_arcs == 4
        assert report.trace == []

    def test_wrong_polarity_yields_counterexample(self):
        netlist = Netlist("buf")
        netlist.add_input("a")
        netlist.add_output("x")
        netlist.add_gate("INV", ["a"], output="x")   # x = a' instead of a
        report = check_conformance(netlist, _buffer_spec())
        assert report.verdict == "non-conforming"
        assert not report.ok
        assert report.trace  # minimal witness, BFS order
        assert report.trace[-1]["net"] == "x"
        assert "x+" in report.reason

    def test_deadlock_detected(self):
        sg = StateGraph("dead")
        sg.declare_signal("x", SignalKind.OUTPUT)
        sg.declare_event("x+")
        sg.declare_event("x-")
        sg.add_state("0", (0,))
        sg.add_state("1", (1,))
        sg.add_arc("0", "x+", "1")
        sg.add_arc("1", "x-", "0")
        netlist = Netlist("dead")
        netlist.add_output("x")
        netlist.add_alias("GND", "x")   # never produces x+
        report = check_conformance(netlist, sg)
        assert report.verdict == "deadlock"
        assert not report.deadlock_free
        assert report.conforming  # nothing wrong was *produced*

    def test_hazard_detected_on_withdrawn_excitation(self):
        # A non-persistent spec: x is excited after a+, then a- withdraws
        # it.  The circuit (x = a) keeps tracking, so its x node is excited
        # and then disabled without firing -- the defining hazard.
        sg = StateGraph("np")
        sg.declare_signal("a", SignalKind.INPUT)
        sg.declare_signal("x", SignalKind.OUTPUT)
        for label in ("a+", "a-", "x+", "x-"):
            sg.declare_event(label)
        sg.add_state("00", (0, 0))
        sg.add_state("10", (1, 0))
        sg.add_state("11", (1, 1))
        sg.add_state("01", (0, 1))
        sg.add_arc("00", "a+", "10")
        sg.add_arc("10", "x+", "11")
        sg.add_arc("10", "a-", "00")   # withdraws x+
        sg.add_arc("11", "a-", "01")
        sg.add_arc("01", "x-", "00")
        report = check_conformance(_buffer_netlist(), sg)
        assert report.verdict == "hazard"
        assert not report.hazard_free
        assert "excited, then disabled" in report.reason
        assert report.trace[-1]["label"] == "a-"

    def test_state_limit_verdict(self):
        report = check_conformance(_buffer_netlist(), _buffer_spec(),
                                   max_states=2)
        assert report.verdict == "state-limit"
        assert not report.ok

    def test_bad_model_rejected(self):
        with pytest.raises(ValueError):
            check_conformance(_buffer_netlist(), _buffer_spec(),
                              model="timed")


class TestSuiteConformance:
    """The acceptance surface: every suite spec, all four strategies."""

    @pytest.mark.parametrize("name", suite.suite_names())
    def test_suite_implementations_conform(self, name):
        initial_sg = generate_sg(suite.load(name))
        for strategy in STRATEGIES:
            flow = run_flow_stg(None, strategy=strategy,
                                initial_sg=initial_sg,
                                name=f"{name}/{strategy}", verify=True)
            verification = flow.report.verification
            assert verification is not None
            if flow.report.circuit is None:
                # Only the unreduced micropipeline cannot resolve CSC.
                assert (name, strategy) == ("micropipeline", "none")
                assert verification.verdict == "skipped"
                continue
            assert verification.ok, (name, strategy, verification.reason)
            assert verification.semi_modular
            # Lock-step cross-check: the conforming product *is* the spec.
            assert verification.product_states == verification.spec_states
            assert verification.product_arcs == verification.spec_arcs

    def test_corrupted_netlist_yields_trace(self):
        initial_sg = generate_sg(suite.load("half"))
        flow = run_flow_stg(None, strategy="full", initial_sg=initial_sg,
                            name="half")
        netlist = flow.report.circuit.netlist
        # Corrupt one gate: swap an AND2 for an OR2 (same nets, wrong
        # function) and re-verify against the same spec.
        corrupted = Netlist(netlist.name, netlist.library)
        for net in netlist.primary_inputs:
            corrupted.add_input(net)
        for net in netlist.primary_outputs:
            corrupted.add_output(net)
        swapped = False
        for gate in netlist.gates:
            cell = gate.cell.name
            if not swapped and cell == "AND2":
                cell, swapped = "OR2", True
            corrupted.add_gate(cell, gate.inputs, output=gate.output,
                               name=gate.name)
        for alias in netlist.aliases:
            corrupted.add_alias(alias.source, alias.target)
        assert swapped
        report = check_conformance(corrupted, flow.report.resolved_sg,
                                   name="half-corrupted")
        assert not report.ok
        assert report.verdict in ("non-conforming", "hazard")
        assert report.trace


# ----------------------------------------------------------------------
# fig1: the paper's introductory CSC example, as a verification story
# ----------------------------------------------------------------------
class TestFig1CrossCheck:
    def test_fig1_conflicted_circuit_is_caught(self):
        # Fig. 1's SG has a CSC conflict, so *no* correct SOP circuit for
        # Ack exists.  Build the optimistic one (conflicting codes treated
        # as ON, exactly the area-estimate cover) and let the verifier
        # reproduce the paper's point with a concrete counterexample.
        from repro.circuit.mapping import map_cover
        from repro.logic.functions import extract_function
        sg = generate_sg(fig1_stg())
        function = extract_function(sg, "Ack")
        assert function.has_csc_conflict
        cover = function.minimized(conflict_policy="on")
        netlist = Netlist("fig1_optimistic")
        netlist.add_input("Req")
        netlist.add_output("Ack")
        map_cover(cover, function.variables, "Ack", netlist)
        report = check_conformance(netlist, sg, name="fig1")
        assert not report.ok
        assert report.verdict in ("non-conforming", "hazard")
        assert report.trace

    def test_fig1_flow_verification_is_skipped(self):
        report = implement(generate_sg(fig1_stg()), verify=True)
        assert report.circuit is None
        assert report.verification.verdict == "skipped"
        assert report.verified is False


# ----------------------------------------------------------------------
# certificates
# ----------------------------------------------------------------------
class TestCertificate:
    def test_round_trip(self):
        report = check_conformance(_buffer_netlist(), _buffer_spec())
        clone = VerificationReport.from_dict(
            json.loads(report.to_json()))
        assert clone.to_dict() == report.to_dict()
        assert clone.seconds == 0.0  # timings never round-trip

    def test_timing_excluded_from_payload(self):
        report = check_conformance(_buffer_netlist(), _buffer_spec())
        assert report.seconds > 0.0
        assert "seconds" not in report.to_dict()

    def test_unknown_verdict_rejected(self):
        with pytest.raises(ValueError):
            VerificationReport(name="x", model="atomic", verdict="maybe")

    def test_skipped_report(self):
        report = skipped_report("x", "no circuit")
        assert report.skipped and not report.ok

    def test_store_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        netlist, spec = _buffer_netlist(), _buffer_spec()
        cold, cached_cold = verify_netlist(netlist, spec, store=store)
        warm, cached_warm = verify_netlist(netlist, spec, store=store)
        assert not cached_cold and cached_warm
        assert warm.to_dict() == cold.to_dict()

    def test_cache_hit_relabels_report(self, tmp_path):
        # The display name is not part of the store key; a hit must carry
        # the asking point's name, not the label of whoever computed it.
        store = ResultStore(tmp_path / "store")
        netlist, spec = _buffer_netlist(), _buffer_spec()
        verify_netlist(netlist, spec, name="buf/none", store=store)
        cached, hit = verify_netlist(netlist, spec, name="buf/full",
                                     store=store)
        assert hit
        assert cached.name == "buf/full"

    def test_store_key_depends_on_netlist_and_spec(self):
        netlist, spec = _buffer_netlist(), _buffer_spec()
        key = verification_key(netlist, spec, "atomic", 100)
        other_netlist = Netlist("buf")
        other_netlist.add_input("a")
        other_netlist.add_output("x")
        other_netlist.add_gate("BUF", ["a"], output="x")
        assert verification_key(other_netlist, spec, "atomic", 100) != key
        assert verification_key(netlist, spec, "structural", 100) != key

    def test_corrupt_store_entry_recomputed(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        netlist, spec = _buffer_netlist(), _buffer_spec()
        verify_netlist(netlist, spec, store=store)
        victim = store.keys()[0]
        (store.root / f"{victim}.json").write_text('{"row": {"bogus": 1}}')
        report, cached = verify_netlist(netlist, spec, store=store)
        assert not cached
        assert report.ok


# ----------------------------------------------------------------------
# flow + sweep integration
# ----------------------------------------------------------------------
class TestFlowIntegration:
    def test_q_module_verifies(self):
        report = implement(generate_sg(q_module_stg()), verify=True)
        assert report.verification is not None
        assert report.verification.ok
        assert report.verified is True

    def test_verification_off_by_default(self):
        report = implement(generate_sg(q_module_stg()))
        assert report.verification is None
        assert report.verified is None

    def test_structural_model_exposes_decomposition_hazards(self):
        # The plain 2-input decomposition is not SI-preserving (the
        # mapping module says so): under per-gate delays the half
        # controller glitches, and the verifier proves it with a trace.
        initial_sg = generate_sg(suite.load("half"))
        flow = run_flow_stg(None, strategy="full", initial_sg=initial_sg,
                            name="half", verify=True,
                            verify_model="structural")
        verification = flow.report.verification
        assert verification.model == "structural"
        assert not verification.ok
        assert verification.trace


class TestSweepIntegration:
    def test_verify_axis_is_part_of_point_identity(self):
        from repro.sweep import SweepGrid, make_point
        grid = SweepGrid([make_point("lr", "full"),
                          make_point("lr", "full", verify=True)])
        assert len(grid) == 2

    def test_sweep_rows_carry_verdicts_and_are_parallel_stable(self):
        grid = tables_grid(specs=["half", "fifo_cell"],
                           strategies=("none", "full"), verify=True)
        serial = run_sweep(grid, jobs=1)
        parallel = run_sweep(grid, jobs=2)
        for fmt in ("json", "csv", "md"):
            assert render(serial.rows, fmt) == render(parallel.rows, fmt)
        for row in serial.rows:
            assert row["verdict"] == "conforming"
            assert row["verify_states"] > 0

    def test_unverified_rows_have_empty_verdict(self):
        grid = tables_grid(specs=["half"], strategies=("none",))
        outcome = run_sweep(grid)
        assert outcome.rows[0]["verdict"] is None

    def test_warm_store_skips_reverification(self, tmp_path):
        grid = tables_grid(specs=["half"], strategies=("none", "full"),
                           verify=True)
        store = ResultStore(tmp_path / "store")
        cold = run_sweep(grid, store=store)
        warm = run_sweep(grid, store=store)
        assert warm.computed == 0
        assert warm.cached == len(grid)
        assert render(cold.rows, "json") == render(warm.rows, "json")


class TestDeterminism:
    def test_certificate_stable_across_hash_seeds(self):
        root = pathlib.Path(__file__).resolve().parents[1]
        program = (
            "from repro.flow import run_flow_stg\n"
            "from repro.sg.generator import generate_sg\n"
            "from repro.specs import suite\n"
            "sg = generate_sg(suite.load('fifo_cell'))\n"
            "flow = run_flow_stg(None, strategy='full', initial_sg=sg,\n"
            "                    name='fifo_cell', verify=True)\n"
            "print(flow.report.verification.to_json())\n")
        payloads = set()
        for seed in ("0", "1", "12345"):
            completed = subprocess.run(
                [sys.executable, "-c", program], cwd=root,
                env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin",
                     "PYTHONPATH": str(root / "src")},
                capture_output=True, text=True, check=True)
            payloads.add(completed.stdout)
        assert len(payloads) == 1
