"""Flow-level tests over the extended benchmark suite (repro.specs.suite).

Each benchmark goes through the entire pipeline; the assertions here are
*invariants* of the flow, so they double as integration tests: reductions
never break speed independence, resolved SGs always synthesize, reported
areas are consistent with the per-signal netlists, and the timed simulation
always finds a steady cycle on a live controller.
"""

import pytest

from repro.flow import implement
from repro.petri.analysis import is_deadlock_free, is_safe
from repro.reduction.explore import full_reduction, reduce_concurrency
from repro.sg.generator import generate_sg
from repro.sg.properties import check_implementability, csc_conflicts
from repro.specs.suite import load, load_all, suite_names

ALL = sorted(load_all())


class TestSuiteSpecs:
    def test_names(self):
        assert suite_names() == ["fifo_cell", "half", "micropipeline",
                                 "vme_read"]

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load("nope")

    @pytest.mark.parametrize("name", ALL)
    def test_nets_are_safe_and_live(self, name):
        stg = load(name)
        assert is_safe(stg.net), name
        assert is_deadlock_free(stg.net), name

    @pytest.mark.parametrize("name", ALL)
    def test_sgs_are_speed_independent(self, name):
        sg = generate_sg(load(name))
        report = check_implementability(sg)
        assert report.consistent, name
        assert report.speed_independent, name
        assert report.deadlock_free, name


class TestSuiteFlow:
    @pytest.mark.parametrize("name", ALL)
    def test_implement_each(self, name):
        report = implement(generate_sg(load(name)))
        assert report.cycle_time is not None
        assert report.cycle_time > 0
        if report.csc_resolved:
            assert report.area is not None
            assert report.area == report.circuit.netlist.area
            per_signal = sum(impl.area
                             for impl in report.circuit.signals.values())
            assert per_signal == report.area

    @pytest.mark.parametrize("name", ALL)
    def test_reduction_invariants(self, name):
        sg = generate_sg(load(name))
        result = reduce_concurrency(sg, max_explored=200, patience=50)
        best = result.best
        report = check_implementability(best)
        assert report.consistent, name
        assert report.speed_independent, name
        assert best.initial == sg.initial
        assert set(best.states) <= set(sg.states)
        assert {label for _, label, _ in best.arcs()} == \
            {label for _, label, _ in sg.arcs()}

    @pytest.mark.parametrize("name", ALL)
    def test_full_reduction_terminal(self, name):
        from repro.reduction.fwdred import forward_reduction, reducible_pairs
        sg = generate_sg(load(name))
        terminal = full_reduction(sg, size_frontier=3)
        for before, delayed in reducible_pairs(terminal):
            assert not forward_reduction(terminal, delayed, before).valid

    @pytest.mark.parametrize("name", ALL)
    def test_reduction_never_adds_conflicts(self, name):
        sg = generate_sg(load(name))
        baseline_codes = {sg.code_of(s) for s in sg.states}
        result = reduce_concurrency(sg, max_explored=200, patience=50)
        reduced_codes = {result.best.code_of(s) for s in result.best.states}
        assert reduced_codes <= baseline_codes
        assert len(csc_conflicts(result.best)) <= len(csc_conflicts(sg))
