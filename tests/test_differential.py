"""The differential fuzz oracle.

Two halves:

* **equivalence over the seeded corpus** -- the committed anchor in
  ``tests/data/fuzz_corpus.json`` pins the corpus digest of a clean
  10-spec run (and documents the 10k-spec engines-only run), extending
  the golden-digest approach of ``tests/test_equivalence.py`` to
  generated specs;
* **the harness catches bugs** -- a deliberately corrupted tuple-engine
  firing rule must be detected as an ``sg`` divergence, shrunk to a
  repro of at most 6 transitions, and written as a replayable repro
  file.
"""

import json
from pathlib import Path

from repro.petri.net import PetriNet
from repro.specs.generate import (GenKnobs, GenSpec, TraceError,
                                  build_from_trace, check_spec,
                                  generate_spec, replay_shrink, run_fuzz,
                                  spec_seed)
from repro.specs.generate.shrink import _candidates

DATA = Path(__file__).parent / "data"
ANCHORS = json.loads((DATA / "fuzz_corpus.json").read_text())
REPRO_DIR = DATA / "fuzz_repros"


class TestCorpusEquivalence:
    def test_quick_corpus_matches_anchor(self):
        anchor = ANCHORS["quick"]
        report = run_fuzz(seed=anchor["seed"], count=anchor["count"])
        assert not report.divergences, [
            d.to_payload() for d in report.divergences]
        assert report.corpus_digest == anchor["corpus_digest"]
        assert report.total_states == anchor["total_states"]
        assert report.max_states == anchor["max_states"]
        assert report.check_counts() == anchor["check_counts"]

    def test_manifest_replays(self):
        small = GenKnobs(max_fragments=1, max_mutations=2, max_signals=6)
        report = run_fuzz(seed=1, count=3, knobs=small, pipeline_limit=0)
        manifest = report.manifest()
        assert manifest["corpus_digest"] == report.corpus_digest
        for entry, result in zip(manifest["specs"], report.results):
            spec = GenSpec.from_json(entry["genspec"])
            assert spec == result.spec
            assert spec.digest == entry["spec"]

    def test_budget_exceedance_is_not_a_divergence(self):
        # Both explicit engines must exceed a tiny budget the same way:
        # normalized error records compare equal, digests stay unset.
        spec = generate_spec(spec_seed(0, 0))
        result = check_spec(spec, budget_states=4)
        assert "sg" in result.checks
        assert result.sg_digest is None
        assert not result.divergences

    def test_jobs_identity_on_a_small_spec(self):
        # The spawned-worker leg: one job evaluated in a fresh process
        # must serialize to the same bytes as the in-process run.
        spec = generate_spec(spec_seed(0, 1))
        result = check_spec(spec, jobs_identity=True)
        assert "jobs" in result.checks
        assert not result.divergences

    def test_committed_repros_stay_fixed(self):
        # Every committed repro documents a divergence that has since
        # been fixed; replaying it must come back clean (see the README
        # in the repro directory).
        for path in sorted(REPRO_DIR.glob("*.json")):
            payload = json.loads(path.read_text())
            spec = GenSpec.from_json(payload["genspec"])
            result = check_spec(spec)
            assert not result.divergences, path.name


def _corrupted_fire(real_fire):
    """A tuple-engine firing rule with a wrong delta for ``x0+``.

    The injected bug of the acceptance criterion: firing ``x0+`` fails
    to consume one pre-place token, so only the tuples exploration core
    (the packed core never calls :meth:`fire_incremental`) derives a
    wrong successor marking.
    """

    def fire(self, transition, marking, enabled):
        successor, updated = real_fire(self, transition, marking, enabled)
        if transition.startswith("x0+"):
            compiled = self._compile()
            counts = list(successor)
            for index, weight in compiled.pre[transition]:
                counts[index] += weight
                break
            successor = tuple(counts)
        return successor, updated
    return fire


def _spec_with_x0():
    for index in range(50):
        spec = generate_spec(spec_seed(0, index))
        if any(step.get("signal") == "x0" for step in spec.trace):
            return spec
    raise AssertionError("no corpus spec with an x0 mutation")


class TestInjectedBug:
    def test_detected_shrunk_and_written(self, monkeypatch, tmp_path):
        spec = _spec_with_x0()
        assert spec == generate_spec(spec_seed(0, 0))  # corpus member 0
        monkeypatch.setattr(
            PetriNet, "fire_incremental",
            _corrupted_fire(PetriNet.fire_incremental))

        # One fuzz pass over the corrupted engine: detection, shrinking
        # and the repro file all in the same loop the CLI runs.
        report = run_fuzz(seed=0, count=1, pipeline_limit=0,
                          repro_dir=str(tmp_path))
        assert [d.oracle for d in report.divergences] == ["sg"]
        shrunk = report.shrunk[0]
        transitions = len(shrunk.spec.build().net.transitions)
        assert transitions <= 6
        assert len(shrunk.spec.trace) < len(spec.trace)
        # The minimum still carries the corrupted signal and still fails.
        assert any(step.get("signal") == "x0"
                   for step in shrunk.spec.trace)
        still = check_spec(shrunk.spec, pipeline_limit=0)
        assert [d.oracle for d in still.divergences] == ["sg"]
        # The shrink log replays byte-for-byte.
        assert replay_shrink(spec, shrunk.log) == shrunk.spec
        # ... and the minimum really is minimal: no remaining step can
        # be dropped without losing the divergence.
        for entry, candidate in _candidates(shrunk.spec.trace):
            if entry["action"] != "drop":
                continue
            try:
                build_from_trace(candidate)
            except TraceError:
                continue
            smaller = GenSpec(seed=spec.seed, knobs=spec.knobs,
                              trace=candidate)
            assert not check_spec(smaller,
                                  pipeline_limit=0).divergences, entry

        [path] = [Path(p) for p in report.repro_paths]
        payload = json.loads(path.read_text())
        assert payload["oracle"] == "sg"
        assert payload["transitions"] == transitions
        assert GenSpec.from_json(payload["genspec"]) == shrunk.spec
        assert replay_shrink(GenSpec.from_json(payload["shrunk_from"]),
                             payload["shrink_log"]) == shrunk.spec

    def test_engines_agree_again_without_the_bug(self):
        # The same specs, unpatched: no divergence (so the injected-bug
        # test is really exercising the corruption, not a latent bug).
        spec = _spec_with_x0()
        assert not check_spec(spec, pipeline_limit=0).divergences
