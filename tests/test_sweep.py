"""Unit tests for the parallel design-space sweep (repro.sweep)."""

import json

import pytest

from repro.sweep import (ResultStore, SweepGrid, keep_variants, make_point,
                         render, run_sweep, spec_registry, tables_grid)
from repro.sweep.report import COLUMNS


@pytest.fixture(scope="module")
def small_grid():
    """Two specs, full strategy set: 20 cheap points."""
    return tables_grid(specs=["lr", "fifo_cell"])


@pytest.fixture(scope="module")
def serial_outcome(small_grid):
    return run_sweep(small_grid, jobs=1)


class TestGrid:
    def test_registry_covers_paper_and_suite(self):
        registry = spec_registry()
        for name in ("lr", "mmu", "par", "fig1",
                     "half", "fifo_cell", "vme_read", "micropipeline"):
            assert name in registry

    def test_tables_grid_rows(self, small_grid):
        # per spec: none + 3 beam + 3 best-first + full; lr adds 4 variants
        assert len(small_grid) == 2 * 8 + 4
        specs = {point.spec for point in small_grid}
        assert specs == {"lr", "fifo_cell"}

    def test_unknown_spec_rejected(self):
        with pytest.raises(KeyError):
            tables_grid(specs=["nosuch"])

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            make_point("lr", "dfs")

    def test_dedup_normalizes_irrelevant_axes(self):
        grid = SweepGrid([
            make_point("lr", "none", weight=0.0),
            make_point("lr", "none", weight=1.0),   # weight ignored
            make_point("lr", "best-first", weight=0.5, frontier=9),
            make_point("lr", "best-first", weight=0.5),  # frontier ignored
        ])
        assert len(grid) == 2

    def test_dedup_canonicalizes_keep_pairs(self):
        grid = SweepGrid([
            make_point("lr", "full", keep=[("li-", "ri-")]),
            make_point("lr", "full", keep=[("ri-", "li-")]),
        ])
        assert len(grid) == 1

    def test_overlapping_grids_share_points(self):
        first = tables_grid(specs=["lr"])
        both = tables_grid(specs=["lr", "fifo_cell"])
        keys = {point.key() for point in both}
        assert all(point.key() in keys for point in first)

    def test_keep_variants_named_rows(self):
        assert set(keep_variants("lr")) == {
            "li || ri", "li || ro", "lo || ri", "lo || ro"}
        assert keep_variants("fifo_cell") == {}


class TestRunner:
    def test_rows_in_grid_order_with_all_columns(self, small_grid,
                                                 serial_outcome):
        assert len(serial_outcome.rows) == len(small_grid)
        for point, row in zip(small_grid.points, serial_outcome.rows):
            assert row["spec"] == point.spec
            assert row["strategy"] == point.strategy
            assert set(COLUMNS) <= set(row)

    def test_parallel_byte_identical_to_serial(self, small_grid,
                                               serial_outcome):
        parallel = run_sweep(small_grid, jobs=2)
        for fmt in ("json", "csv", "md"):
            assert (render(serial_outcome.rows, fmt)
                    == render(parallel.rows, fmt))

    def test_explored_reported_for_every_search_strategy(self, serial_outcome):
        for row in serial_outcome.rows:
            if row["strategy"] == "none":
                assert row["explored"] is None
            else:
                assert row["explored"] >= 1
                assert row["expanded"] <= row["explored"]

    def test_bad_jobs_rejected(self, small_grid):
        with pytest.raises(ValueError):
            run_sweep(small_grid, jobs=0)


class TestStore:
    def test_warm_rerun_recomputes_nothing(self, small_grid, tmp_path):
        store = ResultStore(tmp_path / "store")
        cold = run_sweep(small_grid, jobs=2, store=store)
        assert cold.computed == len(small_grid)
        assert cold.cached == 0
        warm = run_sweep(small_grid, jobs=2, store=store)
        assert warm.computed == 0
        assert warm.cached == len(small_grid)
        assert render(cold.rows, "json") == render(warm.rows, "json")

    def test_overlapping_grid_skips_completed_points(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        first = run_sweep(tables_grid(specs=["lr"]), store=store)
        both = run_sweep(tables_grid(specs=["lr", "fifo_cell"]), store=store)
        assert both.cached == len(first.points)
        assert both.computed == len(both.points) - len(first.points)

    def test_corrupt_entry_recomputed(self, small_grid, tmp_path):
        store = ResultStore(tmp_path / "store")
        run_sweep(small_grid, store=store)
        # The store holds stage artifacts next to the rows; corrupt a row.
        victim = next(key for key in store.keys()
                      if store.get(key) is not None)
        (store.root / f"{victim}.json").write_text("{not json")
        again = run_sweep(small_grid, store=store)
        assert again.computed == 1
        assert again.cached == len(small_grid) - 1

    def test_cache_hit_relabels_variant(self, tmp_path):
        # The display name is not part of the store key; a hit must carry
        # the *current* grid's variant, not the label of whoever computed it.
        pairs = [("li-", "ri-")]
        store = ResultStore(tmp_path / "store")
        named = SweepGrid([make_point("lr", "full", keep=pairs,
                                      variant="li || ri")])
        plain = SweepGrid([make_point("lr", "full", keep=pairs)])
        run_sweep(named, store=store)
        cold = run_sweep(plain)
        warm = run_sweep(plain, store=store)
        assert warm.cached == 1
        assert render(cold.rows, "json") == render(warm.rows, "json")

    def test_key_depends_on_graph_digest(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        config = make_point("lr", "full").config()
        assert store.key(config, "a" * 64) != store.key(config, "b" * 64)

    def test_graph_digest_stable_across_hash_seeds(self):
        import pathlib
        import subprocess
        import sys
        root = pathlib.Path(__file__).resolve().parents[1]
        program = (
            "from repro.sg.generator import generate_sg\n"
            "from repro.specs.lr import lr_expanded\n"
            "from repro.sweep import graph_digest\n"
            "print(graph_digest(generate_sg(lr_expanded())))\n")
        digests = set()
        for seed in ("0", "1", "12345"):
            completed = subprocess.run(
                [sys.executable, "-c", program], cwd=root,
                env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin",
                     "PYTHONPATH": str(root / "src")},
                capture_output=True, text=True, check=True)
            digests.add(completed.stdout.strip())
        assert len(digests) == 1

    def test_reports_deterministic(self, serial_outcome):
        text = render(serial_outcome.rows, "json")
        payload = json.loads(text)
        assert payload["columns"] == list(COLUMNS)
        assert render(serial_outcome.rows, "json") == text
        with pytest.raises(ValueError):
            render(serial_outcome.rows, "xml")
