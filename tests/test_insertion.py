"""Unit tests for CSC state-signal insertion (repro.encoding)."""

import pytest

from repro.encoding.csc import (conflict_cores, conflict_count,
                                conflicting_state_pairs,
                                estimate_csc_signals_needed,
                                irresolvable_conflicts,
                                signals_needing_resolution)
from repro.encoding.insertion import (enumerate_insertions, find_insertion,
                                      insert_state_signal,
                                      insert_state_signal_sequencing,
                                      resolve_csc)
from repro.petri.stg import SignalKind
from repro.sg.generator import generate_sg
from repro.sg.properties import (csc_conflicts, is_consistent,
                                 is_output_persistent)
from repro.specs.fig1 import fig1_stg
from repro.specs.lr import lr_expanded, q_module_stg


@pytest.fixture(scope="module")
def fig1():
    return generate_sg(fig1_stg())


@pytest.fixture(scope="module")
def q_module():
    return generate_sg(q_module_stg())


class TestConflictAnalysis:
    def test_fig1_core(self, fig1):
        cores = conflict_cores(fig1)
        assert len(cores) == 1
        assert cores[0].code == (1, 1)
        assert len(cores[0].states) == 2

    def test_counts(self, fig1):
        assert conflict_count(fig1) == 1
        assert len(conflicting_state_pairs(fig1)) == 1

    def test_signals_needing_resolution(self, fig1):
        assert signals_needing_resolution(fig1) == {"Ack"}

    def test_estimate_signals_needed(self, fig1):
        assert estimate_csc_signals_needed(fig1) == 1

    def test_fig1_conflict_is_irresolvable(self, fig1):
        # Only input events (Req-; Req+) separate the two 11 states: no
        # internal signal can tell them apart without delaying an input.
        assert len(irresolvable_conflicts(fig1)) == 1

    def test_resolvable_conflicts_not_flagged(self, q_module):
        assert irresolvable_conflicts(q_module) == []


class TestInsertion:
    def test_fig1_resolution_fails_cleanly(self, fig1):
        # The conflict is irresolvable (see above): the search must report
        # failure rather than produce a bogus insertion.
        result = resolve_csc(fig1)
        assert not result.resolved
        assert result.signal_count == 0
        assert result.sg is fig1

    def test_resolved_sg_is_well_formed(self, q_module):
        result = resolve_csc(q_module)
        sg = result.sg
        assert result.resolved
        assert is_consistent(sg)
        assert is_output_persistent(sg)
        assert sg.kinds["csc0"] == SignalKind.INTERNAL

    def test_resolve_q_module(self, q_module):
        result = resolve_csc(q_module)
        assert result.resolved
        assert result.signal_count == 1

    def test_resolve_lr_max_needs_two_signals(self):
        sg = generate_sg(lr_expanded())
        result = resolve_csc(sg)
        assert result.resolved
        assert result.signal_count == 2  # Table 1, "Max. concurrency" row

    def test_already_clean_sg_untouched(self, q_module):
        clean = resolve_csc(q_module).sg
        again = resolve_csc(clean)
        assert again.resolved
        assert again.signal_count == 0
        assert again.sg is clean

    def test_threading_rejects_input_triggers(self, fig1):
        assert insert_state_signal(fig1, "Req+", "Ack-", "x") is None
        assert insert_state_signal(fig1, "Ack-", "Req-", "x") is None

    def test_threading_rejects_same_trigger(self, q_module):
        assert insert_state_signal(q_module, "lo+", "lo+", "x") is None

    def test_threading_rejects_unknown(self, q_module):
        assert insert_state_signal(q_module, "zz", "lo+", "x") is None

    def test_threading_initial_value_validated(self, q_module):
        with pytest.raises(ValueError):
            insert_state_signal(q_module, "lo+", "ro+", "x", initial_value=2)

    def test_threading_extends_codes(self, q_module):
        candidate = insert_state_signal(q_module, "ro+", "lo+", "x")
        assert candidate is not None
        assert len(candidate.signals) == len(q_module.signals) + 1
        assert is_consistent(candidate)

    def test_sequencing_allows_input_triggers(self, q_module):
        candidate = insert_state_signal_sequencing(q_module, "ri+", "li-", "x")
        assert candidate is not None
        assert is_consistent(candidate)

    def test_sequencing_never_delays_inputs(self, q_module):
        candidate = insert_state_signal_sequencing(q_module, "ri+", "li-", "x")
        # Every state that enabled an input in the original enables it in
        # the extension (pending or not).
        for state in candidate.states:
            orig = state[0]
            for label in q_module.enabled(orig):
                if q_module.is_input_label(label):
                    assert candidate.target(state, label) is not None

    def test_enumerate_orders_by_quality(self, q_module):
        candidates = enumerate_insertions(q_module, "x")
        assert candidates
        conflicts = [choice.conflicts_after for choice, _ in candidates]
        assert conflicts == sorted(conflicts)

    def test_find_insertion_none_when_clean(self, q_module):
        clean = resolve_csc(q_module).sg
        assert find_insertion(clean, "x") is None

    def test_inserted_signal_participates_in_logic(self, q_module):
        from repro.logic.functions import extract_all_functions
        result = resolve_csc(q_module)
        functions = extract_all_functions(result.sg)
        assert "csc0" in functions
        assert all(not f.has_csc_conflict for f in functions.values())
