"""Unit tests for the shared exploration core (repro.explore)."""

import pytest

from repro.explore import (BudgetExceedance, BudgetExceeded, BudgetMeter,
                           ExplorationBudget, ample_internal_moves,
                           explore_packed, explore_tuples, minimal_trace,
                           stubborn_reducer)
from repro.petri.net import PetriNet
from repro.sg.generator import GenerationBudgetError, StateGraphError, \
    generate_sg
from repro.specs import suite
from repro.specs.families import fifo_chain, micropipeline_chain
from repro.specs.lr import lr_expanded


def _nets():
    stgs = {name: suite.load(name) for name in suite.suite_names()}
    stgs["lr"] = lr_expanded()
    stgs["fifo_chain_3"] = fifo_chain(3)
    stgs["micropipeline_chain_2"] = micropipeline_chain(2)
    return {name: stg.net for name, stg in stgs.items()}


class TestEngineEquivalence:
    """explore_packed and explore_tuples must describe the same graph."""

    def test_same_states_arcs_levels(self):
        for name, net in _nets().items():
            packed = net.compile_packed()
            assert packed is not None, name
            vec = explore_packed(packed)
            seq = explore_tuples(net)
            assert len(vec.states) == len(seq.states), name
            assert len(vec.arcs) == len(seq.arcs), name
            assert vec.levels == seq.levels, name

    def test_same_marking_and_arc_sets(self):
        # Orders differ (transition-major vs state-major); the *sets*
        # of reachable markings and labelled arcs must not.
        for name, net in _nets().items():
            packed = net.compile_packed()
            vec = explore_packed(packed)
            seq = explore_tuples(net)
            vec_markings = [packed.unpack(row) for row in vec.states]
            assert set(vec_markings) == set(seq.states), name
            names = net.transition_names

            def arc_set(run, markings):
                return {(markings[s], names[t], markings[d])
                        for s, t, d in run.arcs}

            assert (arc_set(vec, vec_markings)
                    == arc_set(seq, seq.states)), name

    def test_initial_state_first(self):
        for name, net in _nets().items():
            packed = net.compile_packed()
            vec = explore_packed(packed)
            seq = explore_tuples(net)
            assert packed.unpack(vec.states[0]) == seq.states[0], name


class TestExplorationBudget:
    def test_negative_limits_rejected(self):
        with pytest.raises(ValueError):
            ExplorationBudget(max_states=-1)
        with pytest.raises(ValueError):
            ExplorationBudget(max_arcs=-2)
        with pytest.raises(ValueError):
            ExplorationBudget(max_seconds=-0.5)

    def test_unbounded(self):
        assert ExplorationBudget().unbounded
        assert not ExplorationBudget(max_states=1).unbounded

    def test_meter_admits_exactly_the_budget(self):
        meter = ExplorationBudget(max_states=3).meter()
        for _ in range(3):
            meter.admit_state()
        with pytest.raises(BudgetExceeded) as excinfo:
            meter.admit_state()
        exceedance = excinfo.value.exceedance
        assert exceedance.resource == "states"
        assert exceedance.limit == 3
        assert exceedance.states == 3

    def test_meter_charges_arcs(self):
        meter = ExplorationBudget(max_arcs=5).meter()
        meter.charge_arc(5)
        with pytest.raises(BudgetExceeded) as excinfo:
            meter.charge_arc()
        assert excinfo.value.exceedance.resource == "arcs"

    def test_states_exhausted_precheck(self):
        meter = ExplorationBudget(max_states=2).meter()
        assert not meter.states_exhausted()
        meter.admit_state()
        meter.admit_state()
        assert meter.states_exhausted()
        assert meter.states_exhausted(admitted=1) is False
        assert ExplorationBudget().meter().states_exhausted() is False

    def test_describe_wording(self):
        exceedance = BudgetExceedance("states", 10, 10, 40)
        assert exceedance.describe("product") == "product exceeded 10 states"
        clock = BudgetExceedance("seconds", 1.5, 7, 20)
        assert clock.describe() == "exploration exceeded 1.5s wall clock"


class TestGenerationBudget:
    """generate_sg budget semantics: exact fit passes, one less raises."""

    def test_exact_budget_fits(self):
        stg = suite.load("vme_read")
        full = generate_sg(stg)
        sized = generate_sg(stg, budget=ExplorationBudget(
            max_states=len(full)))
        assert len(sized) == len(full)
        assert set(sized.arcs()) == set(full.arcs())

    def test_one_state_short_raises(self):
        stg = suite.load("vme_read")
        n = len(generate_sg(stg))
        with pytest.raises(GenerationBudgetError) as excinfo:
            generate_sg(stg, budget=ExplorationBudget(max_states=n - 1))
        exceedance = excinfo.value.exceedance
        assert exceedance.resource == "states"
        assert exceedance.states == n - 1

    def test_error_is_both_kinds(self):
        stg = suite.load("half")
        with pytest.raises(StateGraphError):
            generate_sg(stg, budget=ExplorationBudget(max_states=1))
        with pytest.raises(BudgetExceeded):
            generate_sg(stg, budget=ExplorationBudget(max_states=1))

    def test_arc_budget(self):
        stg = suite.load("half")
        full = generate_sg(stg)
        assert len(generate_sg(stg, budget=ExplorationBudget(
            max_arcs=full.arc_count()))) == len(full)
        with pytest.raises(GenerationBudgetError) as excinfo:
            generate_sg(stg, budget=ExplorationBudget(
                max_arcs=full.arc_count() - 1))
        assert excinfo.value.exceedance.resource == "arcs"

    def test_legacy_limit_still_caps(self):
        with pytest.raises(GenerationBudgetError):
            generate_sg(suite.load("micropipeline"), limit=3)


class TestConformanceBudget:
    def test_state_limit_verdict(self):
        from repro.flow import run_flow_stg
        from repro.verify import check_conformance

        sg = generate_sg(suite.load("vme_read"))
        flow = run_flow_stg(None, strategy="full", initial_sg=sg,
                            name="vme_read/full")
        report = check_conformance(flow.report.circuit.netlist,
                                   flow.report.resolved_sg, max_states=3,
                                   name="vme_read/full")
        assert report.verdict == "state-limit"
        assert report.reason == "product exceeded 3 states"
        assert not report.ok


class TestStubbornReduction:
    def test_reduced_markings_subset_of_full(self):
        for name, net in _nets().items():
            packed = net.compile_packed()
            full = explore_packed(packed)
            reduced = explore_packed(packed,
                                     reducer=stubborn_reducer(packed))
            assert 0 < len(reduced.states) <= len(full.states), name
            assert set(reduced.states) <= set(full.states), name

    def test_generate_sg_stubborn_subset(self):
        stg = suite.load("micropipeline")
        full = generate_sg(stg)
        reduced = generate_sg(stg, stubborn=True)
        assert set(reduced.states) <= set(full.states)
        assert reduced.initial == full.initial

    def test_deadlocks_preserved(self):
        # A net with a genuine deadlock: two handshakes race for one
        # shared token; grabbing both halves out of order gets stuck.
        net = PetriNet("deadlocky")
        for place, tokens in (("free", 1), ("wa", 1), ("wb", 1),
                              ("ga", 0), ("gb", 0)):
            net.add_place(place, tokens=tokens)
        net.add_transition("ta")
        net.add_arc("free", "ta")
        net.add_arc("wa", "ta")
        net.add_arc("ta", "ga")
        net.add_transition("tb")
        net.add_arc("free", "tb")
        net.add_arc("wb", "tb")
        net.add_arc("tb", "gb")
        packed = net.compile_packed()
        assert packed is not None

        def deadlocks(run):
            sources = {source for source, _, _ in run.arcs}
            return {run.states[i] for i in range(len(run.states))
                    if i not in sources}

        full = explore_packed(packed)
        reduced = explore_packed(packed, reducer=stubborn_reducer(packed))
        assert deadlocks(full)
        assert deadlocks(reduced) == deadlocks(full)

    def test_off_is_byte_identical(self):
        from repro.pipeline.artifacts import sg_to_payload
        from repro.pipeline.hashing import digest_payload

        stg = suite.load("fifo_cell")
        assert (digest_payload(sg_to_payload(generate_sg(stg)))
                == digest_payload(sg_to_payload(
                    generate_sg(stg, stubborn=False))))


class TestAmpleInternalMoves:
    def test_first_invisible_move_wins(self):
        moves = ["visible-a", "hidden-1", "hidden-2", "visible-b"]
        kept = ample_internal_moves(moves, lambda m: m.startswith("hidden"))
        assert kept == ["hidden-1"]

    def test_all_visible_untouched(self):
        moves = ("alpha", "beta")
        assert ample_internal_moves(moves, lambda m: False) == ["alpha",
                                                               "beta"]


class TestMinimalTrace:
    def test_shortest_path_reconstruction(self):
        parents = {"s0": None, "s1": ("s0", "a+"), "s2": ("s1", "b+")}
        assert minimal_trace(parents, "s2") == ["a+", "b+"]
        assert minimal_trace(parents, "s0") == []

    def test_final_step_appended(self):
        parents = {"s0": None, "s1": ("s0", "a+")}
        assert minimal_trace(parents, "s1", final_step="x-") == ["a+", "x-"]
