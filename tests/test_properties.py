"""Unit tests for implementability checks (repro.sg.properties)."""

import pytest

from repro.petri.stg import Direction, SignalEvent, SignalKind
from repro.sg.generator import generate_sg
from repro.sg.graph import StateGraph
from repro.sg.properties import (check_implementability, commutativity_violations,
                                 consistency_violations, csc_conflicting_signals,
                                 csc_conflicts, deadlock_states, has_csc, has_usc,
                                 is_commutative, is_consistent,
                                 is_output_persistent, is_speed_independent,
                                 persistency_violations, usc_conflicts)
from repro.specs.fig1 import fig1_stg
from repro.specs.lr import lr_expanded, q_module_stg


def build_sg(signals, arcs, codes=None, initial=None):
    """signals: {name: kind}; arcs: [(src, label, dst)]."""
    sg = StateGraph("t")
    for name, kind in signals.items():
        sg.declare_signal(name, kind)
    labels = {label for _, label, _ in arcs}
    for label in labels:
        sg.declare_event(label)
    for src, label, dst in arcs:
        sg.add_arc(src, label, dst)
    for state, code in (codes or {}).items():
        sg.add_state(state, code)
    if initial is not None:
        sg.initial = initial
    return sg


class TestConsistency:
    def test_fig1_consistent(self):
        assert is_consistent(generate_sg(fig1_stg()))

    def test_rise_from_one_flagged(self):
        sg = build_sg({"a": SignalKind.OUTPUT},
                      [("s0", "a+", "s1")],
                      codes={"s0": (1,), "s1": (1,)})
        violations = consistency_violations(sg)
        assert len(violations) == 1
        assert violations[0].label == "a+"

    def test_unrelated_signal_change_flagged(self):
        sg = build_sg({"a": SignalKind.OUTPUT, "b": SignalKind.OUTPUT},
                      [("s0", "a+", "s1")],
                      codes={"s0": (0, 0), "s1": (1, 1)})
        violations = consistency_violations(sg)
        assert any("b" in v.reason for v in violations)

    def test_toggle_arc_must_flip(self):
        sg = StateGraph()
        sg.declare_signal("a", SignalKind.OUTPUT)
        sg.declare_event("a~", SignalEvent("a", Direction.TOGGLE))
        sg.add_state("s0", (0,))
        sg.add_state("s1", (0,))
        sg.add_arc("s0", "a~", "s1")
        assert not is_consistent(sg)


class TestSpeedIndependence:
    def test_fig1_speed_independent(self):
        sg = generate_sg(fig1_stg())
        assert is_commutative(sg)
        assert is_output_persistent(sg)
        assert is_speed_independent(sg)

    def test_commutativity_violation_detected(self):
        # Both orders of a/b fire but land in different states.
        arcs = [("s0", "a+", "s1"), ("s0", "b+", "s2"),
                ("s1", "b+", "s3"), ("s2", "a+", "s4")]
        sg = build_sg({"a": SignalKind.OUTPUT, "b": SignalKind.OUTPUT}, arcs)
        violations = commutativity_violations(sg)
        assert len(violations) == 1
        assert {violations[0].label_a, violations[0].label_b} == {"a+", "b+"}

    def test_output_disabled_by_input_flagged(self):
        # Output a+ enabled at s0, input b+ leads to a state without a+.
        arcs = [("s0", "a+", "s1"), ("s0", "b+", "s2")]
        sg = build_sg({"a": SignalKind.OUTPUT, "b": SignalKind.INPUT}, arcs)
        violations = persistency_violations(sg)
        assert any(v.disabled == "a+" and v.by == "b+" for v in violations)

    def test_input_disabled_by_input_allowed(self):
        # Free choice between two inputs: the environment's decision.
        arcs = [("s0", "a+", "s1"), ("s0", "b+", "s2")]
        sg = build_sg({"a": SignalKind.INPUT, "b": SignalKind.INPUT}, arcs)
        assert is_output_persistent(sg)

    def test_input_disabled_by_output_flagged(self):
        arcs = [("s0", "a+", "s1"), ("s0", "b+", "s2")]
        sg = build_sg({"a": SignalKind.INPUT, "b": SignalKind.OUTPUT}, arcs)
        violations = persistency_violations(sg)
        assert any(v.disabled == "a+" and v.by == "b+" for v in violations)

    def test_check_inputs_false_ignores_input_disabling(self):
        arcs = [("s0", "a+", "s1"), ("s0", "b+", "s2")]
        sg = build_sg({"a": SignalKind.INPUT, "b": SignalKind.OUTPUT}, arcs)
        relaxed = persistency_violations(sg, check_inputs=False)
        # The output b+ being disabled by a+ is still flagged, but the input
        # a+ being disabled by the output b+ no longer is.
        assert not any(v.disabled == "a+" for v in relaxed)
        assert any(v.disabled == "b+" for v in relaxed)


class TestEncoding:
    def test_fig1_has_csc_conflict(self):
        sg = generate_sg(fig1_stg())
        conflicts = csc_conflicts(sg)
        assert len(conflicts) == 1
        assert conflicts[0].code == (1, 1)
        assert not has_csc(sg)
        assert not has_usc(sg)

    def test_fig1_conflicting_signal_is_ack(self):
        sg = generate_sg(fig1_stg())
        assert csc_conflicting_signals(sg) == {"Ack"}

    def test_q_module_has_one_usc_pair(self):
        sg = generate_sg(q_module_stg())
        assert len(usc_conflicts(sg)) == 1
        assert len(csc_conflicts(sg)) == 1

    def test_usc_without_csc(self):
        # Same code, same (empty) non-input excitation: USC but not CSC.
        arcs = [("s0", "a+", "s1"), ("s1", "b+", "s2"), ("s2", "a-", "s3")]
        sg = build_sg({"a": SignalKind.INPUT, "b": SignalKind.INPUT},
                      arcs,
                      codes={"s0": (0, 0), "s1": (1, 0), "s2": (1, 1),
                             "s3": (0, 1)})
        # craft: give s3 the same code as s0
        sg.codes["s3"] = (0, 0)
        assert not has_usc(sg)
        assert has_csc(sg)  # only inputs are enabled anywhere

    def test_max_concurrency_lr_conflicts(self):
        sg = generate_sg(lr_expanded())
        assert len(csc_conflicts(sg)) == 3


class TestReport:
    def test_fig1_report(self):
        report = check_implementability(generate_sg(fig1_stg()))
        assert report.consistent
        assert report.speed_independent
        assert not report.csc
        assert report.csc_conflict_count == 1
        assert not report.implementable
        assert report.deadlock_free

    def test_deadlock_states(self):
        arcs = [("s0", "a+", "s1")]
        sg = build_sg({"a": SignalKind.OUTPUT}, arcs)
        assert deadlock_states(sg) == ["s1"]
