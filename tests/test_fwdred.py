"""Unit tests for forward reduction and validity (repro.reduction)."""

import pytest

from repro.reduction.fwdred import (ReductionError, ReductionResult,
                                    forward_reduction, reducible_pairs)
from repro.reduction.validity import check_validity
from repro.sg.generator import generate_sg
from repro.sg.graph import StateGraph
from repro.sg.properties import (is_commutative, is_consistent,
                                 is_output_persistent)
from repro.sg.regions import are_concurrent, concurrent_pairs, excitation_region
from repro.specs.fig1 import fig1_stg
from repro.specs.fragments import fig8_sg
from repro.specs.lr import lr_expanded


class TestFig8:
    """The paper's own worked example of FwdRed (Fig. 8)."""

    def test_fragment_structure(self):
        sg = fig8_sg()
        assert len(sg) == 10
        assert excitation_region(sg, "a") == {"s1", "s3", "s5", "s7"}
        assert excitation_region(sg, "b") == {"s5", "s6"}

    def test_fwdred_a_b(self):
        sg = fig8_sg()
        result = forward_reduction(sg, "a", "b")
        assert result.valid
        reduced = result.sg
        # ER_red(a) = {s7}: the backward reachability from ER(a) /\ ER(b)
        # = {s5} sweeps s3 and s1 inside ER(a).
        assert excitation_region(reduced, "a") == {"s7"}
        # States only reachable through removed arcs disappear.
        for gone in ("s2", "s4", "s6"):
            assert gone not in reduced
        for kept in ("s0", "s1", "s3", "s5", "s7", "s8", "t1"):
            assert kept in reduced

    def test_fwdred_a_b_kills_other_concurrency(self):
        # The paper: reducing (a, b) also removes concurrency of a with d
        # and e, because of the backward sweep.
        reduced = forward_reduction(fig8_sg(), "a", "b").sg
        for other in ("b", "d", "e"):
            assert not are_concurrent(reduced, "a", other)

    def test_fwdred_against_non_concurrent_event(self):
        result = forward_reduction(fig8_sg(), "a", "c")
        assert not result.valid
        assert "not concurrent" in result.reason

    def test_fwdred_same_event_rejected(self):
        with pytest.raises(ReductionError):
            forward_reduction(fig8_sg(), "a", "a")

    def test_fwdred_unknown_event_rejected(self):
        with pytest.raises(ReductionError):
            forward_reduction(fig8_sg(), "zz", "a")

    def test_fwdred_reports_removals(self):
        result = forward_reduction(fig8_sg(), "a", "b")
        assert result.removed_arcs == 3  # arcs from s1, s3, s5
        assert result.removed_states == 3  # s2, s4, s6


class TestValidityRules:
    def test_input_event_cannot_be_delayed(self):
        sg = generate_sg(fig1_stg())
        result = forward_reduction(sg, "Req+", "Ack-")
        assert not result.valid
        assert "input" in result.reason

    def test_output_delayed_by_input_ok(self):
        sg = generate_sg(fig1_stg())
        result = forward_reduction(sg, "Ack-", "Req+")
        assert result.valid
        assert not are_concurrent(result.sg, "Ack-", "Req+")

    def test_fig1_reduction_shrinks_but_keeps_conflict(self):
        # The only reducible pair of Fig. 1 is (Ack-, Req+); serializing it
        # removes a state but the code 11 still appears twice -- Fig. 1's
        # conflict is an encoding problem, not a concurrency problem.
        from repro.sg.properties import csc_conflicts
        sg = generate_sg(fig1_stg())
        reduced = forward_reduction(sg, "Ack-", "Req+").sg
        assert len(reduced) == len(sg) - 1
        assert len(csc_conflicts(reduced)) == 1

    def test_reduction_preserves_si_and_consistency(self):
        sg = generate_sg(lr_expanded())
        for before, delayed in sorted(reducible_pairs(sg)):
            result = forward_reduction(sg, delayed, before)
            if not result.valid:
                continue
            assert is_consistent(result.sg), (before, delayed)
            assert is_commutative(result.sg), (before, delayed)
            assert is_output_persistent(result.sg), (before, delayed)

    def test_reduction_is_monotone_on_arcs(self):
        sg = generate_sg(lr_expanded())
        original_arcs = set(sg.arcs())
        for before, delayed in sorted(reducible_pairs(sg)):
            result = forward_reduction(sg, delayed, before)
            if result.valid:
                assert set(result.sg.arcs()) < original_arcs

    def test_no_events_disappear(self):
        sg = generate_sg(lr_expanded())
        original_events = {label for _, label, _ in sg.arcs()}
        for before, delayed in sorted(reducible_pairs(sg)):
            result = forward_reduction(sg, delayed, before)
            if result.valid:
                reduced_events = {label for _, label, _ in result.sg.arcs()}
                assert reduced_events == original_events

    def test_initial_state_preserved(self):
        sg = generate_sg(lr_expanded())
        for before, delayed in sorted(reducible_pairs(sg)):
            result = forward_reduction(sg, delayed, before)
            if result.valid:
                assert result.sg.initial == sg.initial


class TestReduciblePairs:
    def test_no_input_delays_offered(self):
        sg = generate_sg(lr_expanded())
        for before, delayed in reducible_pairs(sg):
            assert not sg.is_input_label(delayed)

    def test_keep_conc_filters(self):
        sg = generate_sg(lr_expanded())
        all_pairs = reducible_pairs(sg)
        kept = frozenset({frozenset(("li-", "ro-"))})
        filtered = reducible_pairs(sg, kept)
        assert ("li-", "ro-") not in filtered
        assert filtered < all_pairs

    def test_pairs_come_from_concurrency(self):
        sg = generate_sg(lr_expanded())
        conc = concurrent_pairs(sg)
        for before, delayed in reducible_pairs(sg):
            assert tuple(sorted((before, delayed))) in conc


class TestCheckValidity:
    def test_identical_graphs_valid(self):
        sg = generate_sg(fig1_stg())
        assert check_validity(sg, sg.copy()).valid

    def test_lost_event_detected(self):
        sg = generate_sg(fig1_stg())
        reduced = sg.copy()
        for state in list(reduced.states):
            if reduced.target(state, "Ack-") is not None:
                reduced.remove_arc(state, "Ack-")
        report = check_validity(sg, reduced)
        assert not report.valid
        assert any("disappeared" in reason for reason in report.reasons)

    def test_new_deadlock_detected(self):
        sg = generate_sg(fig1_stg())
        reduced = sg.copy()
        state = next(s for s in reduced.states
                     if set(reduced.enabled(s)) == {"Req+"})
        reduced.remove_arc(state, "Req+")
        report = check_validity(sg, reduced)
        assert not report.valid

    def test_changed_initial_detected(self):
        sg = generate_sg(fig1_stg())
        reduced = sg.copy()
        reduced.initial = next(s for s in reduced.states if s != sg.initial)
        report = check_validity(sg, reduced)
        assert not report.valid
        assert any("initial" in reason for reason in report.reasons)

    def test_delayed_input_detected(self):
        sg = generate_sg(fig1_stg())
        reduced = sg.copy()
        state = next(s for s in reduced.states
                     if reduced.target(s, "Req+") is not None
                     and len(reduced.enabled(s)) == 2)
        reduced.remove_arc(state, "Req+")
        report = check_validity(sg, reduced)
        assert not report.valid
        assert any("delayed" in reason for reason in report.reasons)
