"""Unit tests for excitation regions and concurrency (repro.sg.regions)."""

import pytest

from repro.sg.generator import generate_sg
from repro.sg.regions import (are_concurrent, concurrency_matrix,
                              concurrent_pairs, enabled_outputs,
                              er_intersection_concurrent, excitation_region,
                              excitation_region_components, minimal_states,
                              quiescent_region, trigger_events)
from repro.specs.fig1 import fig1_stg
from repro.specs.fragments import fig8_sg
from repro.specs.lr import lr_expanded, q_module_stg


@pytest.fixture(scope="module")
def fig1():
    return generate_sg(fig1_stg())


@pytest.fixture(scope="module")
def lr_max():
    return generate_sg(lr_expanded())


class TestExcitationRegions:
    def test_fig1_er_sizes(self, fig1):
        # ER(Req+) and ER(Ack-) both have two states (Section 2).
        assert len(excitation_region(fig1, "Req+")) == 2
        assert len(excitation_region(fig1, "Ack-")) == 2
        assert len(excitation_region(fig1, "Ack+")) == 1

    def test_fig1_ers_intersect_for_concurrent(self, fig1):
        er_req = excitation_region(fig1, "Req+")
        er_ack = excitation_region(fig1, "Ack-")
        assert er_req & er_ack  # the paper's example of ER intersection

    def test_er_components_connected(self, fig1):
        for label in fig1.events:
            components = excitation_region_components(fig1, label)
            total = set().union(*components) if components else set()
            assert total == excitation_region(fig1, label)

    def test_sequential_ers_are_singletons(self):
        sg = generate_sg(q_module_stg())
        for label in sg.events:
            assert len(excitation_region(sg, label)) == 1

    def test_quiescent_region(self, fig1):
        # States where Ack is stably 0: none are in ER(Ack+).
        stable0 = quiescent_region(fig1, "Ack", 0)
        assert stable0.isdisjoint(excitation_region(fig1, "Ack+"))
        for state in stable0:
            assert fig1.value_of(state, "Ack") == 0

    def test_minimal_states(self, fig1):
        er = excitation_region(fig1, "Req+")
        minimal = minimal_states(fig1, er)
        assert minimal
        assert minimal <= er


class TestConcurrency:
    def test_fig1_req_plus_concurrent_with_ack_minus(self, fig1):
        assert are_concurrent(fig1, "Req+", "Ack-")
        assert are_concurrent(fig1, "Ack-", "Req+")

    def test_fig1_sequential_events_not_concurrent(self, fig1):
        assert not are_concurrent(fig1, "Req+", "Ack+")
        assert not are_concurrent(fig1, "Ack+", "Req-")

    def test_event_not_concurrent_with_itself(self, fig1):
        assert not are_concurrent(fig1, "Req+", "Req+")

    def test_concurrent_pairs_symmetric_closure(self, fig1):
        pairs = concurrent_pairs(fig1)
        assert pairs == {("Ack-", "Req+")}

    def test_diamond_matches_er_intersection_on_si_graphs(self, fig1, lr_max):
        # For speed-independent SGs the two definitions coincide (Section 2).
        for sg in (fig1, lr_max):
            labels = sorted(sg.events)
            for i, a in enumerate(labels):
                for b in labels[i + 1:]:
                    assert are_concurrent(sg, a, b) == \
                        er_intersection_concurrent(sg, a, b), (a, b)

    def test_q_module_has_no_concurrency(self):
        sg = generate_sg(q_module_stg())
        assert concurrent_pairs(sg) == set()

    def test_lr_max_concurrency_structure(self, lr_max):
        pairs = concurrent_pairs(lr_max)
        # Reset events are maximally concurrent after expansion: the two
        # falling input events overlap (the li || ri row of Table 1).
        assert ("li-", "ri-") in pairs
        assert len(pairs) >= 8

    def test_choice_is_not_concurrency(self):
        sg = fig8_sg()
        # g and d are both enabled at s1 but form no diamond: choice.
        assert not are_concurrent(sg, "g", "d")
        assert are_concurrent(sg, "a", "d")

    def test_concurrency_matrix_consistent(self, fig1):
        matrix = concurrency_matrix(fig1)
        assert matrix[("Req+", "Ack-")] is True
        assert matrix[("Ack-", "Req+")] is True
        assert matrix[("Req+", "Ack+")] is False


class TestTriggers:
    def test_fig1_triggers(self, fig1):
        # Ack+ is triggered by Req+ (and initially enabled); Req- by Ack+.
        assert trigger_events(fig1, "Req-") == {"Ack+"}
        assert "Req+" in trigger_events(fig1, "Ack+")

    def test_enabled_outputs(self, fig1):
        for state in fig1.states:
            outputs = enabled_outputs(fig1, state)
            assert all(not fig1.is_input_label(label) for label in outputs)
