"""E9 / ablation: the exploration knobs of Fig. 9.

The paper exposes two designer-facing knobs: the frontier width of the
exploration and the weight ``W`` trading CSC-conflict pressure against
estimated logic complexity.  This bench sweeps both on the LR-process and
cross-checks the claims the algorithm's design rests on:

* wider exploration never yields a worse best-cost;
* the best-first strategy dominates a narrow level-beam on the deceptive
  reshuffling landscape;
* ``W -> 0`` drives the search to conflict-free solutions.
"""

from conftest import print_table
from repro import generate_sg, reduce_concurrency
from repro.sg.properties import csc_conflicts
from repro.specs.lr import lr_expanded


def sweep():
    sg = generate_sg(lr_expanded())
    results = {}
    for width in (1, 2, 4, 8):
        results[f"beam w={width}"] = reduce_concurrency(
            sg, strategy="beam", size_frontier=width)
    results["best-first"] = reduce_concurrency(sg)
    for weight in (0.0, 0.5, 1.0):
        results[f"W={weight}"] = reduce_concurrency(sg, weight=weight)
    return sg, results


def test_ablation(benchmark):
    sg, results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [(name, f"{r.best_cost:.2f}", r.explored_count,
             len(csc_conflicts(r.best)))
            for name, r in results.items()]
    print_table("Ablation: exploration knobs (LR-process)",
                ("configuration", "best cost", "explored", "CSC conflicts"),
                rows)

    # Monotonicity in beam width (costs are comparable: same W).
    beams = [results[f"beam w={w}"].best_cost for w in (1, 2, 4, 8)]
    assert all(a >= b - 1e-9 for a, b in zip(beams, beams[1:]))

    # Best-first at least matches the widest beam tried.
    assert results["best-first"].best_cost <= beams[-1] + 1e-9

    # W = 0: pure CSC pressure finds a conflict-free design.
    assert len(csc_conflicts(results["W=0.0"].best)) == 0

    # Every strategy improves on the unreduced expansion.
    for name, result in results.items():
        assert result.best_cost <= result.initial_cost, name
