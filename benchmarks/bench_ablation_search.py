"""Ablation: the exploration knobs on the LR-process search.

Thin shim over the registered case -- the workload, metrics and checks
live in :mod:`repro.bench.cases.tables` (``ablation_search``).  Run the
whole registry with ``python -m repro bench``.
"""

from repro.bench import pytest_case


def test_ablation(benchmark):
    pytest_case("ablation_search", benchmark)
