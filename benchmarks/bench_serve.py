"""Serving throughput and guarantees: cold vs warm, dedup, determinism.

Thin shim over the registered case -- the workload, metrics and checks
live in :mod:`repro.bench.cases.serving` (``serve_throughput``).  The
versioned ``BENCH_<rev>.json`` written by ``python -m repro bench``
supersedes the old ``serve_report.json`` artifact.
"""

from repro.bench import pytest_case


def test_serve(benchmark):
    pytest_case("serve_throughput", benchmark)
