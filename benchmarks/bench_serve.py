"""Serving throughput and guarantees: cold vs warm, dedup, determinism.

Drives a real server (sockets, HTTP, the worker executor -- nothing
mocked) through the acceptance properties of the serving layer and
writes ``benchmarks/serve_report.json``:

* **warm-from-store** -- a fresh server over a warm store answers a
  repeated request with **zero** pipeline stages computed;
* **in-flight dedup** -- N identical concurrent requests trigger exactly
  one computation (N-1 dedup hits), and every client reads the same
  bytes;
* **worker-count determinism** -- the ``result`` payloads produced by a
  ``workers=1`` and a ``workers=4`` server (separate cold stores) are
  byte-identical, for single synthesis jobs and for whole sweep jobs;
* **throughput** -- requests/sec over the suite specs, cold (every stage
  computes) vs warm (history + store hits), and the warm speedup.

The in-process executor (``workers=0``) is used for the single-worker
phases so the benchmark is honest on 1-CPU CI runners; the
``workers=4`` phase exercises the real ``ProcessPoolExecutor`` path.
"""

import json
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

from repro.serve import BackgroundServer, json_bytes

HERE = Path(__file__).resolve().parent
REPORT_PATH = HERE / "serve_report.json"

#: Suite specs small enough to keep the benchmark minutes-free; mmu's
#: unreduced CSC search alone would dwarf every serving effect measured
#: here (same exclusion as bench_sweep/bench_pipeline).
SPECS = ("half", "vme_read", "fifo_cell", "lr")

CONCURRENT_CLIENTS = 8


def _call(base, path, payload=None, timeout=300):
    if payload is None:
        request = urllib.request.Request(base + path)
    else:
        request = urllib.request.Request(
            base + path, data=json.dumps(payload).encode("utf-8"),
            method="POST")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def _synth_all(base, specs):
    """POST every spec (blocking); returns {spec: job view} and seconds."""
    started = time.perf_counter()
    views = {spec: _call(base, "/synth", {"spec": spec, "wait": True})
             for spec in specs}
    return views, time.perf_counter() - started


def _stage_counts(views):
    computed = reused = 0
    for view in views.values():
        for state in view["stages"].values():
            if state == "cached":
                reused += 1
            else:
                computed += 1
    return computed, reused


def build_report():
    report = {"specs": list(SPECS), "concurrent_clients": CONCURRENT_CLIENTS}

    with tempfile.TemporaryDirectory() as tempdir:
        store = str(Path(tempdir) / "store")

        # ---- cold phase: fresh server, empty store -------------------
        with BackgroundServer(store_root=store, workers=0) as server:
            base = f"http://127.0.0.1:{server.port}"
            cold_views, cold_seconds = _synth_all(base, SPECS)
            computed, reused = _stage_counts(cold_views)
            report["cold_seconds"] = cold_seconds
            report["cold_rps"] = len(SPECS) / cold_seconds
            report["cold_stages_computed"] = computed
            report["cold_stages_reused"] = reused

            # Same-server repeat: answered from job history.
            history_views, history_seconds = _synth_all(base, SPECS)
            report["history_seconds"] = history_seconds
            report["history_rps"] = len(SPECS) / history_seconds
            report["history_same_results"] = all(
                json_bytes(history_views[s]["result"])
                == json_bytes(cold_views[s]["result"]) for s in SPECS)

            # In-flight dedup: concurrent identical requests, one compute.
            stats_before = _call(base, "/stats")
            results = []

            def hit():
                results.append(_call(base, "/synth",
                                     {"spec": "micropipeline",
                                      "wait": True}))

            threads = [threading.Thread(target=hit)
                       for _ in range(CONCURRENT_CLIENTS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats_after = _call(base, "/stats")
            report["dedup_executions"] = (stats_after["tasks_executed"]
                                          - stats_before["tasks_executed"])
            report["dedup_hits"] = (stats_after["dedup_hits"]
                                    - stats_before["dedup_hits"])
            report["dedup_distinct_bodies"] = len(
                {json_bytes(view["result"]) for view in results})

        # ---- warm phase: FRESH server over the now-warm store --------
        with BackgroundServer(store_root=store, workers=0) as server:
            base = f"http://127.0.0.1:{server.port}"
            warm_views, warm_seconds = _synth_all(base, SPECS)
            computed, reused = _stage_counts(warm_views)
            report["warm_seconds"] = warm_seconds
            report["warm_rps"] = len(SPECS) / warm_seconds
            report["warm_stages_computed"] = computed
            report["warm_stages_reused"] = reused
            report["warm_speedup"] = cold_seconds / warm_seconds
            report["warm_same_results"] = all(
                json_bytes(warm_views[s]["result"])
                == json_bytes(cold_views[s]["result"]) for s in SPECS)

        # ---- worker-count determinism: 1 vs 4, separate cold stores --
        sweep_request = {"specs": ["lr", "half"],
                         "strategies": ["none", "best-first", "full"],
                         "wait": True, "timeout": 600}
        bodies = {}
        for workers in (1, 4):
            with BackgroundServer(
                    store_root=str(Path(tempdir) / f"w{workers}"),
                    workers=workers) as server:
                base = f"http://127.0.0.1:{server.port}"
                synth = {spec: _call(base, "/synth",
                                     {"spec": spec, "wait": True})
                         for spec in SPECS}
                sweep = _call(base, "/sweep", sweep_request)
                assert sweep["status"] == "done", sweep["error"]
                bodies[workers] = (
                    {spec: json_bytes(view["result"])
                     for spec, view in synth.items()},
                    json_bytes(sweep["result"]))
        report["workers_1_vs_4_synth_identical"] = (
            bodies[1][0] == bodies[4][0])
        report["workers_1_vs_4_sweep_identical"] = (
            bodies[1][1] == bodies[4][1])

    REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True)
                           + "\n")
    return report


def test_serve(benchmark):
    from conftest import print_table

    report = benchmark.pedantic(build_report, rounds=1, iterations=1)

    print_table(
        "Synthesis service: cold vs warm over the suite specs",
        ("phase", "seconds", "req/s", "stages computed", "stages reused"),
        [("cold (empty store)", f"{report['cold_seconds']:.2f}",
          f"{report['cold_rps']:.1f}", report["cold_stages_computed"],
          report["cold_stages_reused"]),
         ("repeat (job history)", f"{report['history_seconds']:.3f}",
          f"{report['history_rps']:.1f}", 0, 0),
         ("warm (fresh server)", f"{report['warm_seconds']:.2f}",
          f"{report['warm_rps']:.1f}", report["warm_stages_computed"],
          report["warm_stages_reused"])])
    print(f"warm speedup {report['warm_speedup']:.1f}x; "
          f"{report['concurrent_clients']} concurrent identical requests -> "
          f"{report['dedup_executions']} computation(s)")

    # A warm repeated request computes zero pipeline stages.
    assert report["warm_stages_computed"] == 0
    assert report["warm_stages_reused"] > 0
    assert report["warm_same_results"]
    assert report["history_same_results"]

    # N identical concurrent requests trigger exactly one computation.
    assert report["dedup_executions"] == 1
    assert report["dedup_hits"] == report["concurrent_clients"] - 1
    assert report["dedup_distinct_bodies"] == 1

    # Responses are byte-identical across worker counts.
    assert report["workers_1_vs_4_synth_identical"]
    assert report["workers_1_vs_4_sweep_identical"]

    # Serving repeats from history/store must beat cold computation.
    assert report["history_seconds"] < report["cold_seconds"]
    assert report["warm_seconds"] < report["cold_seconds"]


if __name__ == "__main__":
    print(json.dumps(build_report(), indent=2, sort_keys=True))
