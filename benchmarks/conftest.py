"""Pytest fixture shim; the helpers live in :mod:`repro.bench.harness`."""

import pytest

from repro.bench.harness import print_table, report_row  # noqa: F401


@pytest.fixture
def table_printer():
    return print_table
