"""Shared helpers for the benchmark harness."""

import pytest


def print_table(title, header, rows):
    """Render a paper-style table to stdout (shown with pytest -s)."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(header[i])),
                  max((len(str(row[i])) for row in rows), default=0))
              for i in range(len(header))]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def report_row(report):
    """(name, area, #CSC, cycle, inputs) with an estimate marker."""
    name, area, csc, cycle, inputs = report.row()
    area_text = f"{area}" if report.csc_resolved else f"~{area}"
    return (name, area_text, csc, cycle, inputs)


@pytest.fixture
def table_printer():
    return print_table
