"""E2 / Fig. 2: handshake expansion of the LR-process.

Regenerates Fig. 2.d-f: the relabelled functional skeleton, the
unconstrained maximal-concurrency expansion (Fig. 2.e) and the valid
expansion under the channel interface constraints (Fig. 2.f), checking the
constraint [li+, lo+, li-, lo-] the paper spells out.
"""

from repro import generate_sg
from repro.hse.expansion import expand_four_phase
from repro.hse.spec import ChannelRole
from repro.sg.properties import check_implementability
from repro.sg.regions import are_concurrent
from repro.specs.lr import lr_spec


def expand_both():
    constrained = generate_sg(expand_four_phase(lr_spec()))
    free_spec = lr_spec()
    free_spec.channels["l"] = ChannelRole.FREE
    free_spec.channels["r"] = ChannelRole.FREE
    free = generate_sg(expand_four_phase(free_spec))
    return constrained, free


def test_fig2_expansion(benchmark):
    constrained, free = benchmark(expand_both)

    # Fig. 2.f: 16 states, speed independent, consistent.
    assert len(constrained) == 16
    report = check_implementability(constrained)
    assert report.consistent and report.speed_independent

    # The functional skeleton is intact: li+ -> ro+ -> ri+ -> lo+.
    assert not are_concurrent(constrained, "li+", "ro+")
    assert not are_concurrent(constrained, "ro+", "ri+")

    # Interface constraint of the passive port: the request is never reset
    # before the acknowledgment (li- after lo+, lo- after li-).
    assert not are_concurrent(constrained, "li-", "lo+")
    assert not are_concurrent(constrained, "lo-", "li-")

    # Maximal concurrency of the resets across channels survives.
    assert are_concurrent(constrained, "li-", "ri-")
    assert are_concurrent(constrained, "lo-", "ro-")

    # Fig. 2.e (no interface constraints) admits strictly more behaviour,
    # including the protocol-violating li- before lo+.
    assert len(free) > len(constrained)
    assert are_concurrent(free, "li-", "lo+")

    print(f"\nFig. 2.f expansion: {len(constrained)} states; "
          f"Fig. 2.e (unconstrained): {len(free)} states")
