"""Fig. 2: LR-process handshake expansion.

Thin shim over the registered case -- the workload, metrics and checks
live in :mod:`repro.bench.cases.figures` (``fig2_lr_expansion``).  Run
the whole registry with ``python -m repro bench``.
"""

from repro.bench import pytest_case


def test_fig2_expansion(benchmark):
    pytest_case("fig2_lr_expansion", benchmark)
