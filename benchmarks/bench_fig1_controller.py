"""E1 / Fig. 1: the simple memory/processor controller.

Regenerates the paper's introductory artifact: the 5-state SG of Fig. 1.d
with its consistent encoding, the concurrency of Req+ and Ack- through
intersecting excitation regions, and the CSC conflict between the two
states coded 11.
"""

from repro import check_implementability, csc_conflicts, generate_sg
from repro.encoding.csc import irresolvable_conflicts
from repro.sg.regions import are_concurrent, excitation_region
from repro.specs.fig1 import fig1_stg


def analyse():
    sg = generate_sg(fig1_stg())
    return sg, check_implementability(sg)


def test_fig1_state_graph(benchmark):
    sg, report = benchmark(analyse)
    assert len(sg) == 5
    assert report.consistent
    assert report.speed_independent
    assert report.csc_conflict_count == 1

    # Fig. 1.d: codes with excitation stars.
    codes = sorted(sg.code_string(state) for state in sg.states)
    assert "1*1" in codes and "11*" in codes

    # Section 2: ER(Req+) and ER(Ack-) intersect => concurrent.
    assert excitation_region(sg, "Req+") & excitation_region(sg, "Ack-")
    assert are_concurrent(sg, "Req+", "Ack-")

    conflict = csc_conflicts(sg)[0]
    assert conflict.code == (1, 1)
    # This conflict is separated by input events only: provably beyond
    # state-signal insertion (the paper uses it to motivate reduction).
    assert len(irresolvable_conflicts(sg)) == 1

    print("\nFig. 1.d state graph:")
    for state in sg.states:
        print(f"  {sg.code_string(state):6s} --{list(sg.enabled(state))}")
