"""E1 / Fig. 1: the simple memory/processor controller.

Thin shim over the registered case -- the workload, metrics and checks
live in :mod:`repro.bench.cases.figures` (``fig1_controller``).  Run the
whole registry with ``python -m repro bench``.
"""

from repro.bench import pytest_case


def test_fig1_state_graph(benchmark):
    pytest_case("fig1_controller", benchmark)
