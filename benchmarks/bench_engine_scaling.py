"""Engine scaling: throughput of the packed-bitvector state-graph engine.

Measures the hot paths the exploration loop lives in -- SG generation
(states/sec) and concurrency-reduction search (explored configurations/sec)
-- on the lr/mmu/par suites, plus the full ablation-search sweep of
``bench_ablation_search.py``, and writes a JSON trajectory report to
``benchmarks/engine_scaling_report.json`` so subsequent PRs can track the
curve.

Three claims are checked, not just measured:

* **Cache soundness** -- the engine's memo tables (fast-cover memo, cost
  terms, reduction results) are pure caches: the complete synthesis output
  (chosen covers, inserted CSC signals, mapped netlists) is byte-identical
  with the engine enabled and disabled.
* **Determinism** -- two consecutive runs of the table-1-style workload
  produce byte-identical fingerprints.
* **Speedup** -- the ablation-search sweep runs at least 3x faster than the
  seed revision (``benchmarks/baseline_seed.json``, captured on the same
  machine class before the engine work).
"""

import json
import time
from pathlib import Path

from conftest import print_table
from repro import engine, full_reduction, generate_sg, implement, reduce_concurrency
from repro.specs.lr import TABLE1_KEEP_CONC, lr_expanded
from repro.specs.mmu import mmu_expanded
from repro.specs.par import par_expanded

HERE = Path(__file__).resolve().parent
BASELINE_PATH = HERE / "baseline_seed.json"
REPORT_PATH = HERE / "engine_scaling_report.json"

SUITES = (("lr", lr_expanded), ("mmu", mmu_expanded), ("par", par_expanded))


def _best_of(fn, rounds=3):
    best_time, result = None, None
    for _ in range(rounds):
        engine.clear_caches()
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best_time is None or elapsed < best_time:
            best_time = elapsed
    return best_time, result


def ablation_sweep():
    """The exact workload of ``bench_ablation_search.sweep``."""
    sg = generate_sg(lr_expanded())
    results = {}
    for width in (1, 2, 4, 8):
        results[f"beam w={width}"] = reduce_concurrency(
            sg, strategy="beam", size_frontier=width)
    results["best-first"] = reduce_concurrency(sg)
    for weight in (0.0, 0.5, 1.0):
        results[f"W={weight}"] = reduce_concurrency(sg, weight=weight)
    return results


def _report_fingerprint(name, report):
    lines = [f"design {name}",
             f"csc_resolved {report.csc_resolved}",
             f"csc_signals {report.csc_signal_count}"]
    for choice in report.insertions:
        lines.append(f"insertion {choice.signal} {choice.style} "
                     f"rise_after={choice.rise_trigger} "
                     f"fall_after={choice.fall_trigger} "
                     f"init={choice.initial_value}")
    if report.circuit is not None:
        for signal, impl in report.circuit.signals.items():
            covers = " ".join(
                f"{kind}=[{cover}]"
                for kind, cover in (("cover", impl.cover),
                                    ("set", impl.set_cover),
                                    ("reset", impl.reset_cover))
                if cover is not None)
            lines.append(f"signal {signal} style={impl.style} "
                         f"eq={impl.equation} {covers}")
        lines.append(report.circuit.netlist.to_verilog_like())
    return "\n".join(lines)


def synthesis_fingerprint():
    """Canonical dump of the synthesis outputs over the three suites.

    Covers the full table-1 configuration set for LR (full reduction, max
    concurrency and each kept pair) plus the best-first reductions of the
    MMU and PAR controllers: chosen covers, inserted state signals and the
    mapped netlists.
    """
    parts = []
    lr_sg = generate_sg(lr_expanded())
    parts.append(_report_fingerprint(
        "lr/full", implement(full_reduction(lr_sg), name="lr/full")))
    parts.append(_report_fingerprint(
        "lr/max", implement(lr_sg, name="lr/max")))
    for pair_name, keep in TABLE1_KEEP_CONC.items():
        reduced = full_reduction(lr_sg, keep_conc=keep)
        parts.append(_report_fingerprint(
            f"lr/{pair_name}", implement(reduced, name=pair_name)))
    for name, spec in (("mmu", mmu_expanded), ("par", par_expanded)):
        sg = generate_sg(spec())
        best = reduce_concurrency(sg).best
        parts.append(_report_fingerprint(name, implement(best, name=name)))
    return "\n".join(parts)


def build_report():
    suites = []
    for name, spec in SUITES:
        stg = spec()
        generate_seconds, sg = _best_of(lambda: generate_sg(stg))
        explore_seconds, result = _best_of(lambda: reduce_concurrency(sg))
        engine.set_packed_memo(False)
        explore_seconds_off, result_off = _best_of(lambda: reduce_concurrency(sg))
        engine.set_packed_memo(True)
        assert result_off.best_cost == result.best_cost, name
        assert result_off.best.signature() == result.best.signature(), name
        suites.append({
            "suite": name,
            "states": len(sg),
            "arcs": sg.arc_count(),
            "generate_seconds": generate_seconds,
            "states_per_second": len(sg) / generate_seconds,
            "explore_seconds": explore_seconds,
            "explore_seconds_caches_off": explore_seconds_off,
            "explored": result.explored_count,
            "explored_per_second": result.explored_count / explore_seconds,
            "best_cost": result.best_cost,
        })

    sweep_seconds, _ = _best_of(ablation_sweep)
    engine.set_packed_memo(False)
    sweep_seconds_off, _ = _best_of(ablation_sweep)
    fingerprint_off = synthesis_fingerprint()
    engine.set_packed_memo(True)
    fingerprint_on = synthesis_fingerprint()
    fingerprint_repeat = synthesis_fingerprint()

    report = {
        "suites": suites,
        "ablation_sweep_seconds": sweep_seconds,
        "ablation_sweep_seconds_caches_off": sweep_seconds_off,
        "outputs_identical_caches_on_off": fingerprint_on == fingerprint_off,
        "deterministic_repeat": fingerprint_on == fingerprint_repeat,
        "total_explore_seconds": sum(s["explore_seconds"] for s in suites),
    }

    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        report["baseline"] = baseline
        report["speedup_vs_seed"] = {
            "ablation_sweep": (baseline["ablation_sweep_seconds"]
                               / sweep_seconds),
            "total_explore_wall": (baseline["total_explore_seconds"]
                                   / report["total_explore_seconds"]),
            "explored_per_second": {},
        }
        seed_suites = {s["suite"]: s for s in baseline["suites"]}
        for suite in suites:
            seed = seed_suites.get(suite["suite"])
            if seed is None:
                continue
            seed_rate = seed["explored"] / seed["explore_seconds"]
            report["speedup_vs_seed"]["explored_per_second"][suite["suite"]] = (
                suite["explored_per_second"] / seed_rate)

    REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def test_engine_scaling(benchmark):
    report = benchmark.pedantic(build_report, rounds=1, iterations=1)

    rows = [(s["suite"], s["states"],
             f"{s['states_per_second']:,.0f}",
             f"{s['explore_seconds'] * 1e3:.1f}",
             f"{s['explored_per_second']:,.0f}")
            for s in report["suites"]]
    print_table("Engine scaling (packed-bitvector state engine)",
                ("suite", "states", "gen states/s", "explore ms",
                 "explored cfg/s"), rows)
    speedups = report.get("speedup_vs_seed", {})
    print(f"ablation sweep: {report['ablation_sweep_seconds'] * 1e3:.1f} ms "
          f"(caches off: {report['ablation_sweep_seconds_caches_off'] * 1e3:.1f} ms, "
          f"vs seed: {speedups.get('ablation_sweep', float('nan')):.1f}x)")

    # The memo tables must be pure caches and the flow must be repeatable.
    assert report["outputs_identical_caches_on_off"]
    assert report["deterministic_repeat"]

    # The headline: >= 3x on the ablation-search workload vs the seed.
    if "speedup_vs_seed" in report:
        assert report["speedup_vs_seed"]["ablation_sweep"] >= 3.0


if __name__ == "__main__":
    out = build_report()
    print(json.dumps(out, indent=2, sort_keys=True))
