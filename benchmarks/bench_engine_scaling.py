"""Engine scaling: packed-bitvector state-engine throughput.

Thin shim over the registered case -- the workload, metrics and checks
live in :mod:`repro.bench.cases.engine` (``engine_scaling``).  The
versioned ``BENCH_<rev>.json`` written by ``python -m repro bench``
supersedes the old ``engine_scaling_report.json`` artifact.
"""

from repro.bench import pytest_case


def test_engine_scaling(benchmark):
    pytest_case("engine_scaling", benchmark)
