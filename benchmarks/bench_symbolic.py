"""Symbolic scaling: the BDD crossover past the state-explosion wall.

Thin shim over the registered case -- the workload, metrics and checks
live in :mod:`repro.bench.cases.symbolic` (``symbolic_scaling``): the
packed engine's structured budget exceedance vs the full symbolic
USC/CSC check on ``micropipeline_chain_6`` (2^20 states), a
states-vs-seconds curve over smaller family instances and the
explicit-vs-symbolic verdict parity byte-compare.
"""

from repro.bench import pytest_case


def test_symbolic_scaling(benchmark):
    pytest_case("symbolic_scaling", benchmark)
