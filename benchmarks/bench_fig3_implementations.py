"""E4 / Fig. 3: the LR-process implementations as circuits.

Regenerates the structures behind Fig. 3: the fully reduced design is the
two-wire circuit of Fig. 3.b; the CSC-resolved designs (Fig. 3.c/d) carry
an internal state signal feeding the output logic; the Q-module reshuffling
synthesizes around a sequential (C-element / SR) cell.
"""

from conftest import print_table
from repro import full_reduction, generate_sg, implement, implement_stg
from repro.specs.lr import lr_expanded, q_module_stg


def build_circuits():
    sg = generate_sg(lr_expanded())
    return {
        "full (Fig 3.b)": implement(full_reduction(sg), name="full"),
        "max conc (Fig 3.c/d)": implement(sg, name="max"),
        "Q-module (Fig 3.a)": implement_stg(q_module_stg(), name="q"),
    }


def test_fig3_circuits(benchmark):
    circuits = benchmark.pedantic(build_circuits, rounds=1, iterations=1)

    rows = []
    for name, report in circuits.items():
        for signal, equation in sorted(report.circuit.equations.items()):
            rows.append((name, report.circuit.style_of(signal), equation))
    print_table("Fig. 3: LR implementations",
                ("design", "style", "equation"), rows)

    # Fig. 3.b: two plain wires.
    full = circuits["full (Fig 3.b)"].circuit
    assert full.equations == {"lo": "lo = ri", "ro": "ro = li"}
    assert full.area == 0

    # Fig. 3.c/d: state signals in the support of the outputs.
    max_conc = circuits["max conc (Fig 3.c/d)"]
    assert max_conc.csc_signal_count == 2
    internal = {"csc0", "csc1"}
    mentioned = " ".join(max_conc.circuit.equations.values())
    assert any(signal in mentioned for signal in internal)

    # Fig. 3.a: the hand reshuffling needs one state signal and at least one
    # sequential cell in its mapped netlist.
    q_module = circuits["Q-module (Fig 3.a)"]
    assert q_module.csc_signal_count == 1
    assert q_module.circuit.netlist.sequential_gates() or \
        q_module.circuit.area > 0
