"""Fig. 3: the three LR-process implementations.

Thin shim over the registered case -- the workload, metrics and checks
live in :mod:`repro.bench.cases.figures` (``fig3_implementations``).
Run the whole registry with ``python -m repro bench``.
"""

from repro.bench import pytest_case


def test_fig3_circuits(benchmark):
    pytest_case("fig3_implementations", benchmark)
