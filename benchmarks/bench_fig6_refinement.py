"""Fig. 6: 2-phase and 4-phase refinements of the toggle specification.

Thin shim over the registered case -- the workload, metrics and checks
live in :mod:`repro.bench.cases.figures` (``fig6_refinement``).  Run the
whole registry with ``python -m repro bench``.
"""

from repro.bench import pytest_case


def test_fig6_refinements(benchmark):
    pytest_case("fig6_refinement", benchmark)
