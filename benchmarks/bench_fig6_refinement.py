"""E5 / Fig. 6: 2-phase and 4-phase refinement of a mixed specification.

The Fig. 6.a specification has one channel (used in both roles), one
partially specified signal (two pulses per cycle) and one completely
specified signal.  The bench regenerates both refinements and checks the
structural properties Fig. 6.b/c show: toggle events in the 2-phase
refinement, inserted return-to-zero transitions in the 4-phase one, and a
consistent, speed-independent state graph in both cases.
"""

from repro import generate_sg
from repro.hse.expansion import expand_four_phase, expand_two_phase
from repro.sg.properties import check_implementability
from repro.specs.fragments import fig6_spec


def refine_both():
    spec = fig6_spec()
    two = generate_sg(expand_two_phase(spec))
    four = generate_sg(expand_four_phase(fig6_spec()))
    return two, four


def test_fig6_refinements(benchmark):
    two, four = benchmark(refine_both)

    # Fig. 6.b: 2-phase toggles, one per abstract event occurrence.
    assert {"ai~", "ao~", "b~", "b~/1", "c+", "c-"} <= set(two.events)
    report2 = check_implementability(two)
    assert report2.consistent
    assert report2.deadlock_free

    # Fig. 6.c: the 4-phase refinement adds the return-to-zero events.
    assert {"ai+", "ai-", "ao+", "ao-", "b+", "b+/1", "b-", "c+", "c-"} <= \
        set(four.events)
    report4 = check_implementability(four)
    assert report4.consistent
    assert report4.speed_independent
    assert report4.deadlock_free

    # The reset events are maximally concurrent: the 4-phase SG is larger
    # than the strictly sequential skeleton (6 functional events).
    assert len(four) > 6

    # b fires twice per cycle through one shared b- (Fig. 5.a/b structure).
    b_plus_arcs = sum(1 for _, label, _ in four.arcs()
                      if label in ("b+", "b+/1"))
    b_minus_arcs = sum(1 for _, label, _ in four.arcs() if label == "b-")
    assert b_plus_arcs >= 2 and b_minus_arcs >= 2

    print(f"\n2-phase SG: {len(two)} states; 4-phase SG: {len(four)} states")
