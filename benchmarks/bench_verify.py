"""Verification throughput: product states per second, full-suite wall time.

PR 3 adds the gate-level verification subsystem (``repro.verify``): every
synthesized implementation is checked against its specification SG by
exploring the product of the circuit's unbounded-delay state space with the
SG environment.  This benchmark runs the whole verification surface -- the
STG suite plus the paper's LR process, every reduction strategy under the
atomic (complex-gate) model, plus structural-model probes on two telling
points -- and writes a trajectory report to
``benchmarks/verify_report.json``:

* **throughput** -- product states and arcs explored per second (atomic
  model, certificates timed individually);
* **full-suite wall time** -- one cold ``verify everything`` pass, the
  number CI's smoke job tracks;
* **determinism** -- a second pass must produce byte-identical
  certificates (``VerificationReport.to_dict`` carries no timings).

Three claims are checked, not just measured:

* every design point that synthesizes a circuit verifies **conforming**
  under the atomic (complex-gate) model;
* the only skipped point is the unreduced micropipeline (its CSC conflicts
  are not resolvable by trigger threading);
* certificates are byte-identical between passes.
"""

import json
import time
from pathlib import Path

from repro.flow import STRATEGIES, run_flow_stg
from repro.sg.generator import generate_sg
from repro.specs import suite
from repro.specs.lr import lr_expanded
from repro.verify import check_conformance, skipped_report

HERE = Path(__file__).resolve().parent
REPORT_PATH = HERE / "verify_report.json"


def _specs():
    sources = {name: suite.load(name) for name in suite.suite_names()}
    sources["lr"] = lr_expanded()
    return sources


def _verify_everything(model="atomic"):
    """One full verification pass; returns (certificates, wall seconds)."""
    certificates = {}
    started = time.perf_counter()
    for name, stg in sorted(_specs().items()):
        initial_sg = generate_sg(stg)
        for strategy in STRATEGIES:
            label = f"{name}/{strategy}"
            flow = run_flow_stg(None, strategy=strategy,
                                initial_sg=initial_sg, name=label)
            implementation = flow.report
            if implementation.circuit is None:
                certificates[label] = skipped_report(
                    label, "no synthesized circuit", model=model)
                continue
            certificates[label] = check_conformance(
                implementation.circuit.netlist,
                implementation.resolved_sg, model=model, name=label)
    return certificates, time.perf_counter() - started


def _structural_probes():
    """The structural model on two telling points.

    vme_read's gates are single-cube, so per-gate delays stay conforming;
    half's two-cube `ao` cover glitches under them -- the decomposition is
    not SI-preserving and the verifier proves it with a trace.
    """
    results = {}
    for name, expect_ok in (("vme_read", True), ("half", False)):
        initial_sg = generate_sg(suite.load(name))
        flow = run_flow_stg(None, strategy="full", initial_sg=initial_sg,
                            name=f"{name}/full")
        cert = check_conformance(flow.report.circuit.netlist,
                                 flow.report.resolved_sg,
                                 model="structural", name=f"{name}/full")
        results[name] = {"verdict": cert.verdict, "expected_ok": expect_ok,
                         "as_expected": cert.ok == expect_ok,
                         "trace_length": len(cert.trace)}
    return results


def build_report():
    first, cold_seconds = _verify_everything()
    second, _ = _verify_everything()
    structural = _structural_probes()

    checked = {label: cert for label, cert in first.items()
               if not cert.skipped}
    skipped = sorted(label for label, cert in first.items() if cert.skipped)
    product_states = sum(cert.product_states for cert in checked.values())
    product_arcs = sum(cert.product_arcs for cert in checked.values())
    verify_seconds = sum(cert.seconds for cert in checked.values())

    identical = all(first[label].to_dict() == second[label].to_dict()
                    for label in first)

    report = {
        "checks": len(first),
        "verified": len(checked),
        "skipped": skipped,
        "all_conforming": all(cert.ok for cert in checked.values()),
        "product_states": product_states,
        "product_arcs": product_arcs,
        "verify_seconds": verify_seconds,
        "states_per_second": (product_states / verify_seconds
                              if verify_seconds > 0 else 0.0),
        "arcs_per_second": (product_arcs / verify_seconds
                            if verify_seconds > 0 else 0.0),
        "full_suite_wall_seconds": cold_seconds,
        "certificates_identical_between_passes": identical,
        "structural_probes": structural,
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def test_verification_throughput(benchmark):
    from conftest import print_table

    report = benchmark.pedantic(build_report, rounds=1, iterations=1)

    print_table(
        "Verification throughput (suite + LR, all strategies)",
        ("metric", "value"),
        [("checks", report["checks"]),
         ("verified", report["verified"]),
         ("skipped", ", ".join(report["skipped"]) or "-"),
         ("product states", report["product_states"]),
         ("product arcs", report["product_arcs"]),
         ("states/s", f"{report['states_per_second']:.0f}"),
         ("full-suite wall", f"{report['full_suite_wall_seconds']:.2f}s")])

    # The headline claims: every synthesized implementation conforms, the
    # only hole in the surface is the unreduced micropipeline, and the
    # certificates are deterministic.
    assert report["all_conforming"]
    assert report["skipped"] == ["micropipeline/none"]
    assert report["certificates_identical_between_passes"]
    assert report["product_states"] > 0
    # The structural model both passes where it should and refutes the
    # non-SI decomposition with a counterexample where it should.
    assert all(probe["as_expected"]
               for probe in report["structural_probes"].values())


if __name__ == "__main__":
    print(json.dumps(build_report(), indent=2, sort_keys=True))
