"""Verification throughput: product states per second, full-suite wall.

Thin shim over the registered case -- the workload, metrics and checks
live in :mod:`repro.bench.cases.verifying` (``verify_throughput``).  The
versioned ``BENCH_<rev>.json`` written by ``python -m repro bench``
supersedes the old ``verify_report.json`` artifact.
"""

from repro.bench import pytest_case


def test_verification_throughput(benchmark):
    pytest_case("verify_throughput", benchmark)
