"""Table 2: the MMU controller, original vs reduced.

Thin shim over the registered case -- the workload, metrics and checks
live in :mod:`repro.bench.cases.tables` (``table2_mmu``).  Run the whole
registry with ``python -m repro bench``.
"""

from repro.bench import pytest_case


def test_table2(benchmark):
    pytest_case("table2_mmu", benchmark)
