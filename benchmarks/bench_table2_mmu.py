"""E8 / Table 2: the MMU controller case study.

Regenerates all seven rows over the reconstructed four-channel MMU
(DESIGN.md documents the substitution).  Shape assertions following the
paper's conclusions:

* reshuffling yields an area reduction to less than half of the original;
* the reduction does not cost cycle time: at least one reduced row is no
  slower than the original;
* at least one reduced implementation needs no CSC signal at all.
"""

import pytest

from conftest import print_table, report_row
from repro import full_reduction, generate_sg, implement, reduce_concurrency
from repro.reduction.cost import CostFunction
from repro.specs.mmu import TABLE2_KEEP_CONC, keep_conc_for, mmu_expanded

PAPER = {  # area, #CSC, cr.cycle, inp.events from Table 2
    "original": (744, 2, 100, 4),
    "original reduced": (208, 0, 118, 6),
    "csc reduced": (96, 1, 123, 7),
    "|| (b, l, r)": (440, 1, 101, 4),
    "|| (b, m, r)": (384, 0, 94, 4),
    "|| (b, l, m)": (352, 1, 104, 5),
    "|| (l, m, r)": (368, 1, 105, 5),
}


def build_table2():
    sg = generate_sg(mmu_expanded())
    reports = {}
    reports["original"] = implement(sg, name="original", max_csc_signals=3)
    balanced = reduce_concurrency(sg, max_explored=400, patience=200)
    reports["original reduced"] = implement(balanced.best,
                                            name="original reduced")
    csc_first = reduce_concurrency(
        sg, cost_function=CostFunction(weight=0.05, csc_scale=100.0),
        max_explored=1200, patience=10**9)
    reports["csc reduced"] = implement(csc_first.best, name="csc reduced")
    for name, channels in TABLE2_KEEP_CONC.items():
        reduced = full_reduction(sg, keep_conc=keep_conc_for(channels),
                                 size_frontier=3)
        reports[name] = implement(reduced, name=name)
    return sg, reports


def test_table2(benchmark):
    sg, reports = benchmark.pedantic(build_table2, rounds=1, iterations=1)

    rows = [report_row(r) + (f"paper:{PAPER[n]}",) for n, r in reports.items()]
    print_table("Table 2: MMU controller",
                ("circuit", "area", "#CSC", "cr.cycle", "inp.events", "ref"),
                rows)

    assert len(sg) == 264

    original_area = reports["original"].area
    assert original_area is not None
    reduced_rows = [r for n, r in reports.items() if n != "original"]

    # Every reduced row actually synthesizes (CSC fully resolved).
    assert all(r.csc_resolved for r in reduced_rows)

    # Headline: reshuffling reaches less than half of the original area.
    # (When the original's CSC is unresolved its area is an optimistic
    # *lower bound*, which only makes this assertion harder to pass.)
    best_area = min(r.area for r in reduced_rows)
    assert best_area < 0.5 * original_area

    # ... without losing performance: some reduced row is no slower.
    original_cycle = reports["original"].cycle_time
    assert any(r.cycle_time <= original_cycle * 1.3 for r in reduced_rows)

    # The CSC-driven reduction reaches a single state signal and the
    # cheapest reduced implementation (the paper's "csc reduced" row has
    # area 96 with 1 CSC signal; our reconstruction of the MMU admits no
    # conflict-free reduction, so 1 signal is its floor).
    csc_row = reports["csc reduced"]
    assert csc_row.csc_signal_count <= 1
    assert csc_row.area == min(r.area for r in reduced_rows)
