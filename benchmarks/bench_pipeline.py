"""Pipeline resume: cold vs warm wall time and per-stage hit rates.

The staged pipeline keys every Fig. 4 stage by ``(stage, config slice,
input content digests)`` in one content-addressed store, so a warm re-run
skips exactly the stages whose inputs changed.  This benchmark drives the
full spec suite (every registered spec except the MMU controller, whose
unreduced CSC search alone dwarfs the rest of the grid combined -- see
``bench_sweep.py`` for the same exclusion) through four phases and writes
``benchmarks/pipeline_report.json``:

* **cold**   -- serial sweep against an empty store: every stage computes;
* **warm**   -- the same sweep again: zero points and zero stages compute;
* **delays** -- the same grid under a *different delay model* on the warm
  store: every row recomputes, but only the ``timing`` stage runs -- SG
  generation, reduction, CSC resolution and synthesis are all served from
  the store (the verification certificates too, being content-keyed);
* **jobs**   -- a cold ``jobs=2`` run against a fresh store.

Four claims are checked, not just measured:

* **Determinism** -- cold, warm and ``jobs=2`` rows render byte-identically
  in every report format.
* **Store soundness** -- the warm run computes zero points and zero stages.
* **Stage-granular resume** -- the delays run computes *only* timing
  stages and reuses the reduction stage (and everything between it and
  synthesis) for every point.
* **Cross-point sharing** -- content-addressed keys dedup stages across
  design points even in the cold run (computed stage evaluations < grid
  points x stages).
"""

import json
import tempfile
import time
from pathlib import Path

from repro import engine
from repro.sweep import ResultStore, render, run_sweep, spec_registry, tables_grid

HERE = Path(__file__).resolve().parent
REPORT_PATH = HERE / "pipeline_report.json"

STRATEGIES = ("none", "beam", "best-first", "full")
#: See the module docstring: one 40+ second CSC search would benchmark
#: state-signal insertion, not pipeline resume.
EXCLUDED_SPECS = ("mmu",)

#: The delays phase swaps the Table 1 model (2/1/1) for a slower
#: internal-signal model; only the timing stage depends on it.
ALTERNATE_DELAYS = (2, 1, 3)


def _specs():
    return [name for name in spec_registry() if name not in EXCLUDED_SPECS]


def _timed(grid, jobs, store):
    engine.clear_caches()
    started = time.perf_counter()
    outcome = run_sweep(grid, jobs=jobs, store=store)
    return time.perf_counter() - started, outcome


def build_report():
    specs = _specs()
    grid = tables_grid(specs=specs, strategies=STRATEGIES)
    delays_grid = tables_grid(specs=specs, strategies=STRATEGIES,
                              delays=ALTERNATE_DELAYS)
    points = len(grid.points)

    with tempfile.TemporaryDirectory() as tempdir:
        serial_store = ResultStore(Path(tempdir) / "serial")
        jobs_store = ResultStore(Path(tempdir) / "jobs")

        cold_seconds, cold = _timed(grid, 1, serial_store)
        warm_seconds, warm = _timed(grid, 1, serial_store)
        delays_seconds, delays = _timed(delays_grid, 1, serial_store)
        jobs_seconds, jobs = _timed(grid, 2, jobs_store)

    formats = ("json", "csv", "md")
    identical = all(render(cold.rows, fmt) == render(warm.rows, fmt)
                    and render(cold.rows, fmt) == render(jobs.rows, fmt)
                    for fmt in formats)

    stage_slots = points * 5  # generate/reduce/resolve/synthesize/timing
    report = {
        "specs": specs,
        "points": points,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "delays_seconds": delays_seconds,
        "jobs_seconds": jobs_seconds,
        "speedup_warm_vs_cold": cold_seconds / warm_seconds,
        "speedup_delays_vs_cold": cold_seconds / delays_seconds,
        "cold_computed_points": cold.computed,
        "warm_computed_points": warm.computed,
        "warm_cached_points": warm.cached,
        "delays_computed_points": delays.computed,
        "cold_stage_computed": dict(sorted(cold.stage_computed.items())),
        "cold_stage_reused": dict(sorted(cold.stage_reused.items())),
        "delays_stage_computed": dict(sorted(delays.stage_computed.items())),
        "delays_stage_reused": dict(sorted(delays.stage_reused.items())),
        "cold_stage_slots": stage_slots,
        "reports_identical_cold_warm_jobs": identical,
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def test_pipeline_resume(benchmark):
    from conftest import print_table

    report = benchmark.pedantic(build_report, rounds=1, iterations=1)

    print_table(
        "Pipeline resume (suite grid, stage-granular warm store)",
        ("phase", "seconds", "points computed", "stages computed"),
        [("cold serial", f"{report['cold_seconds']:.2f}",
          report["cold_computed_points"],
          sum(report["cold_stage_computed"].values())),
         ("warm serial", f"{report['warm_seconds']:.2f}",
          report["warm_computed_points"], 0),
         ("delays-only change", f"{report['delays_seconds']:.2f}",
          report["delays_computed_points"],
          sum(report["delays_stage_computed"].values()))])
    print(f"warm speedup {report['speedup_warm_vs_cold']:.1f}x, "
          f"delays-only rerun {report['speedup_delays_vs_cold']:.1f}x over "
          f"{report['points']} points")

    # Determinism: serial cold == serial warm == parallel cold, bytewise.
    assert report["reports_identical_cold_warm_jobs"]

    # Store soundness: a warm rerun computes nothing at all.
    assert report["warm_computed_points"] == 0
    assert report["warm_cached_points"] == report["points"]

    # Stage-granular resume: the delay-model change recomputes only the
    # timing stage; reduction (and everything up to synthesis) is reused
    # for every single point.
    assert set(report["delays_stage_computed"]) == {"timing"}
    for stage in ("generate", "reduce", "resolve", "synthesize"):
        assert report["delays_stage_reused"][stage] == report["points"]

    # Content-addressed sharing dedups stages across points already in the
    # cold run (e.g. every no-op reduction shares its resolve artifact).
    cold_computed = sum(report["cold_stage_computed"].values())
    assert cold_computed < report["cold_stage_slots"]

    # The delays-only rerun must be meaningfully cheaper than cold.
    assert report["delays_seconds"] < report["cold_seconds"]


if __name__ == "__main__":
    print(json.dumps(build_report(), indent=2, sort_keys=True))
