"""Pipeline resume: cold vs warm wall time and per-stage hit rates.

Thin shim over the registered case -- the workload, metrics and checks
live in :mod:`repro.bench.cases.pipelines` (``pipeline_resume``).  The
versioned ``BENCH_<rev>.json`` written by ``python -m repro bench``
supersedes the old ``pipeline_report.json`` artifact.
"""

from repro.bench import pytest_case


def test_pipeline_resume(benchmark):
    pytest_case("pipeline_resume", benchmark)
