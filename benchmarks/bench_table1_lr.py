"""E3 / Table 1: area/performance trade-off of the LR-process.

Regenerates every row: Q-module (hand), full reduction, max concurrency
and the four single-pair-preserving reductions.  Absolute units differ
from the paper's library; the assertions pin the *shape*:

* full reduction is two wires (area 0, no CSC signals);
* max concurrency needs 2 CSC signals and is the most expensive;
* the pair-preserving rows lie strictly between;
* ``lo || ro`` is the costliest of the four pairs (as in the paper).
"""

import pytest

from conftest import print_table, report_row
from repro import full_reduction, generate_sg, implement, implement_stg
from repro.sg.regions import are_concurrent
from repro.specs.lr import TABLE1_KEEP_CONC, lr_expanded, q_module_stg

PAPER = {  # area, #CSC, cr.cycle, inp.events from Table 1
    "Q-module (hand)": (104, 1, 14, 4),
    "Full reduction": (0, 0, 8, 4),
    "Max. concurrency": (168, 2, 13, 3),
    "li || ri": (144, 0, 9, 3),
    "li || ro": (160, 1, 11, 3),
    "lo || ri": (136, 1, 11, 3),
    "lo || ro": (232, 2, 16, 3),
}


def build_table1():
    sg = generate_sg(lr_expanded())
    reports = {"Q-module (hand)": implement_stg(q_module_stg(),
                                                name="Q-module (hand)"),
               "Full reduction": implement(full_reduction(sg),
                                           name="Full reduction"),
               "Max. concurrency": implement(sg, name="Max. concurrency")}
    for name, keep in TABLE1_KEEP_CONC.items():
        reduced = full_reduction(sg, keep_conc=keep)
        reports[name] = implement(reduced, name=name)
        label_a, label_b = keep[0]
        assert are_concurrent(reduced, label_a, label_b), name
    return reports


def test_table1(benchmark):
    reports = benchmark.pedantic(build_table1, rounds=1, iterations=1)

    rows = [report_row(r) + (f"paper:{PAPER[n]}",)
            for n, r in reports.items()]
    print_table("Table 1: LR-process",
                ("circuit", "area", "#CSC", "cr.cycle", "inp.events", "ref"),
                rows)

    area = {name: report.area for name, report in reports.items()}
    csc = {name: report.csc_signal_count for name, report in reports.items()}

    assert all(report.csc_resolved for report in reports.values())

    # Shape assertions (see module docstring).
    assert area["Full reduction"] == 0
    assert csc["Full reduction"] == 0
    assert csc["Max. concurrency"] == 2
    assert area["Max. concurrency"] == max(area.values())
    for pair_row in TABLE1_KEEP_CONC:
        assert 0 < area[pair_row] < area["Max. concurrency"]
    assert area["lo || ro"] == max(area[n] for n in TABLE1_KEEP_CONC)
    assert csc["lo || ro"] >= max(csc[n] for n in TABLE1_KEEP_CONC
                                  if n != "lo || ro")

    # Performance sanity: every cycle contains all four input events of a
    # full handshake round and the max-concurrency point is not slower than
    # the hand design.
    for report in reports.values():
        assert report.input_event_count == 4
    assert reports["Max. concurrency"].cycle_time <= \
        reports["Q-module (hand)"].cycle_time
