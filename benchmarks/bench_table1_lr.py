"""Table 1: the LR-process across reduction regimes.

Thin shim over the registered case -- the workload, metrics and checks
live in :mod:`repro.bench.cases.tables` (``table1_lr``).  Run the whole
registry with ``python -m repro bench``.
"""

from repro.bench import pytest_case


def test_table1(benchmark):
    pytest_case("table1_lr", benchmark)
