"""E6 / Fig. 8: the forward-reduction worked example.

Applies FwdRed(a, b) to the paper's SG fragment with choice and concurrency
and checks the exact outcome spelled out in Section 6: the excitation
region of ``a`` is truncated by the backward sweep from ER(a) /\ ER(b),
states reachable only through removed arcs disappear, and -- the paper's
punchline -- reducing the pair (a, b) also removes the concurrency of ``a``
with ``d`` and ``e``.
"""

from repro.reduction.fwdred import forward_reduction
from repro.reduction.validity import check_validity
from repro.sg.regions import are_concurrent, excitation_region
from repro.specs.fragments import fig8_sg


def apply_fwdred():
    sg = fig8_sg()
    result = forward_reduction(sg, "a", "b")
    return sg, result


def test_fig8_forward_reduction(benchmark):
    sg, result = benchmark(apply_fwdred)
    assert result.valid
    reduced = result.sg

    # ER(a) = {s1, s3, s5, s7}; ER(b) = {s5, s6}; intersection = {s5};
    # backward reachability inside ER(a) sweeps s3 and s1.
    assert excitation_region(sg, "a") == {"s1", "s3", "s5", "s7"}
    assert excitation_region(reduced, "a") == {"s7"}
    assert result.removed_arcs == 3

    # States s2, s4, s6 die with their only incoming arcs.
    assert result.removed_states == 3
    assert {"s2", "s4", "s6"}.isdisjoint(set(reduced.states))

    # One operation removed three concurrency relations (the paper's note
    # that "reducing concurrency for a pair can also reduce it for others").
    for other in ("b", "d", "e"):
        assert are_concurrent(sg, "a", other)
        assert not are_concurrent(reduced, "a", other)

    # The choice branch (g) survives untouched.
    assert reduced.target("s1", "g") == "t1"

    # Definition 5.1 holds.
    assert check_validity(sg, reduced).valid

    print(f"\nFwdRed(a, b): {len(sg)} -> {len(reduced)} states, "
          f"ER(a): 4 -> 1 states, a ordered after b")
