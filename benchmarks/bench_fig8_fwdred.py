"""Fig. 8: the forward reduction FwdRed(a, b).

Thin shim over the registered case -- the workload, metrics and checks
live in :mod:`repro.bench.cases.figures` (``fig8_fwdred``).  Run the
whole registry with ``python -m repro bench``.
"""

from repro.bench import pytest_case


def test_fig8_forward_reduction(benchmark):
    pytest_case("fig8_fwdred", benchmark)
