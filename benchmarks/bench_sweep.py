"""Sweep throughput: design points per second, serial vs sharded.

PR 1 made single-point exploration ~7x faster, so the bottleneck moved from
depth to breadth: how fast can the Tables 1-2 search grid -- every spec x
{beam, best-first, full} x W x Keep_Conc -- be evaluated?  The ``none``
strategy is deliberately not in this grid: implementing the *unreduced* MMU
controller is one 40+ second CSC-insertion search that dwarfs every other
point combined, so it would benchmark state-signal insertion on one giant
graph rather than sweep breadth, and its serial lower bound caps any
parallel speedup at ~1.5x no matter the worker count.  (It remains a
perfectly good sweep point -- ``repro sweep`` includes it by default.)

This benchmark runs the search grid over the full spec suite three ways and
writes a trajectory report to ``benchmarks/sweep_report.json``:

* **parallel cold** -- ``jobs=4`` against an empty result store;
* **serial cold**   -- ``jobs=1`` against another empty store;
* **parallel warm** -- ``jobs=4`` against the first store again.

Three claims are checked, not just measured:

* **Determinism** -- the parallel rows are byte-identical to the serial
  rows in every report format, ordering included.
* **Store soundness** -- the warm run computes zero points (everything is
  served from disk) and still renders the identical report.
* **Throughput** -- with >= 4 CPUs, ``jobs=4`` delivers at least 2.5x the
  serial points/sec on the cold grid.

The parallel phase runs first so its workers cannot inherit memo tables
warmed by the serial phase (the pool forks from this process).
"""

import json
import multiprocessing
import tempfile
import time
from pathlib import Path

from repro import engine
from repro.sweep import ResultStore, render, run_sweep, tables_grid

HERE = Path(__file__).resolve().parent
REPORT_PATH = HERE / "sweep_report.json"

PARALLEL_JOBS = 4
SPEEDUP_FLOOR = 2.5


#: Chunks of two points keep the pool's dynamic scheduling fine-grained
#: enough that one heavy spec (MMU) cannot serialize a worker for long,
#: while same-spec chunks still share the worker-side SG and memo caches.
CHUNK_SIZE = 2


def _timed_sweep(grid, jobs, store):
    engine.clear_caches()
    started = time.perf_counter()
    outcome = run_sweep(grid, jobs=jobs, store=store, chunk_size=CHUNK_SIZE)
    return time.perf_counter() - started, outcome


def build_report():
    # Every registered spec, every searched reduction row of Tables 1-2.
    grid = tables_grid(strategies=("beam", "best-first", "full"))
    points = len(grid.points)

    with tempfile.TemporaryDirectory() as tempdir:
        parallel_store = ResultStore(Path(tempdir) / "parallel")
        serial_store = ResultStore(Path(tempdir) / "serial")

        parallel_seconds, parallel = _timed_sweep(
            grid, PARALLEL_JOBS, parallel_store)
        serial_seconds, serial = _timed_sweep(grid, 1, serial_store)
        warm_seconds, warm = _timed_sweep(grid, PARALLEL_JOBS, parallel_store)

    identical = all(render(serial.rows, fmt) == render(parallel.rows, fmt)
                    and render(serial.rows, fmt) == render(warm.rows, fmt)
                    for fmt in ("json", "csv", "md"))

    report = {
        "points": points,
        "jobs": PARALLEL_JOBS,
        "cpu_count": multiprocessing.cpu_count(),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "warm_seconds": warm_seconds,
        "points_per_second_serial": points / serial_seconds,
        "points_per_second_parallel": points / parallel_seconds,
        "points_per_second_warm": points / warm_seconds,
        "speedup_parallel_vs_serial": serial_seconds / parallel_seconds,
        "speedup_warm_vs_cold": parallel_seconds / warm_seconds,
        "serial_computed": serial.computed,
        "parallel_computed": parallel.computed,
        "warm_computed": warm.computed,
        "warm_cached": warm.cached,
        "reports_identical_serial_parallel_warm": identical,
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def test_sweep_throughput(benchmark):
    from conftest import print_table

    report = benchmark.pedantic(build_report, rounds=1, iterations=1)

    print_table(
        "Sweep throughput (full Tables 1-2 grid)",
        ("phase", "seconds", "points/s", "computed"),
        [("serial cold", f"{report['serial_seconds']:.2f}",
          f"{report['points_per_second_serial']:.1f}",
          report["serial_computed"]),
         (f"jobs={report['jobs']} cold", f"{report['parallel_seconds']:.2f}",
          f"{report['points_per_second_parallel']:.1f}",
          report["parallel_computed"]),
         (f"jobs={report['jobs']} warm", f"{report['warm_seconds']:.2f}",
          f"{report['points_per_second_warm']:.1f}",
          report["warm_computed"])])
    print(f"speedup jobs={report['jobs']} vs serial: "
          f"{report['speedup_parallel_vs_serial']:.2f}x over "
          f"{report['points']} points")

    # Sharding must never change results, and the store must do the work
    # the second time around.
    assert report["reports_identical_serial_parallel_warm"]
    assert report["warm_computed"] == 0
    assert report["warm_cached"] == report["points"]

    # The headline: >= 2.5x points/sec with 4 workers (given the cores).
    if report["cpu_count"] >= PARALLEL_JOBS:
        assert report["speedup_parallel_vs_serial"] >= SPEEDUP_FLOOR


if __name__ == "__main__":
    print(json.dumps(build_report(), indent=2, sort_keys=True))
