"""Sweep throughput: design points per second, serial vs sharded.

Thin shim over the registered case -- the workload, metrics and checks
live in :mod:`repro.bench.cases.sweeps` (``sweep_throughput``).  The
parallel-speedup floor is an explicit *skipped check* (with the reason
recorded in the report) on machines with fewer than four CPUs -- it no
longer degrades silently.  The versioned ``BENCH_<rev>.json`` written by
``python -m repro bench`` supersedes the old ``sweep_report.json``.
"""

from repro.bench import pytest_case


def test_sweep_throughput(benchmark):
    pytest_case("sweep_throughput", benchmark)
