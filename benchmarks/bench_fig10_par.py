"""E7 / Fig. 10 + first case study: the PAR component.

Regenerates the paper's PAR pipeline: automatic 4-phase expansion
(Fig. 10.b), concurrency reduction preserving b? || c? (Fig. 10.d/e), and
the comparison against the manual Tangram design (Fig. 10.c/f):

* the automatic circuit is *smaller* than the manual one (paper: ~12%);
* it is asymmetric (one sub-channel's request is served combinationally);
* under the gate-level delay model (comb=1, seq=1.5, input=3) its cycle is
  *longer* when b and c have balanced delays (paper: ~11%).
"""

from conftest import print_table
from repro import generate_sg, implement, implement_stg, reduce_concurrency
from repro.sg.regions import are_concurrent
from repro.specs.par import PAR_KEEP_CONC, par_expanded, par_manual_stg
from repro.timing.critical_cycle import critical_cycle
from repro.timing.delays import gate_level_delays


def gate_cycle(report):
    sequential = {signal for signal, impl in report.circuit.signals.items()
                  if impl.netlist.sequential_gates()}
    model = gate_level_delays(report.resolved_sg, sequential)
    return critical_cycle(report.resolved_sg, model).cycle_time


def build_par():
    manual = implement_stg(par_manual_stg(), name="manual (Tangram)")
    sg = generate_sg(par_expanded())
    search = reduce_concurrency(sg, keep_conc=PAR_KEEP_CONC,
                                max_explored=4000, patience=10**9)
    auto = implement(search.best, name="automatic")
    return sg, search, manual, auto


def test_fig10_par(benchmark):
    sg, search, manual, auto = benchmark.pedantic(build_par, rounds=1,
                                                  iterations=1)

    # Fig. 10.b: the expansion has maximal reset concurrency.
    assert len(sg) == 76

    assert manual.csc_resolved and auto.csc_resolved
    assert auto.csc_signal_count == 0  # no state signals needed (Fig 10.d)

    # The semantic constraint survived the whole reduction.
    assert are_concurrent(auto.resolved_sg, "bi+", "ci+")

    # Headline: automatic beats manual on area.
    assert auto.area < manual.area

    # And pays in cycle time under balanced gate-level delays.
    manual_cycle = gate_cycle(manual)
    auto_cycle = gate_cycle(auto)
    assert auto_cycle >= manual_cycle

    rows = [("manual (Fig 10.c/f)", manual.area, manual_cycle),
            ("automatic (Fig 10.d/e)", auto.area, auto_cycle)]
    print_table("Fig. 10: PAR component",
                ("design", "area", "gate-level cycle"), rows)
    print(f"area ratio auto/manual = {auto.area / manual.area:.2f} "
          f"(paper ~0.88); cycle ratio = {auto_cycle / manual_cycle:.2f} "
          f"(paper ~1.11)")
    print("automatic equations (note the asymmetry between b and c):")
    for equation in sorted(auto.circuit.equations.values()):
        print(f"  {equation}")
