"""Fig. 10: the PAR component, automatic synthesis vs the Tangram target.

Thin shim over the registered case -- the workload, metrics and checks
live in :mod:`repro.bench.cases.figures` (``fig10_par``).  Run the whole
registry with ``python -m repro bench``.
"""

from repro.bench import pytest_case


def test_fig10_par(benchmark):
    pytest_case("fig10_par", benchmark)
