"""Differential fuzzing throughput over a seeded random-spec corpus.

Thin shim over the registered case -- the workload, metrics and checks
live in :mod:`repro.bench.cases.fuzzing` (``fuzz_throughput``): specs
per second through the engines-only oracle (packed vs tuples state
graphs, explicit vs symbolic coding), gated on zero divergences and a
reproduced corpus digest.
"""

from repro.bench import pytest_case


def test_fuzz_throughput(benchmark):
    pytest_case("fuzz_throughput", benchmark)
