"""Frontier scaling: the shared exploration core on a 10^5-state family.

Thin shim over the registered case -- the workload, metrics and checks
live in :mod:`repro.bench.cases.frontier` (``frontier_scaling``): the
packed level-vectorized engine vs the per-state walk on ``fifo_chain_10``,
plus a compositional conformance product over a decoupled FIFO chain.
"""

from repro.bench import pytest_case


def test_frontier_scaling(benchmark):
    pytest_case("frontier_scaling", benchmark)
