"""The declarative benchmark registry: cases, metrics, checks.

Every benchmark in the repository is one :class:`BenchCase`: a name, a
tier, a ``run`` callable producing a plain result mapping, a tuple of
:class:`Metric` extractors (each with a unit and a
higher/lower-is-better direction) and a tuple of :class:`Check`
correctness assertions that fail loudly.  The harness
(:mod:`repro.bench.harness`) owns everything else -- timing, environment
capture, the canonical JSON payload and table printing -- so a case is
*only* the workload and its claims.

Metrics come in two kinds:

* **exact** (``measured=False``): deterministic values -- state counts,
  areas, literal counts, cache-hit counts.  They are part of the
  canonical payload (byte-identical across runs and hash seeds) and the
  baseline comparison requires them to match exactly, modulo an explicit
  per-metric tolerance.
* **measured** (``measured=True``): wall-clock times, rates and
  speedups.  They are recorded in the BENCH file for the trajectory but
  excluded from the canonical payload.  Only *gated* measured metrics
  can fail a baseline comparison (see :mod:`repro.bench.compare`); raw
  seconds default to ``gated=False`` because absolute times do not
  transfer across machines.

A check either passes, fails (raise :class:`CheckFailed` or any
``AssertionError``) or is skipped (raise :class:`CheckSkipped` with the
reason).  Skips are never silent: the harness records every one in the
case's ``skipped_checks`` list inside the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "TIERS", "Metric", "Check", "BenchCase",
    "CheckFailed", "CheckSkipped", "MissingMetric",
    "register", "get_case", "case_names", "select_cases", "all_cases",
]

#: Tier vocabulary, cheapest first.  ``quick`` cases are sub-second
#: analysis/synthesis workloads (the CI gate's diet); ``full`` cases are
#: the multi-second throughput benchmarks.
TIERS = ("quick", "full")


class CheckFailed(AssertionError):
    """A benchmark correctness check did not hold."""


class CheckSkipped(Exception):
    """A check could not run in this environment; carries the reason."""


class MissingMetric(KeyError):
    """A metric extractor found no value in the case result."""


@dataclass(frozen=True)
class Metric:
    """One named value extracted from a case result.

    ``key`` is a ``.``-separated path into the result mapping (default:
    the metric name); ``extract`` overrides it with an arbitrary
    callable.  ``direction`` is ``"higher"``, ``"lower"`` or
    ``"neutral"`` (neutral exact metrics are drift detectors: any change
    against the baseline is flagged).  ``tolerance`` is a relative
    tolerance overriding the comparison default for this metric.
    """

    name: str
    unit: str
    direction: str = "neutral"
    measured: bool = False
    gated: Optional[bool] = None
    tolerance: Optional[float] = None
    key: Optional[str] = None
    extract: Optional[Callable[[Mapping[str, Any]], Any]] = None

    def __post_init__(self) -> None:
        if self.direction not in ("higher", "lower", "neutral"):
            raise ValueError(f"bad direction {self.direction!r}")

    @property
    def is_gated(self) -> bool:
        """Whether a baseline comparison may fail on this metric.

        Exact metrics gate by default; measured ones do not (absolute
        times are machine-bound), unless the case opts in explicitly
        (ratios such as warm-vs-cold speedups are machine-relative).
        """
        if self.gated is not None:
            return self.gated
        return not self.measured

    def value_from(self, result: Mapping[str, Any]) -> Any:
        if self.extract is not None:
            return self.extract(result)
        node: Any = result
        for part in (self.key or self.name).split("."):
            try:
                node = node[part]
            except (KeyError, TypeError, IndexError):
                raise MissingMetric(
                    f"metric {self.name!r}: no {part!r} in case result")
        return node

    def record(self, result: Mapping[str, Any]) -> Dict[str, Any]:
        """The JSON record the harness stores for this metric."""
        entry: Dict[str, Any] = {
            "value": self.value_from(result),
            "unit": self.unit,
            "direction": self.direction,
            "measured": self.measured,
            "gated": self.is_gated,
        }
        if self.tolerance is not None:
            entry["tolerance"] = self.tolerance
        return entry


@dataclass(frozen=True)
class Check:
    """A named correctness assertion over a case result."""

    name: str
    run: Callable[[Mapping[str, Any]], None]


@dataclass(frozen=True)
class BenchCase:
    """One registered benchmark.

    ``run`` receives the harness :class:`~repro.bench.harness.RunContext`
    (timing helpers, quick-mode flag) and returns a plain mapping; the
    declared ``metrics`` and ``checks`` are evaluated against it.
    ``info_keys`` are result keys copied verbatim into the canonical
    payload (lists and labels that are deterministic but not numeric).
    ``table`` renders an optional paper-style table: it returns
    ``(header, rows)`` and the harness prints it under ``title``.
    """

    name: str
    title: str
    tier: str
    run: Callable[[Any], Mapping[str, Any]]
    metrics: Tuple[Metric, ...] = ()
    checks: Tuple[Check, ...] = ()
    info_keys: Tuple[str, ...] = ()
    table: Optional[Callable[[Mapping[str, Any]],
                             Tuple[Sequence[str], List[tuple]]]] = None

    def __post_init__(self) -> None:
        if self.tier not in TIERS:
            raise ValueError(f"bad tier {self.tier!r}; expected one of {TIERS}")
        seen = set()
        for metric in self.metrics:
            if metric.name in seen:
                raise ValueError(f"duplicate metric {metric.name!r} "
                                 f"in case {self.name!r}")
            seen.add(metric.name)

    def metric(self, name: str) -> Metric:
        for metric in self.metrics:
            if metric.name == name:
                return metric
        raise MissingMetric(f"case {self.name!r} has no metric {name!r}")


_REGISTRY: Dict[str, BenchCase] = {}


def register(case: BenchCase) -> BenchCase:
    """Add a case to the global registry (import-time, deterministic)."""
    if case.name in _REGISTRY:
        raise ValueError(f"benchmark case {case.name!r} already registered")
    _REGISTRY[case.name] = case
    return case


def _loaded_registry() -> Dict[str, BenchCase]:
    # The case modules self-register on import; importing here keeps the
    # registry usable from any entry point without import-order rituals.
    from . import cases  # noqa: F401  (import for side effect)
    return _REGISTRY


def get_case(name: str) -> BenchCase:
    registry = _loaded_registry()
    if name not in registry:
        raise KeyError(f"unknown benchmark case {name!r}; "
                       f"available: {sorted(registry)}")
    return registry[name]


def case_names(tier: Optional[str] = None) -> List[str]:
    """Registered case names (registration order), optionally one tier."""
    return [case.name for case in all_cases()
            if tier is None or case.tier == tier]


def all_cases() -> List[BenchCase]:
    return list(_loaded_registry().values())


def select_cases(names: Optional[Sequence[str]] = None,
                 tier: Optional[str] = None) -> List[BenchCase]:
    """Resolve a CLI selection: explicit names win, then tier filter.

    ``tier=None`` or ``"all"`` selects every tier.  Unknown names raise
    ``KeyError`` listing the registry.
    """
    if names:
        return [get_case(name) for name in names]
    if tier in (None, "all"):
        return all_cases()
    if tier not in TIERS:
        raise KeyError(f"unknown tier {tier!r}; expected one of "
                       f"{TIERS + ('all',)}")
    return [case for case in all_cases() if case.tier == tier]
