"""The unified benchmark harness behind ``repro bench``.

The 14 ad-hoc benchmark scripts that used to live as free-standing
pytest files are now thin shims over this package:

* :mod:`repro.bench.registry` -- the declarative case registry
  (:class:`BenchCase`, :class:`Metric`, :class:`Check`).
* :mod:`repro.bench.harness` -- timing, environment capture, the
  versioned BENCH report and its deterministic canonical payload.
* :mod:`repro.bench.compare` -- baseline comparison with per-metric
  tolerances and a machine-readable verdict.
* :mod:`repro.bench.cases` -- the registered cases, one module per
  legacy benchmark family.

``python -m repro bench`` is the command-line entry point; the legacy
``benchmarks/bench_*.py`` files call :func:`pytest_case` so the whole
suite still runs under plain pytest (and pytest-benchmark, when asked).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .compare import DEFAULT_TOLERANCE, Comparison, MetricDelta, compare
from .harness import (BENCH_SCHEMA, RunContext, canonical_payload,
                      capture_env, default_bench_name, failed_checks,
                      print_table, report_row, run_case, run_cases,
                      skipped_checks, to_json_bytes)
from .registry import (TIERS, BenchCase, Check, CheckFailed, CheckSkipped,
                       Metric, MissingMetric, all_cases, case_names,
                       get_case, register, select_cases)

__all__ = [
    "TIERS", "BenchCase", "Check", "Metric",
    "CheckFailed", "CheckSkipped", "MissingMetric",
    "register", "get_case", "case_names", "select_cases", "all_cases",
    "BENCH_SCHEMA", "RunContext", "capture_env", "default_bench_name",
    "run_case", "run_cases", "failed_checks", "skipped_checks",
    "canonical_payload", "to_json_bytes", "print_table", "report_row",
    "DEFAULT_TOLERANCE", "Comparison", "MetricDelta", "compare",
    "pytest_case",
]


def pytest_case(name: str, benchmark: Optional[Any] = None,
                quick: bool = False) -> Dict[str, Any]:
    """Run one registered case under pytest; raise on any failed check.

    This is the whole body of the legacy ``benchmarks/bench_*.py``
    scripts: run the case through the harness (tables print with
    ``pytest -s``), surface failed checks as one assertion, and -- when
    the pytest-benchmark fixture is passed -- feed the case's wall time
    into its stats via ``pedantic`` so ``--benchmark-only`` reports
    stay meaningful without re-running multi-minute workloads.
    """
    case = get_case(name)
    entry = run_case(case, RunContext(quick=quick))
    failures = [f"{check}: {outcome}"
                for check, outcome in sorted(entry["checks"].items())
                if outcome.startswith("failed")]
    if failures:
        raise AssertionError(
            f"benchmark case {name!r} checks failed:\n  "
            + "\n  ".join(failures))
    for skip in entry["skipped_checks"]:
        print(f"[{name}] check skipped -- {skip}")
    if benchmark is not None:
        # One pedantic round that just replays the measured wall time:
        # the case already timed itself (min-of-N inside the harness).
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        benchmark.extra_info["bench_case"] = name
        benchmark.extra_info["seconds"] = entry["seconds"]
    return entry
