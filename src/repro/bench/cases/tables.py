"""Table-level cases: Tables 1-2 and the Fig. 9 exploration ablation.

The paper's quantitative tables, regenerated end to end.  Absolute units
differ from the paper's library; the checks pin the *shape* each table
demonstrates (orderings, CSC counts, ratios), and the exact metrics pin
our own trajectory so an engine change that silently shifts an area or a
cycle time trips the baseline comparison.
"""

from __future__ import annotations

from ..harness import report_row
from ..registry import BenchCase, Check, CheckFailed, Metric, register

TABLE1_PAPER = {  # area, #CSC, cr.cycle, inp.events from Table 1
    "Q-module (hand)": (104, 1, 14, 4),
    "Full reduction": (0, 0, 8, 4),
    "Max. concurrency": (168, 2, 13, 3),
    "li || ri": (144, 0, 9, 3),
    "li || ro": (160, 1, 11, 3),
    "lo || ri": (136, 1, 11, 3),
    "lo || ro": (232, 2, 16, 3),
}

TABLE2_PAPER = {  # area, #CSC, cr.cycle, inp.events from Table 2
    "original": (744, 2, 100, 4),
    "original reduced": (208, 0, 118, 6),
    "csc reduced": (96, 1, 123, 7),
    "|| (b, l, r)": (440, 1, 101, 4),
    "|| (b, m, r)": (384, 0, 94, 4),
    "|| (b, l, m)": (352, 1, 104, 5),
    "|| (l, m, r)": (368, 1, 105, 5),
}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CheckFailed(message)


def _paper_table(result: dict, paper: dict):
    rows = [tuple(row) + (f"paper:{paper[row[0]]}",)
            for row in result["rows"]]
    return (("circuit", "area", "#CSC", "cr.cycle", "inp.events", "ref"),
            rows)


# --------------------------------------------------------------------------
# Table 1: the LR-process area/performance trade-off.

def run_table1(context) -> dict:
    from repro import full_reduction, generate_sg, implement, implement_stg
    from repro.sg.regions import are_concurrent
    from repro.specs.lr import TABLE1_KEEP_CONC, lr_expanded, q_module_stg

    def build():
        sg = generate_sg(lr_expanded())
        reports = {
            "Q-module (hand)": implement_stg(q_module_stg(),
                                             name="Q-module (hand)"),
            "Full reduction": implement(full_reduction(sg),
                                        name="Full reduction"),
            "Max. concurrency": implement(sg, name="Max. concurrency"),
        }
        pairs_kept = True
        for name, keep in TABLE1_KEEP_CONC.items():
            reduced = full_reduction(sg, keep_conc=keep)
            reports[name] = implement(reduced, name=name)
            label_a, label_b = keep[0]
            pairs_kept &= are_concurrent(reduced, label_a, label_b)
        return reports, pairs_kept

    seconds, (reports, pairs_kept) = context.best_of(build)
    area = {name: report.area for name, report in reports.items()}
    csc = {name: report.csc_signal_count for name, report in reports.items()}
    pair_names = [n for n in reports if n not in
                  ("Q-module (hand)", "Full reduction", "Max. concurrency")]
    return {
        "rows": [report_row(report) for report in reports.values()],
        "area": area,
        "csc": csc,
        "pair_names": pair_names,
        "pairs_kept": pairs_kept,
        "table_seconds": seconds,
        "full_area": area["Full reduction"],
        "max_area": area["Max. concurrency"],
        "q_area": area["Q-module (hand)"],
        "lo_ro_area": area["lo || ro"],
        "total_area": sum(area.values()),
        "max_csc_signals": csc["Max. concurrency"],
        "all_resolved": all(r.csc_resolved for r in reports.values()),
        "input_events": sorted({r.input_event_count
                                for r in reports.values()}),
        "max_cycle": reports["Max. concurrency"].cycle_time,
        "q_cycle": reports["Q-module (hand)"].cycle_time,
    }


register(BenchCase(
    name="table1_lr",
    title="Table 1: LR-process",
    tier="quick",
    run=run_table1,
    metrics=(
        Metric("full_area", "literals", direction="lower"),
        Metric("max_area", "literals", direction="lower"),
        Metric("q_area", "literals", direction="lower"),
        Metric("lo_ro_area", "literals", direction="lower"),
        Metric("total_area", "literals", direction="lower"),
        Metric("max_csc_signals", "signals"),
        Metric("max_cycle", "delay units", direction="lower"),
        Metric("q_cycle", "delay units", direction="lower"),
        Metric("table_seconds", "s", direction="lower", measured=True),
    ),
    checks=(
        Check("all_resolved", lambda r: _require(
            r["all_resolved"], "every Table 1 row must resolve CSC")),
        Check("full_reduction_two_wires", lambda r: _require(
            r["full_area"] == 0 and r["csc"]["Full reduction"] == 0,
            "full reduction must be two wires (area 0, no CSC)")),
        Check("max_concurrency_most_expensive", lambda r: _require(
            r["max_csc_signals"] == 2
            and r["max_area"] == max(r["area"].values()),
            "max concurrency needs 2 CSC signals and tops the areas")),
        Check("pairs_strictly_between", lambda r: _require(
            r["pairs_kept"] and all(
                0 < r["area"][n] < r["max_area"] for n in r["pair_names"]),
            "pair-preserving rows must lie strictly between")),
        Check("lo_ro_costliest_pair", lambda r: _require(
            r["lo_ro_area"] == max(r["area"][n] for n in r["pair_names"])
            and r["csc"]["lo || ro"] >= max(
                r["csc"][n] for n in r["pair_names"] if n != "lo || ro"),
            "lo || ro must be the costliest preserved pair")),
        Check("handshake_round_timing", lambda r: _require(
            r["input_events"] == [4]
            and r["max_cycle"] <= r["q_cycle"],
            "cycles must span 4 input events; max-conc no slower than "
            "the hand design")),
    ),
    info_keys=("pair_names",),
    table=lambda r: _paper_table(r, TABLE1_PAPER),
))


# --------------------------------------------------------------------------
# Table 2: the MMU controller case study.

def run_table2(context) -> dict:
    from repro import (full_reduction, generate_sg, implement,
                       reduce_concurrency)
    from repro.reduction.cost import CostFunction
    from repro.specs.mmu import (TABLE2_KEEP_CONC, keep_conc_for,
                                 mmu_expanded)

    def build():
        sg = generate_sg(mmu_expanded())
        reports = {"original": implement(sg, name="original",
                                         max_csc_signals=3)}
        balanced = reduce_concurrency(sg, max_explored=400, patience=200)
        reports["original reduced"] = implement(balanced.best,
                                                name="original reduced")
        csc_first = reduce_concurrency(
            sg, cost_function=CostFunction(weight=0.05, csc_scale=100.0),
            max_explored=1200, patience=10**9)
        reports["csc reduced"] = implement(csc_first.best,
                                           name="csc reduced")
        for name, channels in TABLE2_KEEP_CONC.items():
            reduced = full_reduction(sg, keep_conc=keep_conc_for(channels),
                                     size_frontier=3)
            reports[name] = implement(reduced, name=name)
        return sg, reports

    # One round only: the unreduced-MMU CSC search is a 40+ second
    # workload by itself; min-of-N would triple a number that the
    # trajectory tracks but never gates on.
    seconds, (sg, reports) = context.best_of(build, rounds=1)
    reduced_rows = {n: r for n, r in reports.items() if n != "original"}
    best_area = min(r.area for r in reduced_rows.values())
    return {
        "rows": [report_row(report) for report in reports.values()],
        "sg_states": len(sg),
        "original_area": reports["original"].area,
        "best_reduced_area": best_area,
        "csc_reduced_area": reports["csc reduced"].area,
        "csc_reduced_signals": reports["csc reduced"].csc_signal_count,
        "area_ratio_best_vs_original": best_area / reports["original"].area,
        "table_seconds": seconds,
        "all_reduced_resolved": all(r.csc_resolved
                                    for r in reduced_rows.values()),
        "some_row_no_slower": any(
            r.cycle_time <= reports["original"].cycle_time * 1.3
            for r in reduced_rows.values()),
    }


register(BenchCase(
    name="table2_mmu",
    title="Table 2: MMU controller",
    tier="full",
    run=run_table2,
    metrics=(
        Metric("sg_states", "states"),
        Metric("original_area", "literals"),
        Metric("best_reduced_area", "literals", direction="lower"),
        Metric("csc_reduced_area", "literals", direction="lower"),
        Metric("csc_reduced_signals", "signals", direction="lower"),
        Metric("area_ratio_best_vs_original", "ratio", direction="lower"),
        Metric("table_seconds", "s", direction="lower", measured=True),
    ),
    checks=(
        Check("mmu_264_states", lambda r: _require(
            r["sg_states"] == 264,
            f"the four-channel MMU SG has 264 states, got "
            f"{r['sg_states']}")),
        Check("all_reduced_resolved", lambda r: _require(
            r["all_reduced_resolved"],
            "every reduced Table 2 row must synthesize")),
        Check("area_halved", lambda r: _require(
            r["area_ratio_best_vs_original"] < 0.5,
            "reshuffling must reach less than half the original area")),
        Check("performance_kept", lambda r: _require(
            r["some_row_no_slower"],
            "some reduced row must be no slower than the original")),
        Check("csc_reduction_floor", lambda r: _require(
            r["csc_reduced_signals"] <= 1
            and r["csc_reduced_area"] == r["best_reduced_area"],
            "the CSC-driven reduction must reach one state signal and "
            "the cheapest reduced area")),
    ),
    table=lambda r: _paper_table(r, TABLE2_PAPER),
))


# --------------------------------------------------------------------------
# Fig. 9 ablation: the exploration knobs (frontier width, weight W).

def run_ablation(context) -> dict:
    from repro import generate_sg, reduce_concurrency
    from repro.sg.properties import csc_conflicts
    from repro.specs.lr import lr_expanded

    def sweep():
        sg = generate_sg(lr_expanded())
        results = {}
        for width in (1, 2, 4, 8):
            results[f"beam w={width}"] = reduce_concurrency(
                sg, strategy="beam", size_frontier=width)
        results["best-first"] = reduce_concurrency(sg)
        for weight in (0.0, 0.5, 1.0):
            results[f"W={weight}"] = reduce_concurrency(sg, weight=weight)
        return results

    seconds, results = context.best_of(sweep)
    beams = [results[f"beam w={w}"].best_cost for w in (1, 2, 4, 8)]
    return {
        "rows": [(name, f"{r.best_cost:.2f}", r.explored_count,
                  len(csc_conflicts(r.best)))
                 for name, r in results.items()],
        "best_cost_best_first": results["best-first"].best_cost,
        "explored_best_first": results["best-first"].explored_count,
        "conflicts_w0": len(csc_conflicts(results["W=0.0"].best)),
        "sweep_seconds": seconds,
        "beam_costs": beams,
        "beam_monotonic": all(a >= b - 1e-9
                              for a, b in zip(beams, beams[1:])),
        "best_first_dominates": (results["best-first"].best_cost
                                 <= beams[-1] + 1e-9),
        "all_improve": all(r.best_cost <= r.initial_cost
                           for r in results.values()),
    }


register(BenchCase(
    name="ablation_search",
    title="Ablation: exploration knobs (LR-process)",
    tier="quick",
    run=run_ablation,
    metrics=(
        Metric("best_cost_best_first", "cost", direction="lower"),
        Metric("explored_best_first", "configs"),
        Metric("conflicts_w0", "conflicts", direction="lower"),
        Metric("sweep_seconds", "s", direction="lower", measured=True),
    ),
    checks=(
        Check("beam_width_monotonic", lambda r: _require(
            r["beam_monotonic"],
            f"wider beams must never cost more, got {r['beam_costs']}")),
        Check("best_first_dominates_beam", lambda r: _require(
            r["best_first_dominates"],
            "best-first must at least match the widest beam")),
        Check("w0_conflict_free", lambda r: _require(
            r["conflicts_w0"] == 0,
            "pure CSC pressure (W=0) must find a conflict-free design")),
        Check("every_strategy_improves", lambda r: _require(
            r["all_improve"],
            "every strategy must improve on the unreduced expansion")),
    ),
    table=lambda r: (("configuration", "best cost", "explored",
                      "CSC conflicts"), r["rows"]),
))
