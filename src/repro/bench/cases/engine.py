"""Engine scaling: throughput of the packed-bitvector state-graph engine.

Measures the hot paths the exploration loop lives in -- SG generation
(states/sec, now the shared vectorized frontier of :mod:`repro.explore`)
and concurrency-reduction search (explored configurations/sec) -- on the
lr/mmu/par suites plus the full ablation-search sweep, anchored against
the seed revision's numbers in ``benchmarks/baseline_seed.json``
(captured on the same machine class before the engine work).  The
scaling behaviour past these few-hundred-state suites lives in the
``frontier_scaling`` case (:mod:`repro.bench.cases.frontier`).  The cache-soundness and determinism claims are
checks: the engine's memo tables must be pure caches (byte-identical
synthesis outputs with the engine on and off) and two consecutive runs
must produce byte-identical fingerprints.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..registry import BenchCase, Check, CheckFailed, CheckSkipped, Metric, register

SPEEDUP_FLOOR = 3.0


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CheckFailed(message)


def _seed_baseline() -> dict:
    # Resolved relative to the repository root (src/repro/bench/cases ->
    # four parents up); installed trees without the benchmarks/ directory
    # simply lose the speedup-vs-seed anchor.
    root = Path(__file__).resolve()
    for parent in root.parents:
        candidate = parent / "benchmarks" / "baseline_seed.json"
        if candidate.exists():
            return json.loads(candidate.read_text())
    return {}


def _ablation_sweep():
    """The exact workload of the ablation-search case's sweep."""
    from repro import generate_sg, reduce_concurrency
    from repro.specs.lr import lr_expanded

    sg = generate_sg(lr_expanded())
    results = {}
    for width in (1, 2, 4, 8):
        results[f"beam w={width}"] = reduce_concurrency(
            sg, strategy="beam", size_frontier=width)
    results["best-first"] = reduce_concurrency(sg)
    for weight in (0.0, 0.5, 1.0):
        results[f"W={weight}"] = reduce_concurrency(sg, weight=weight)
    return results


def _report_fingerprint(name, report) -> str:
    lines = [f"design {name}",
             f"csc_resolved {report.csc_resolved}",
             f"csc_signals {report.csc_signal_count}"]
    for choice in report.insertions:
        lines.append(f"insertion {choice.signal} {choice.style} "
                     f"rise_after={choice.rise_trigger} "
                     f"fall_after={choice.fall_trigger} "
                     f"init={choice.initial_value}")
    if report.circuit is not None:
        for signal, impl in report.circuit.signals.items():
            covers = " ".join(
                f"{kind}=[{cover}]"
                for kind, cover in (("cover", impl.cover),
                                    ("set", impl.set_cover),
                                    ("reset", impl.reset_cover))
                if cover is not None)
            lines.append(f"signal {signal} style={impl.style} "
                         f"eq={impl.equation} {covers}")
        lines.append(report.circuit.netlist.to_verilog_like())
    return "\n".join(lines)


def _synthesis_fingerprint() -> str:
    """Canonical dump of the synthesis outputs over the three suites."""
    from repro import (full_reduction, generate_sg, implement,
                      reduce_concurrency)
    from repro.specs.lr import TABLE1_KEEP_CONC, lr_expanded
    from repro.specs.mmu import mmu_expanded
    from repro.specs.par import par_expanded

    parts = []
    lr_sg = generate_sg(lr_expanded())
    parts.append(_report_fingerprint(
        "lr/full", implement(full_reduction(lr_sg), name="lr/full")))
    parts.append(_report_fingerprint(
        "lr/max", implement(lr_sg, name="lr/max")))
    for pair_name, keep in TABLE1_KEEP_CONC.items():
        reduced = full_reduction(lr_sg, keep_conc=keep)
        parts.append(_report_fingerprint(
            f"lr/{pair_name}", implement(reduced, name=pair_name)))
    for name, spec in (("mmu", mmu_expanded), ("par", par_expanded)):
        sg = generate_sg(spec())
        best = reduce_concurrency(sg).best
        parts.append(_report_fingerprint(name, implement(best, name=name)))
    return "\n".join(parts)


def run_engine_scaling(context) -> dict:
    from repro import engine, generate_sg, reduce_concurrency
    from repro.specs.lr import lr_expanded
    from repro.specs.mmu import mmu_expanded
    from repro.specs.par import par_expanded

    suites = []
    caches_sound = True
    for name, spec in (("lr", lr_expanded), ("mmu", mmu_expanded),
                       ("par", par_expanded)):
        stg = spec()
        generate_seconds, sg = context.best_of(lambda: generate_sg(stg))
        explore_seconds, result = context.best_of(
            lambda: reduce_concurrency(sg))
        engine.set_packed_memo(False)
        explore_seconds_off, result_off = context.best_of(
            lambda: reduce_concurrency(sg))
        engine.set_packed_memo(True)
        caches_sound &= (result_off.best_cost == result.best_cost
                         and result_off.best.signature()
                         == result.best.signature())
        suites.append({
            "suite": name,
            "states": len(sg),
            "arcs": sg.arc_count(),
            "generate_seconds": generate_seconds,
            "states_per_second": len(sg) / generate_seconds
            if generate_seconds else 0.0,
            "explore_seconds": explore_seconds,
            "explore_seconds_caches_off": explore_seconds_off,
            "explored": result.explored_count,
            "explored_per_second": result.explored_count / explore_seconds
            if explore_seconds else 0.0,
            "best_cost": result.best_cost,
        })

    sweep_seconds, _ = context.best_of(_ablation_sweep)
    engine.set_packed_memo(False)
    sweep_seconds_off, _ = context.best_of(_ablation_sweep)
    fingerprint_off = _synthesis_fingerprint()
    engine.set_packed_memo(True)
    fingerprint_on = _synthesis_fingerprint()
    fingerprint_repeat = _synthesis_fingerprint()

    by_suite = {s["suite"]: s for s in suites}
    result = {
        "suites": suites,
        "suite_names": [s["suite"] for s in suites],
        "lr_states": by_suite["lr"]["states"],
        "mmu_states": by_suite["mmu"]["states"],
        "par_states": by_suite["par"]["states"],
        "lr_explored": by_suite["lr"]["explored"],
        "mmu_explored": by_suite["mmu"]["explored"],
        "par_explored": by_suite["par"]["explored"],
        "lr_best_cost": by_suite["lr"]["best_cost"],
        "mmu_best_cost": by_suite["mmu"]["best_cost"],
        "par_best_cost": by_suite["par"]["best_cost"],
        "lr_states_per_second": by_suite["lr"]["states_per_second"],
        "mmu_states_per_second": by_suite["mmu"]["states_per_second"],
        "par_states_per_second": by_suite["par"]["states_per_second"],
        "lr_explored_per_second": by_suite["lr"]["explored_per_second"],
        "mmu_explored_per_second": by_suite["mmu"]["explored_per_second"],
        "par_explored_per_second": by_suite["par"]["explored_per_second"],
        "ablation_sweep_seconds": sweep_seconds,
        "ablation_sweep_seconds_caches_off": sweep_seconds_off,
        "total_explore_seconds": sum(s["explore_seconds"] for s in suites),
        "outputs_identical_caches_on_off":
            caches_sound and fingerprint_on == fingerprint_off,
        "deterministic_repeat": fingerprint_on == fingerprint_repeat,
    }

    baseline = _seed_baseline()
    result["seed_baseline_found"] = bool(baseline)
    # Anchor-less trees (no repo checkout) report 0.0 speedups; the
    # seed_speedup_floor check skips there, so nothing gates on them.
    result["speedup_vs_seed_ablation"] = 0.0
    result["speedup_vs_seed_total_explore"] = 0.0
    for suite in suites:
        result[f"speedup_vs_seed_explored_{suite['suite']}"] = 0.0
    if baseline:
        result["speedup_vs_seed_ablation"] = (
            baseline["ablation_sweep_seconds"] / sweep_seconds
            if sweep_seconds else 0.0)
        result["speedup_vs_seed_total_explore"] = (
            baseline["total_explore_seconds"]
            / result["total_explore_seconds"]
            if result["total_explore_seconds"] else 0.0)
        seed_suites = {s["suite"]: s for s in baseline.get("suites", [])}
        for suite in suites:
            seed = seed_suites.get(suite["suite"])
            if seed is None:
                continue
            seed_rate = seed["explored"] / seed["explore_seconds"]
            result[f"speedup_vs_seed_explored_{suite['suite']}"] = (
                suite["explored_per_second"] / seed_rate if seed_rate
                else 0.0)
    return result


def _check_seed_speedup(result: dict) -> None:
    if not result["seed_baseline_found"]:
        raise CheckSkipped("benchmarks/baseline_seed.json not found "
                           "(installed tree without the repo checkout)")
    _require(result["speedup_vs_seed_ablation"] >= SPEEDUP_FLOOR,
             f"ablation sweep must stay >= {SPEEDUP_FLOOR}x over the "
             f"seed, got {result['speedup_vs_seed_ablation']:.2f}x")


register(BenchCase(
    name="engine_scaling",
    title="Engine scaling (packed-bitvector state engine)",
    tier="full",
    run=run_engine_scaling,
    metrics=(
        Metric("lr_states", "states"),
        Metric("mmu_states", "states"),
        Metric("par_states", "states"),
        Metric("lr_explored", "configs"),
        Metric("mmu_explored", "configs"),
        Metric("par_explored", "configs"),
        Metric("lr_best_cost", "cost", direction="lower"),
        Metric("mmu_best_cost", "cost", direction="lower"),
        Metric("par_best_cost", "cost", direction="lower"),
        Metric("lr_states_per_second", "states/s", direction="higher",
               measured=True),
        Metric("mmu_states_per_second", "states/s", direction="higher",
               measured=True),
        Metric("par_states_per_second", "states/s", direction="higher",
               measured=True),
        Metric("lr_explored_per_second", "configs/s", direction="higher",
               measured=True),
        Metric("mmu_explored_per_second", "configs/s", direction="higher",
               measured=True),
        Metric("par_explored_per_second", "configs/s", direction="higher",
               measured=True),
        Metric("ablation_sweep_seconds", "s", direction="lower",
               measured=True),
        Metric("ablation_sweep_seconds_caches_off", "s", direction="lower",
               measured=True),
        Metric("total_explore_seconds", "s", direction="lower",
               measured=True),
        Metric("speedup_vs_seed_ablation", "x", direction="higher",
               measured=True, gated=True, tolerance=0.6),
        Metric("speedup_vs_seed_total_explore", "x", direction="higher",
               measured=True),
        Metric("speedup_vs_seed_explored_lr", "x", direction="higher",
               measured=True),
        Metric("speedup_vs_seed_explored_mmu", "x", direction="higher",
               measured=True),
        Metric("speedup_vs_seed_explored_par", "x", direction="higher",
               measured=True),
    ),
    checks=(
        Check("caches_are_pure", lambda r: _require(
            r["outputs_identical_caches_on_off"],
            "synthesis outputs must be byte-identical caches on/off")),
        Check("deterministic_repeat", lambda r: _require(
            r["deterministic_repeat"],
            "two fingerprint passes must be byte-identical")),
        Check("seed_speedup_floor", _check_seed_speedup),
    ),
    info_keys=("suite_names",),
    table=lambda r: (
        ("suite", "states", "gen states/s", "explore ms", "explored cfg/s"),
        [(s["suite"], s["states"], f"{s['states_per_second']:,.0f}",
          f"{s['explore_seconds'] * 1e3:.1f}",
          f"{s['explored_per_second']:,.0f}") for s in r["suites"]]),
))
