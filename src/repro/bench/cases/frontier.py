"""Frontier engine: the shared exploration core on a scaling family.

The suite specs top out at a few hundred states, so they cannot tell the
vectorized frontier engine from the per-state loop.  This case runs the
two legs the exploration core now owns, on the parametric families of
:mod:`repro.specs.families`:

* **reachability** -- ``fifo_chain(10)`` (177,148 states) explored by
  both net engines under one :class:`~repro.explore.ExplorationBudget`.
  ``frontier_states_per_sec`` is the packed engine's headline rate and
  the ``speedup_floor`` check asserts it beats the per-state tuple
  engine >= 2x on the same machine, same run.
* **generation + conformance** -- a mid-size decoupled-FIFO chain built
  compositionally: the single stage cell is synthesized once through the
  full flow (CSC resolution included), its *resolved* STG is relabelled
  per stage and re-composed via :func:`repro.petri.compose.compose_all`,
  and the stage netlist is replicated into a chain implementation.  The
  conformance product of that implementation against the composed spec
  must come back ``conforming`` -- the per-stage certificates compose
  because the decoupled cell's environment assumptions are local to each
  port.
"""

from __future__ import annotations

from ..registry import BenchCase, Check, CheckFailed, Metric, register

#: Reachability family: ``fifo_chain(FAMILY_STAGES)`` has
#: ``3**(FAMILY_STAGES + 1) + (-1)**FAMILY_STAGES`` states -- past the
#: 10^5 wall the paper ran into, still a few seconds for the per-state
#: baseline.
FAMILY_STAGES = 10
FAMILY_STATES = 3 ** (FAMILY_STAGES + 1) + (-1) ** FAMILY_STAGES
#: The budget the run must clear (states; comfortably above the family).
BUDGET_STATES = 250_000
#: Same-run floor for packed vs per-state throughput.
SPEEDUP_FLOOR = 2.0
#: Conformance family depth: 4 stages -> a ~10^3-state product.
CONFORMANCE_STAGES = 4

#: One decoupled 4-phase FIFO stage.  Unlike the suite's ``fifo_cell``
#: (whose next-request constraint reaches across the cell to the far
#: ack), every environment assumption here is local to one port -- the
#: left handshake re-arms on ``a0-`` alone and a fresh ``a0+`` waits for
#: the previous push to drain (``a1-``) through an initially marked
#: place.  That locality is what makes stage implementations compose.
DECOUPLED_CELL = """.model dec_fifo
.inputs r0 a1
.outputs a0 r1
.graph
r0+ a0+
a1- a0+
a0+ r0-
r0- a0-
a0- r0+
a0- r1+
r1+ a1+
a1+ r1-
r1- a1-
.marking { <a0-,r0+> <a1-,a0+> }
.initial_state !r0 !a0 !r1 !a1
.end
"""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CheckFailed(message)


def _stage_signals(i):
    """Cell-signal -> stage-``i``-signal renaming for the chain."""
    return {"r0": f"r{i}", "a0": f"a{i}", "r1": f"r{i + 1}",
            "a1": f"a{i + 1}", "csc0": f"csc{i}"}


def _relabel_stage_text(cell_text, i):
    """The resolved cell's ``.g`` text relabelled as chain stage ``i``.

    Signal tokens (``name+``/``name-`` events and the declaration /
    initial-state lists) map through :func:`_stage_signals`; bare tokens
    in the ``.graph`` body are places and get a stage prefix instead --
    the resolved cell names places ``r0``/``r1``..., which would
    otherwise collide with the handshake signals.
    """
    mapping = _stage_signals(i)
    out = []
    for line in cell_text.splitlines():
        if line.startswith(".model"):
            out.append(f".model dec_stage{i}")
        elif line.startswith((".inputs", ".outputs", ".internal")):
            head, *sigs = line.split()
            out.append(" ".join([head] + [mapping[s] for s in sigs]))
        elif line.startswith(".marking"):
            inner = line[line.index("{") + 1:line.index("}")].split()
            out.append(".marking { "
                       + " ".join(f"st{i}_{p}" for p in inner) + " }")
        elif line.startswith(".initial_state"):
            head, *toks = line.split()
            out.append(" ".join(
                [head] + [("!" + mapping[t[1:]] if t.startswith("!")
                           else mapping[t]) for t in toks]))
        elif line.startswith("."):
            out.append(line)
        else:
            toks = []
            for token in line.split():
                if token[-1] in "+-" and token[:-1] in mapping:
                    toks.append(mapping[token[:-1]] + token[-1])
                else:
                    toks.append(f"st{i}_{token}")
            out.append(" ".join(toks))
    return "\n".join(out) + "\n"


def _synthesize_cell():
    """One flow run on the stage cell; returns (resolved STG text, netlist)."""
    from repro.flow import run_flow_stg
    from repro.petri.parser import parse_stg, write_stg
    from repro.sg.generator import generate_sg

    sg = generate_sg(parse_stg(DECOUPLED_CELL))
    report = run_flow_stg(None, strategy="none", initial_sg=sg,
                          name="dec_fifo", resynthesise=True).report
    if report.circuit is None or report.stg is None:
        raise CheckFailed("the decoupled FIFO cell must synthesize")
    return write_stg(report.stg), report.circuit.netlist


def _chain_spec(cell_text, stages):
    """The composed resolved-cell STG for a ``stages``-deep chain."""
    from repro.petri.compose import compose_all
    from repro.petri.parser import parse_stg

    return compose_all(
        [parse_stg(_relabel_stage_text(cell_text, i))
         for i in range(stages)],
        name=f"dec_chain_{stages}")


def _chain_netlist(cell_netlist, stages):
    """The stage netlist replicated ``stages`` times, ports fused."""
    from repro.circuit.netlist import Alias, Gate, Netlist

    chain = Netlist(f"dec_chain_{stages}_impl",
                    library=cell_netlist.library)
    chain.add_input("r0")
    chain.add_input(f"a{stages}")
    for i in range(stages):
        mapping = _stage_signals(i)

        def rename(net):
            return mapping.get(net, f"st{i}.{net}")

        for gate in cell_netlist.gates:
            name = f"st{i}.{gate.name}"
            chain.gates.append(Gate(
                name=name, cell=gate.cell,
                inputs=tuple(rename(net) for net in gate.inputs),
                output=rename(gate.output)))
            chain._drivers[rename(gate.output)] = name
        for alias in cell_netlist.aliases:
            chain.aliases.append(Alias(source=rename(alias.source),
                                       target=rename(alias.target)))
            chain._drivers[rename(alias.target)] = (
                f"alias:{rename(alias.source)}")
        chain.add_output(mapping["a0"])
        chain.add_output(mapping["r1"])
    return chain


def run_frontier_scaling(context) -> dict:
    from repro.explore import (ExplorationBudget, explore_packed,
                               explore_tuples)
    from repro.sg.generator import generate_sg
    from repro.specs.families import fifo_chain
    from repro.verify import verify_netlist

    # -- reachability leg: packed vs per-state on one budget -----------
    budget = ExplorationBudget(max_states=BUDGET_STATES)
    net = fifo_chain(FAMILY_STAGES).net
    packed = net.compile_packed()
    if packed is None:
        raise CheckFailed("fifo_chain must stay in the packed regime")
    packed_seconds, packed_run = context.best_of(
        lambda: explore_packed(packed, budget))
    tuple_seconds, tuple_run = context.best_of(
        lambda: explore_tuples(net, budget))

    # -- generation + conformance leg: compositional decoupled chain --
    cell_text, cell_netlist = _synthesize_cell()
    generate_seconds, spec_sg = context.best_of(
        lambda: generate_sg(_chain_spec(cell_text, CONFORMANCE_STAGES)))
    chain = _chain_netlist(cell_netlist, CONFORMANCE_STAGES)
    verify_seconds, verified = context.best_of(
        lambda: verify_netlist(chain, spec_sg,
                               name=f"dec_chain_{CONFORMANCE_STAGES}"))
    certificate = verified[0]

    return {
        "family": f"fifo_chain_{FAMILY_STAGES}",
        "family_states": len(packed_run.states),
        "family_arcs": len(packed_run.arcs),
        "family_levels": packed_run.levels,
        "budget_states": BUDGET_STATES,
        "per_state_states": len(tuple_run.states),
        "per_state_levels": tuple_run.levels,
        "per_state_arcs": len(tuple_run.arcs),
        "frontier_seconds": packed_seconds,
        "per_state_seconds": tuple_seconds,
        "frontier_states_per_sec": (len(packed_run.states) / packed_seconds
                                    if packed_seconds else 0.0),
        "per_state_states_per_sec": (len(tuple_run.states) / tuple_seconds
                                     if tuple_seconds else 0.0),
        "frontier_speedup": (tuple_seconds / packed_seconds
                             if packed_seconds else 0.0),
        "conformance_family": f"dec_chain_{CONFORMANCE_STAGES}",
        "spec_states": len(spec_sg),
        "spec_arcs": spec_sg.arc_count(),
        "generate_seconds": generate_seconds,
        "verdict": certificate.verdict,
        "semi_modular": certificate.semi_modular,
        "product_states": certificate.product_states,
        "product_arcs": certificate.product_arcs,
        "verify_seconds": verify_seconds,
        "product_states_per_sec": (certificate.product_states
                                   / verify_seconds
                                   if verify_seconds else 0.0),
    }


register(BenchCase(
    name="frontier_scaling",
    title="Frontier engine (parametric families, packed vs per-state)",
    tier="quick",
    run=run_frontier_scaling,
    metrics=(
        Metric("family_states", "states"),
        Metric("family_arcs", "arcs"),
        Metric("family_levels", "levels"),
        Metric("spec_states", "states"),
        Metric("spec_arcs", "arcs"),
        Metric("product_states", "states"),
        Metric("product_arcs", "arcs"),
        Metric("frontier_states_per_sec", "states/s", direction="higher",
               measured=True),
        Metric("per_state_states_per_sec", "states/s", direction="higher",
               measured=True),
        Metric("frontier_speedup", "x", direction="higher",
               measured=True, gated=True, tolerance=0.6),
        Metric("frontier_seconds", "s", direction="lower", measured=True),
        Metric("per_state_seconds", "s", direction="lower", measured=True),
        Metric("generate_seconds", "s", direction="lower", measured=True),
        Metric("verify_seconds", "s", direction="lower", measured=True),
        Metric("product_states_per_sec", "states/s", direction="higher",
               measured=True),
    ),
    checks=(
        Check("family_within_budget", lambda r: _require(
            r["family_states"] == FAMILY_STATES
            and r["family_states"] <= r["budget_states"],
            f"the packed engine must clear all {FAMILY_STATES} states "
            f"within the {BUDGET_STATES}-state budget, "
            f"got {r['family_states']}")),
        Check("engines_agree", lambda r: _require(
            r["family_states"] == r["per_state_states"]
            and r["family_arcs"] == r["per_state_arcs"]
            and r["family_levels"] == r["per_state_levels"],
            "packed and per-state engines must explore the same "
            "state space")),
        Check("speedup_floor", lambda r: _require(
            r["frontier_speedup"] >= SPEEDUP_FLOOR,
            f"packed frontier must be >= {SPEEDUP_FLOOR}x the per-state "
            f"loop, got {r['frontier_speedup']:.2f}x")),
        Check("chain_conforms", lambda r: _require(
            r["verdict"] == "conforming" and r["semi_modular"],
            f"the replicated stage netlist must conform to the composed "
            f"spec, got {r['verdict']!r}")),
        Check("product_covers_spec", lambda r: _require(
            r["product_states"] >= r["spec_states"] > 0,
            "the conformance product must cover every spec state")),
    ),
    info_keys=("family", "conformance_family", "verdict"),
    table=lambda r: (
        ("leg", "states", "arcs", "rate"),
        [("packed frontier", r["family_states"], r["family_arcs"],
          f"{r['frontier_states_per_sec']:,.0f} st/s"),
         ("per-state loop", r["per_state_states"], r["per_state_arcs"],
          f"{r['per_state_states_per_sec']:,.0f} st/s"),
         ("conformance product", r["product_states"], r["product_arcs"],
          f"{r['product_states_per_sec']:,.0f} st/s")]),
))
