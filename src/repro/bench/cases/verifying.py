"""Verification throughput: product states per second, full-suite wall.

Runs the whole verification surface -- the STG suite plus the paper's LR
process, every reduction strategy under the atomic (complex-gate) model,
plus structural-model probes on two telling points -- and checks the
headline claims: every synthesized implementation conforms, the only
hole is the unreduced micropipeline, certificates are byte-deterministic
between passes, and the structural model both passes and refutes where
it should.
"""

from __future__ import annotations

import time

from ..registry import BenchCase, Check, CheckFailed, Metric, register


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CheckFailed(message)


def _spec_sources():
    from repro.specs import suite
    from repro.specs.lr import lr_expanded

    sources = {name: suite.load(name) for name in suite.suite_names()}
    sources["lr"] = lr_expanded()
    return sources


def _verify_everything(model="atomic"):
    """One full verification pass; returns (certificates, wall seconds)."""
    from repro.flow import STRATEGIES, run_flow_stg
    from repro.sg.generator import generate_sg
    from repro.verify import check_conformance, skipped_report

    certificates = {}
    started = time.perf_counter()
    for name, stg in sorted(_spec_sources().items()):
        initial_sg = generate_sg(stg)
        for strategy in STRATEGIES:
            label = f"{name}/{strategy}"
            flow = run_flow_stg(None, strategy=strategy,
                                initial_sg=initial_sg, name=label)
            implementation = flow.report
            if implementation.circuit is None:
                certificates[label] = skipped_report(
                    label, "no synthesized circuit", model=model)
                continue
            certificates[label] = check_conformance(
                implementation.circuit.netlist,
                implementation.resolved_sg, model=model, name=label)
    return certificates, time.perf_counter() - started


def _structural_probes():
    """The structural model on two telling points.

    vme_read's gates are single-cube, so per-gate delays stay
    conforming; half's two-cube ``ao`` cover glitches under them -- the
    decomposition is not SI-preserving and the verifier proves it with a
    trace.
    """
    from repro.flow import run_flow_stg
    from repro.sg.generator import generate_sg
    from repro.specs import suite
    from repro.verify import check_conformance

    results = {}
    for name, expect_ok in (("vme_read", True), ("half", False)):
        initial_sg = generate_sg(suite.load(name))
        flow = run_flow_stg(None, strategy="full", initial_sg=initial_sg,
                            name=f"{name}/full")
        cert = check_conformance(flow.report.circuit.netlist,
                                 flow.report.resolved_sg,
                                 model="structural", name=f"{name}/full")
        results[name] = {"verdict": cert.verdict,
                         "expected_ok": expect_ok,
                         "as_expected": cert.ok == expect_ok,
                         "trace_length": len(cert.trace)}
    return results


def _reduced_walk_probe():
    """The partial-order-pruned product walk vs the exhaustive one.

    Two legs pin the documented contract of ``reduced=True``
    (:func:`repro.explore.ample_internal_moves`).  On vme_read/full the
    structural netlist is single-cube -- no internal nets, no invisible
    moves -- so the pruning is a no-op and the reduced walk must agree
    with the exhaustive one state for state.  On half/full the two-cube
    ``ao`` decomposition races on internal nets; the exhaustive walk
    refutes it, and the pruned walk demonstrates exactly the documented
    optimism: it hides the racing interleaving, so its pass certifies
    nothing.  If either leg shifts, the pruning's semantics changed.
    """
    from repro.flow import run_flow_stg
    from repro.sg.generator import generate_sg
    from repro.specs import suite
    from repro.verify import check_conformance

    def pair(name):
        initial_sg = generate_sg(suite.load(name))
        flow = run_flow_stg(None, strategy="full", initial_sg=initial_sg,
                            name=f"{name}/full")
        full = check_conformance(flow.report.circuit.netlist,
                                 flow.report.resolved_sg,
                                 model="structural", name=f"{name}/full")
        reduced = check_conformance(flow.report.circuit.netlist,
                                    flow.report.resolved_sg,
                                    model="structural",
                                    name=f"{name}/full", reduced=True)
        return full, reduced

    exact_full, exact_reduced = pair("vme_read")
    pruned_full, pruned_reduced = pair("half")
    return {
        "exact": {
            "point": "vme_read/full",
            "verdict_full": exact_full.verdict,
            "verdict_reduced": exact_reduced.verdict,
            "product_states_full": exact_full.product_states,
            "product_states_reduced": exact_reduced.product_states,
        },
        "pruned": {
            "point": "half/full",
            "verdict_full": pruned_full.verdict,
            "verdict_reduced": pruned_reduced.verdict,
            "product_states_full": pruned_full.product_states,
            "product_states_reduced": pruned_reduced.product_states,
        },
        "exact_without_internal_nets": (
            exact_full.verdict == exact_reduced.verdict == "conforming"
            and exact_full.product_states == exact_reduced.product_states
            > 0),
        "optimism_documented": (
            pruned_full.verdict == "non-conforming"
            and pruned_reduced.product_states > 0),
    }


def run_verify_throughput(context) -> dict:
    first, cold_seconds = _verify_everything()
    second, _ = _verify_everything()
    structural = _structural_probes()
    reduced_walk = _reduced_walk_probe()

    checked = {label: cert for label, cert in first.items()
               if not cert.skipped}
    skipped = sorted(label for label, cert in first.items()
                     if cert.skipped)
    product_states = sum(cert.product_states for cert in checked.values())
    product_arcs = sum(cert.product_arcs for cert in checked.values())
    verify_seconds = sum(cert.seconds for cert in checked.values())

    identical = all(first[label].to_dict() == second[label].to_dict()
                    for label in first)

    return {
        "checks_total": len(first),
        "verified": len(checked),
        "skipped": skipped,
        "all_conforming": all(cert.ok for cert in checked.values()),
        "product_states": product_states,
        "product_arcs": product_arcs,
        "verify_seconds": verify_seconds,
        "states_per_second": (product_states / verify_seconds
                              if verify_seconds > 0 else 0.0),
        "arcs_per_second": (product_arcs / verify_seconds
                            if verify_seconds > 0 else 0.0),
        "full_suite_wall_seconds": cold_seconds,
        "certificates_identical_between_passes": identical,
        "structural_probes": structural,
        "structural_as_expected": all(probe["as_expected"]
                                      for probe in structural.values()),
        "reduced_walk": reduced_walk,
        "reduced_product_states":
            reduced_walk["exact"]["product_states_reduced"],
        "full_product_states":
            reduced_walk["exact"]["product_states_full"],
        "reduced_walk_exact": reduced_walk["exact_without_internal_nets"],
        "reduced_walk_optimism": reduced_walk["optimism_documented"],
    }


register(BenchCase(
    name="verify_throughput",
    title="Verification throughput (suite + LR, all strategies)",
    tier="full",
    run=run_verify_throughput,
    metrics=(
        Metric("checks_total", "checks"),
        Metric("verified", "checks", direction="higher"),
        Metric("product_states", "states"),
        Metric("product_arcs", "arcs"),
        Metric("reduced_product_states", "states"),
        Metric("full_product_states", "states"),
        Metric("states_per_second", "states/s", direction="higher",
               measured=True),
        Metric("arcs_per_second", "arcs/s", direction="higher",
               measured=True),
        Metric("verify_seconds", "s", direction="lower", measured=True),
        Metric("full_suite_wall_seconds", "s", direction="lower",
               measured=True),
    ),
    checks=(
        Check("all_conforming", lambda r: _require(
            r["all_conforming"],
            "every synthesized implementation must conform under the "
            "atomic model")),
        Check("only_micropipeline_skipped", lambda r: _require(
            r["skipped"] == ["micropipeline/none"],
            f"the only hole must be micropipeline/none, got "
            f"{r['skipped']}")),
        Check("certificates_deterministic", lambda r: _require(
            r["certificates_identical_between_passes"]
            and r["product_states"] > 0,
            "two passes must produce byte-identical certificates")),
        Check("structural_probes_as_expected", lambda r: _require(
            r["structural_as_expected"],
            "the structural model must pass vme_read and refute half "
            "with a trace")),
        Check("reduced_walk_exact_without_internal_nets", lambda r: _require(
            r["reduced_walk_exact"],
            "with no internal nets the pruned walk must agree with the "
            "exhaustive one state for state")),
        Check("reduced_walk_optimism_documented", lambda r: _require(
            r["reduced_walk_optimism"],
            "the exhaustive walk must refute half/full while the pruned "
            "walk still explores -- the documented optimism of "
            "reduced=True")),
    ),
    info_keys=("skipped", "structural_probes", "reduced_walk"),
    table=lambda r: (
        ("metric", "value"),
        [("checks", r["checks_total"]),
         ("verified", r["verified"]),
         ("skipped", ", ".join(r["skipped"]) or "-"),
         ("product states", r["product_states"]),
         ("product arcs", r["product_arcs"]),
         ("states/s", f"{r['states_per_second']:.0f}"),
         ("full-suite wall", f"{r['full_suite_wall_seconds']:.2f}s")]),
))
