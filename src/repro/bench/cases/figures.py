"""Figure-level cases: the paper's worked examples as registry entries.

Each case regenerates one figure of the paper and pins the exact shape
the figure shows -- state counts, codes, concurrency relations, circuit
structure.  Everything here is deterministic, so nearly every metric is
exact (canonical-payload material); the wall seconds ride along as
tracked trajectory data.
"""

from __future__ import annotations

from ..registry import BenchCase, Check, CheckFailed, Metric, register


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CheckFailed(message)


# --------------------------------------------------------------------------
# Fig. 1: the simple memory/processor controller.

def run_fig1(context) -> dict:
    from repro import check_implementability, csc_conflicts, generate_sg
    from repro.encoding.csc import irresolvable_conflicts
    from repro.sg.regions import are_concurrent, excitation_region
    from repro.specs.fig1 import fig1_stg

    seconds, sg = context.best_of(lambda: generate_sg(fig1_stg()))
    report = check_implementability(sg)
    conflicts = csc_conflicts(sg)
    return {
        "states": len(sg),
        "csc_conflicts": report.csc_conflict_count,
        "irresolvable_conflicts": len(irresolvable_conflicts(sg)),
        "analyse_seconds": seconds,
        "consistent": report.consistent,
        "speed_independent": report.speed_independent,
        "codes": sorted(sg.code_string(state) for state in sg.states),
        "er_intersects": bool(excitation_region(sg, "Req+")
                              & excitation_region(sg, "Ack-")),
        "req_ack_concurrent": are_concurrent(sg, "Req+", "Ack-"),
        "conflict_code": list(conflicts[0].code) if conflicts else [],
    }


register(BenchCase(
    name="fig1_controller",
    title="Fig. 1: memory/processor controller state graph",
    tier="quick",
    run=run_fig1,
    metrics=(
        Metric("states", "states"),
        Metric("csc_conflicts", "conflicts"),
        Metric("irresolvable_conflicts", "conflicts"),
        Metric("analyse_seconds", "s", direction="lower", measured=True),
    ),
    checks=(
        Check("five_state_sg", lambda r: _require(
            r["states"] == 5, f"expected 5 states, got {r['states']}")),
        Check("consistent_and_si", lambda r: _require(
            r["consistent"] and r["speed_independent"],
            "Fig. 1.d must be consistent and speed independent")),
        Check("excitation_codes", lambda r: _require(
            "1*1" in r["codes"] and "11*" in r["codes"],
            f"missing excitation codes in {r['codes']}")),
        Check("req_ack_concurrent", lambda r: _require(
            r["er_intersects"] and r["req_ack_concurrent"],
            "ER(Req+) and ER(Ack-) must intersect => concurrent")),
        Check("csc_conflict_at_11", lambda r: _require(
            r["csc_conflicts"] == 1 and r["conflict_code"] == [1, 1],
            f"expected one CSC conflict at code 11, got "
            f"{r['csc_conflicts']} at {r['conflict_code']}")),
        Check("conflict_beyond_insertion", lambda r: _require(
            r["irresolvable_conflicts"] == 1,
            "the Fig. 1 conflict is separated by input events only")),
    ),
    info_keys=("codes",),
    table=lambda r: (("metric", "value"),
                     [("states", r["states"]),
                      ("codes", " ".join(r["codes"])),
                      ("CSC conflicts", r["csc_conflicts"])]),
))


# --------------------------------------------------------------------------
# Fig. 2: handshake expansion of the LR-process.

def run_fig2(context) -> dict:
    from repro import generate_sg
    from repro.hse.expansion import expand_four_phase
    from repro.hse.spec import ChannelRole
    from repro.sg.properties import check_implementability
    from repro.sg.regions import are_concurrent
    from repro.specs.lr import lr_spec

    def expand_both():
        constrained = generate_sg(expand_four_phase(lr_spec()))
        free_spec = lr_spec()
        free_spec.channels["l"] = ChannelRole.FREE
        free_spec.channels["r"] = ChannelRole.FREE
        return constrained, generate_sg(expand_four_phase(free_spec))

    seconds, (constrained, free) = context.best_of(expand_both)
    report = check_implementability(constrained)
    return {
        "states_constrained": len(constrained),
        "states_free": len(free),
        "expand_seconds": seconds,
        "consistent": report.consistent,
        "speed_independent": report.speed_independent,
        "skeleton_sequential": (
            not are_concurrent(constrained, "li+", "ro+")
            and not are_concurrent(constrained, "ro+", "ri+")),
        "interface_respected": (
            not are_concurrent(constrained, "li-", "lo+")
            and not are_concurrent(constrained, "lo-", "li-")),
        "resets_concurrent": (
            are_concurrent(constrained, "li-", "ri-")
            and are_concurrent(constrained, "lo-", "ro-")),
        "free_violates_protocol": are_concurrent(free, "li-", "lo+"),
    }


register(BenchCase(
    name="fig2_lr_expansion",
    title="Fig. 2: LR-process handshake expansion",
    tier="quick",
    run=run_fig2,
    metrics=(
        Metric("states_constrained", "states"),
        Metric("states_free", "states"),
        Metric("expand_seconds", "s", direction="lower", measured=True),
    ),
    checks=(
        Check("constrained_16_states", lambda r: _require(
            r["states_constrained"] == 16,
            f"Fig. 2.f has 16 states, got {r['states_constrained']}")),
        Check("consistent_and_si", lambda r: _require(
            r["consistent"] and r["speed_independent"],
            "the constrained expansion must be consistent and SI")),
        Check("skeleton_sequential", lambda r: _require(
            r["skeleton_sequential"], "li+ -> ro+ -> ri+ must be ordered")),
        Check("interface_respected", lambda r: _require(
            r["interface_respected"],
            "passive-port constraint [li+, lo+, li-, lo-] violated")),
        Check("resets_concurrent", lambda r: _require(
            r["resets_concurrent"],
            "cross-channel reset concurrency must survive")),
        Check("free_expansion_larger", lambda r: _require(
            r["states_free"] > r["states_constrained"]
            and r["free_violates_protocol"],
            "Fig. 2.e must admit strictly more behaviour")),
    ),
    table=lambda r: (("expansion", "states"),
                     [("Fig. 2.f (constrained)", r["states_constrained"]),
                      ("Fig. 2.e (free)", r["states_free"])]),
))


# --------------------------------------------------------------------------
# Fig. 3: the LR-process implementations as circuits.

def run_fig3(context) -> dict:
    from repro import full_reduction, generate_sg, implement, implement_stg
    from repro.specs.lr import lr_expanded, q_module_stg

    def build():
        sg = generate_sg(lr_expanded())
        return {
            "full": implement(full_reduction(sg), name="full"),
            "max": implement(sg, name="max"),
            "q": implement_stg(q_module_stg(), name="q"),
        }

    seconds, circuits = context.best_of(build)
    max_conc = circuits["max"]
    mentioned = " ".join(max_conc.circuit.equations.values())
    return {
        "full_area": circuits["full"].circuit.area,
        "max_area": max_conc.circuit.area,
        "q_area": circuits["q"].circuit.area,
        "max_csc_signals": max_conc.csc_signal_count,
        "q_csc_signals": circuits["q"].csc_signal_count,
        "synthesis_seconds": seconds,
        "full_equations": dict(circuits["full"].circuit.equations),
        "state_signal_in_support": any(signal in mentioned
                                       for signal in ("csc0", "csc1")),
        "q_sequential": bool(circuits["q"].circuit.netlist.sequential_gates()
                             or circuits["q"].circuit.area > 0),
        "equations": [(name, report.circuit.style_of(signal), equation)
                      for name, report in circuits.items()
                      for signal, equation
                      in sorted(report.circuit.equations.items())],
    }


register(BenchCase(
    name="fig3_implementations",
    title="Fig. 3: LR implementations",
    tier="quick",
    run=run_fig3,
    metrics=(
        Metric("full_area", "literals", direction="lower"),
        Metric("max_area", "literals", direction="lower"),
        Metric("q_area", "literals", direction="lower"),
        Metric("max_csc_signals", "signals"),
        Metric("q_csc_signals", "signals"),
        Metric("synthesis_seconds", "s", direction="lower", measured=True),
    ),
    checks=(
        Check("full_is_two_wires", lambda r: _require(
            r["full_equations"] == {"lo": "lo = ri", "ro": "ro = li"}
            and r["full_area"] == 0,
            f"Fig. 3.b must be two plain wires, got {r['full_equations']}")),
        Check("max_carries_state_signals", lambda r: _require(
            r["max_csc_signals"] == 2 and r["state_signal_in_support"],
            "Fig. 3.c/d needs 2 CSC signals feeding the output logic")),
        Check("q_module_sequential", lambda r: _require(
            r["q_csc_signals"] == 1 and r["q_sequential"],
            "Fig. 3.a needs one state signal and a sequential cell")),
    ),
    table=lambda r: (("design", "style", "equation"), r["equations"]),
))


# --------------------------------------------------------------------------
# Fig. 6: 2-phase and 4-phase refinement of a mixed specification.

def run_fig6(context) -> dict:
    from repro import generate_sg
    from repro.hse.expansion import expand_four_phase, expand_two_phase
    from repro.sg.properties import check_implementability
    from repro.specs.fragments import fig6_spec

    def refine_both():
        two = generate_sg(expand_two_phase(fig6_spec()))
        four = generate_sg(expand_four_phase(fig6_spec()))
        return two, four

    seconds, (two, four) = context.best_of(refine_both)
    report2 = check_implementability(two)
    report4 = check_implementability(four)
    b_plus = sum(1 for _, label, _ in four.arcs()
                 if label in ("b+", "b+/1"))
    b_minus = sum(1 for _, label, _ in four.arcs() if label == "b-")
    return {
        "states_two_phase": len(two),
        "states_four_phase": len(four),
        "refine_seconds": seconds,
        "two_phase_events_ok": (
            {"ai~", "ao~", "b~", "b~/1", "c+", "c-"} <= set(two.events)),
        "four_phase_events_ok": (
            {"ai+", "ai-", "ao+", "ao-", "b+", "b+/1", "b-", "c+", "c-"}
            <= set(four.events)),
        "two_phase_sound": report2.consistent and report2.deadlock_free,
        "four_phase_sound": (report4.consistent and report4.speed_independent
                             and report4.deadlock_free),
        "b_plus_arcs": b_plus,
        "b_minus_arcs": b_minus,
    }


register(BenchCase(
    name="fig6_refinement",
    title="Fig. 6: 2-phase and 4-phase refinement",
    tier="quick",
    run=run_fig6,
    metrics=(
        Metric("states_two_phase", "states"),
        Metric("states_four_phase", "states"),
        Metric("refine_seconds", "s", direction="lower", measured=True),
    ),
    checks=(
        Check("two_phase_toggles", lambda r: _require(
            r["two_phase_events_ok"] and r["two_phase_sound"],
            "the 2-phase refinement must toggle and stay sound")),
        Check("four_phase_rtz", lambda r: _require(
            r["four_phase_events_ok"] and r["four_phase_sound"],
            "the 4-phase refinement must add return-to-zero and stay SI")),
        Check("reset_concurrency_grows_sg", lambda r: _require(
            r["states_four_phase"] > 6,
            "the 4-phase SG must exceed the sequential skeleton")),
        Check("b_fires_twice_per_cycle", lambda r: _require(
            r["b_plus_arcs"] >= 2 and r["b_minus_arcs"] >= 2,
            "b must fire twice per cycle through one shared b-")),
    ),
    table=lambda r: (("refinement", "states"),
                     [("2-phase (Fig. 6.b)", r["states_two_phase"]),
                      ("4-phase (Fig. 6.c)", r["states_four_phase"])]),
))


# --------------------------------------------------------------------------
# Fig. 8: the forward-reduction worked example.

def run_fig8(context) -> dict:
    from repro.reduction.fwdred import forward_reduction
    from repro.reduction.validity import check_validity
    from repro.sg.regions import are_concurrent, excitation_region
    from repro.specs.fragments import fig8_sg

    def apply_fwdred():
        sg = fig8_sg()
        return sg, forward_reduction(sg, "a", "b")

    seconds, (sg, result) = context.best_of(apply_fwdred)
    reduced = result.sg
    return {
        "removed_arcs": result.removed_arcs,
        "removed_states": result.removed_states,
        "er_a_before": len(excitation_region(sg, "a")),
        "er_a_after": len(excitation_region(reduced, "a")),
        "fwdred_seconds": seconds,
        "valid": result.valid and check_validity(sg, reduced).valid,
        "er_before_exact": excitation_region(sg, "a")
        == {"s1", "s3", "s5", "s7"},
        "er_after_exact": excitation_region(reduced, "a") == {"s7"},
        "dead_states_gone": {"s2", "s4", "s6"}.isdisjoint(set(reduced.states)),
        "concurrency_removed": all(
            are_concurrent(sg, "a", other)
            and not are_concurrent(reduced, "a", other)
            for other in ("b", "d", "e")),
        "choice_branch_intact": reduced.target("s1", "g") == "t1",
    }


register(BenchCase(
    name="fig8_fwdred",
    title="Fig. 8: forward reduction FwdRed(a, b)",
    tier="quick",
    run=run_fig8,
    metrics=(
        Metric("removed_arcs", "arcs"),
        Metric("removed_states", "states"),
        Metric("er_a_before", "states"),
        Metric("er_a_after", "states"),
        Metric("fwdred_seconds", "s", direction="lower", measured=True),
    ),
    checks=(
        Check("reduction_valid", lambda r: _require(
            r["valid"], "Definition 5.1 must hold for FwdRed(a, b)")),
        Check("er_truncated", lambda r: _require(
            r["er_before_exact"] and r["er_after_exact"]
            and r["removed_arcs"] == 3,
            "the backward sweep must truncate ER(a) to {s7}")),
        Check("dead_states_gone", lambda r: _require(
            r["removed_states"] == 3 and r["dead_states_gone"],
            "s2, s4, s6 must die with their only incoming arcs")),
        Check("concurrency_side_effects", lambda r: _require(
            r["concurrency_removed"],
            "reducing (a, b) must also serialize a against d and e")),
        Check("choice_branch_intact", lambda r: _require(
            r["choice_branch_intact"], "the g branch must survive")),
    ),
    table=lambda r: (("metric", "value"),
                     [("removed arcs", r["removed_arcs"]),
                      ("removed states", r["removed_states"]),
                      ("|ER(a)| before -> after",
                       f"{r['er_a_before']} -> {r['er_a_after']}")]),
))


# --------------------------------------------------------------------------
# Fig. 10: the PAR component case study.

def run_fig10(context) -> dict:
    from repro import (generate_sg, implement, implement_stg,
                       reduce_concurrency)
    from repro.sg.regions import are_concurrent
    from repro.specs.par import PAR_KEEP_CONC, par_expanded, par_manual_stg
    from repro.timing.critical_cycle import critical_cycle
    from repro.timing.delays import gate_level_delays

    def gate_cycle(report):
        sequential = {signal
                      for signal, impl in report.circuit.signals.items()
                      if impl.netlist.sequential_gates()}
        model = gate_level_delays(report.resolved_sg, sequential)
        return critical_cycle(report.resolved_sg, model).cycle_time

    def build():
        manual = implement_stg(par_manual_stg(), name="manual (Tangram)")
        sg = generate_sg(par_expanded())
        search = reduce_concurrency(sg, keep_conc=PAR_KEEP_CONC,
                                    max_explored=4000, patience=10**9)
        auto = implement(search.best, name="automatic")
        return sg, search, manual, auto

    seconds, (sg, search, manual, auto) = context.best_of(build)
    manual_cycle, auto_cycle = gate_cycle(manual), gate_cycle(auto)
    return {
        "expansion_states": len(sg),
        "explored": search.explored_count,
        "auto_area": auto.area,
        "manual_area": manual.area,
        "auto_csc_signals": auto.csc_signal_count,
        "area_ratio": auto.area / manual.area,
        "cycle_ratio": auto_cycle / manual_cycle,
        "build_seconds": seconds,
        "resolved": manual.csc_resolved and auto.csc_resolved,
        "constraint_kept": are_concurrent(auto.resolved_sg, "bi+", "ci+"),
        "auto_equations": sorted(auto.circuit.equations.values()),
    }


register(BenchCase(
    name="fig10_par",
    title="Fig. 10: PAR component (automatic vs Tangram)",
    tier="full",
    run=run_fig10,
    metrics=(
        Metric("expansion_states", "states"),
        Metric("explored", "configs"),
        Metric("auto_area", "literals", direction="lower"),
        Metric("manual_area", "literals"),
        Metric("auto_csc_signals", "signals"),
        Metric("area_ratio", "ratio", direction="lower"),
        Metric("cycle_ratio", "ratio"),
        Metric("build_seconds", "s", direction="lower", measured=True),
    ),
    checks=(
        Check("expansion_76_states", lambda r: _require(
            r["expansion_states"] == 76,
            f"Fig. 10.b has 76 states, got {r['expansion_states']}")),
        Check("both_resolved_no_csc", lambda r: _require(
            r["resolved"] and r["auto_csc_signals"] == 0,
            "the automatic design needs no state signal (Fig. 10.d)")),
        Check("semantic_constraint_kept", lambda r: _require(
            r["constraint_kept"], "b? || c? must survive the reduction")),
        Check("auto_smaller_than_manual", lambda r: _require(
            r["auto_area"] < r["manual_area"],
            f"automatic ({r['auto_area']}) must beat manual "
            f"({r['manual_area']}) on area")),
        Check("auto_pays_in_cycle_time", lambda r: _require(
            r["cycle_ratio"] >= 1.0,
            "balanced gate-level delays must favour the manual design")),
    ),
    info_keys=("auto_equations",),
    table=lambda r: (("design", "area", "gate-level cycle ratio"),
                     [("manual (Fig 10.c/f)", r["manual_area"], "1.00"),
                      ("automatic (Fig 10.d/e)", r["auto_area"],
                       f"{r['cycle_ratio']:.2f}")]),
))
