"""The registered benchmark cases, one module per legacy bench family.

Importing this package registers every case with
:mod:`repro.bench.registry` (import order is fixed, so registry order --
and therefore run order and report layout -- is deterministic).  Each
module holds the workload that used to live in the matching ad-hoc
``benchmarks/bench_*.py`` script; those scripts are now thin pytest
shims over the registry.

| module | cases | legacy scripts |
| --- | --- | --- |
| ``figures``  | fig1/fig2/fig3/fig6/fig8/fig10 | ``bench_fig*_*.py`` |
| ``tables``   | table1_lr, table2_mmu, ablation_search | ``bench_table*_*.py``, ``bench_ablation_search.py`` |
| ``engine``   | engine_scaling | ``bench_engine_scaling.py`` |
| ``frontier`` | frontier_scaling | (new: shared exploration core) |
| ``symbolic`` | symbolic_scaling | (new: BDD crossover) |
| ``fuzzing``  | fuzz_throughput | (new: differential fuzz oracle) |
| ``sweeps``   | sweep_throughput | ``bench_sweep.py`` |
| ``pipelines``| pipeline_resume | ``bench_pipeline.py`` |
| ``serving``  | serve_throughput | ``bench_serve.py`` |
| ``verifying``| verify_throughput | ``bench_verify.py`` |
"""

from . import (figures, tables, engine, frontier, symbolic,  # noqa: F401
               fuzzing, sweeps, pipelines, serving, verifying)
