"""Serving throughput and guarantees: cold vs warm, dedup, determinism.

Drives a real server (sockets, HTTP, the worker executor -- nothing
mocked) through the acceptance properties of the serving layer: a fresh
server over a warm store answers with zero stages computed; N identical
concurrent requests trigger exactly one computation; ``workers=1`` and
``workers=4`` servers produce byte-identical result payloads; and the
cold/history/warm request rates give the throughput trajectory.
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

from ..registry import BenchCase, Check, CheckFailed, Metric, register

#: Suite specs small enough to keep the benchmark minutes-free; mmu's
#: unreduced CSC search alone would dwarf every serving effect measured
#: here (same exclusion as the sweep/pipeline cases).
SPECS = ("half", "vme_read", "fifo_cell", "lr")

CONCURRENT_CLIENTS = 8


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CheckFailed(message)


def _call(base, path, payload=None, timeout=300):
    if payload is None:
        request = urllib.request.Request(base + path)
    else:
        request = urllib.request.Request(
            base + path, data=json.dumps(payload).encode("utf-8"),
            method="POST")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def _synth_all(base, specs):
    """POST every spec (blocking); returns {spec: job view} and seconds."""
    started = time.perf_counter()
    views = {spec: _call(base, "/synth", {"spec": spec, "wait": True})
             for spec in specs}
    return views, time.perf_counter() - started


def _stage_counts(views):
    computed = reused = 0
    for view in views.values():
        for state in view["stages"].values():
            if state == "cached":
                reused += 1
            else:
                computed += 1
    return computed, reused


def run_serve_throughput(context) -> dict:
    from repro.serve import BackgroundServer, json_bytes

    result = {"specs": list(SPECS),
              "concurrent_clients": CONCURRENT_CLIENTS}

    with tempfile.TemporaryDirectory() as tempdir:
        store = str(Path(tempdir) / "store")

        # ---- cold phase: fresh server, empty store -------------------
        with BackgroundServer(store_root=store, workers=0) as server:
            base = f"http://127.0.0.1:{server.port}"
            cold_views, cold_seconds = _synth_all(base, SPECS)
            computed, reused = _stage_counts(cold_views)
            result["cold_seconds"] = cold_seconds
            result["cold_rps"] = len(SPECS) / cold_seconds
            result["cold_stages_computed"] = computed
            result["cold_stages_reused"] = reused

            # Same-server repeat: answered from job history.
            history_views, history_seconds = _synth_all(base, SPECS)
            result["history_seconds"] = history_seconds
            result["history_rps"] = len(SPECS) / history_seconds
            result["history_same_results"] = all(
                json_bytes(history_views[s]["result"])
                == json_bytes(cold_views[s]["result"]) for s in SPECS)

            # In-flight dedup: concurrent identical requests, one compute.
            stats_before = _call(base, "/stats")
            hits = []

            def hit():
                hits.append(_call(base, "/synth",
                                  {"spec": "micropipeline", "wait": True}))

            threads = [threading.Thread(target=hit)
                       for _ in range(CONCURRENT_CLIENTS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats_after = _call(base, "/stats")
            result["dedup_executions"] = (stats_after["tasks_executed"]
                                          - stats_before["tasks_executed"])
            result["dedup_hits"] = (stats_after["dedup_hits"]
                                    - stats_before["dedup_hits"])
            result["dedup_distinct_bodies"] = len(
                {json_bytes(view["result"]) for view in hits})

        # ---- warm phase: FRESH server over the now-warm store --------
        with BackgroundServer(store_root=store, workers=0) as server:
            base = f"http://127.0.0.1:{server.port}"
            warm_views, warm_seconds = _synth_all(base, SPECS)
            computed, reused = _stage_counts(warm_views)
            result["warm_seconds"] = warm_seconds
            result["warm_rps"] = len(SPECS) / warm_seconds
            result["warm_stages_computed"] = computed
            result["warm_stages_reused"] = reused
            result["warm_speedup"] = cold_seconds / warm_seconds
            result["warm_same_results"] = all(
                json_bytes(warm_views[s]["result"])
                == json_bytes(cold_views[s]["result"]) for s in SPECS)

        # ---- worker-count determinism: 1 vs 4, separate cold stores --
        sweep_request = {"specs": ["lr", "half"],
                         "strategies": ["none", "best-first", "full"],
                         "wait": True, "timeout": 600}
        bodies = {}
        for workers in (1, 4):
            with BackgroundServer(
                    store_root=str(Path(tempdir) / f"w{workers}"),
                    workers=workers) as server:
                base = f"http://127.0.0.1:{server.port}"
                synth = {spec: _call(base, "/synth",
                                     {"spec": spec, "wait": True})
                         for spec in SPECS}
                sweep = _call(base, "/sweep", sweep_request)
                _require(sweep["status"] == "done",
                         f"sweep job failed: {sweep.get('error')}")
                bodies[workers] = (
                    {spec: json_bytes(view["result"])
                     for spec, view in synth.items()},
                    json_bytes(sweep["result"]))
        result["workers_1_vs_4_synth_identical"] = (
            bodies[1][0] == bodies[4][0])
        result["workers_1_vs_4_sweep_identical"] = (
            bodies[1][1] == bodies[4][1])

    return result


register(BenchCase(
    name="serve_throughput",
    title="Synthesis service: cold vs warm over the suite specs",
    tier="full",
    run=run_serve_throughput,
    metrics=(
        Metric("concurrent_clients", "clients"),
        Metric("dedup_executions", "computations", direction="lower"),
        Metric("dedup_hits", "hits"),
        Metric("dedup_distinct_bodies", "bodies"),
        Metric("cold_stages_computed", "stages", direction="lower"),
        Metric("cold_stages_reused", "stages"),
        Metric("warm_stages_computed", "stages", direction="lower"),
        Metric("warm_stages_reused", "stages"),
        Metric("cold_seconds", "s", direction="lower", measured=True),
        Metric("history_seconds", "s", direction="lower", measured=True),
        Metric("warm_seconds", "s", direction="lower", measured=True),
        Metric("cold_rps", "req/s", direction="higher", measured=True),
        Metric("history_rps", "req/s", direction="higher", measured=True),
        Metric("warm_rps", "req/s", direction="higher", measured=True),
        Metric("warm_speedup", "x", direction="higher", measured=True),
    ),
    checks=(
        Check("warm_computes_nothing", lambda r: _require(
            r["warm_stages_computed"] == 0
            and r["warm_stages_reused"] > 0
            and r["warm_same_results"] and r["history_same_results"],
            "a warm repeated request must compute zero pipeline stages "
            "and return identical bytes")),
        Check("in_flight_dedup", lambda r: _require(
            r["dedup_executions"] == 1
            and r["dedup_hits"] == r["concurrent_clients"] - 1
            and r["dedup_distinct_bodies"] == 1,
            f"{CONCURRENT_CLIENTS} identical concurrent requests must "
            f"trigger exactly one computation")),
        Check("worker_count_determinism", lambda r: _require(
            r["workers_1_vs_4_synth_identical"]
            and r["workers_1_vs_4_sweep_identical"],
            "workers=1 and workers=4 must produce byte-identical "
            "results")),
        Check("serving_beats_cold", lambda r: _require(
            r["history_seconds"] < r["cold_seconds"]
            and r["warm_seconds"] < r["cold_seconds"],
            "history and warm phases must beat cold computation")),
    ),
    info_keys=("specs",),
    table=lambda r: (
        ("phase", "seconds", "req/s", "stages computed", "stages reused"),
        [("cold (empty store)", f"{r['cold_seconds']:.2f}",
          f"{r['cold_rps']:.1f}", r["cold_stages_computed"],
          r["cold_stages_reused"]),
         ("repeat (job history)", f"{r['history_seconds']:.3f}",
          f"{r['history_rps']:.1f}", 0, 0),
         ("warm (fresh server)", f"{r['warm_seconds']:.2f}",
          f"{r['warm_rps']:.1f}", r["warm_stages_computed"],
          r["warm_stages_reused"])]),
))
