"""Pipeline resume: cold vs warm wall time and per-stage hit rates.

Drives the suite grid (every registered spec except the MMU controller,
whose unreduced CSC search alone dwarfs the rest of the grid combined --
the same exclusion as the sweep-throughput case) through four phases
against one content-addressed store: cold, warm, a delays-only change
(only the ``timing`` stage may recompute) and a cold ``jobs=2`` run.
The checks pin the four resume claims: determinism, store soundness,
stage-granular resume and cross-point stage sharing.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from ..registry import BenchCase, Check, CheckFailed, Metric, register

STRATEGIES = ("none", "beam", "best-first", "full")
EXCLUDED_SPECS = ("mmu",)

#: The delays phase swaps the Table 1 model (2/1/1) for a slower
#: internal-signal model; only the timing stage depends on it.
ALTERNATE_DELAYS = (2, 1, 3)

#: Stages a sweep point evaluates when everything misses.
STAGE_SLOTS_PER_POINT = 5  # generate/reduce/resolve/synthesize/timing


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CheckFailed(message)


def run_pipeline_resume(context) -> dict:
    from repro import engine
    from repro.sweep import (ResultStore, render, run_sweep, spec_registry,
                             tables_grid)

    def timed(grid, jobs, store):
        engine.clear_caches()
        started = time.perf_counter()
        outcome = run_sweep(grid, jobs=jobs, store=store)
        return time.perf_counter() - started, outcome

    specs = [name for name in spec_registry()
             if name not in EXCLUDED_SPECS]
    grid = tables_grid(specs=specs, strategies=STRATEGIES)
    delays_grid = tables_grid(specs=specs, strategies=STRATEGIES,
                              delays=ALTERNATE_DELAYS)
    points = len(grid.points)

    with tempfile.TemporaryDirectory() as tempdir:
        serial_store = ResultStore(Path(tempdir) / "serial")
        jobs_store = ResultStore(Path(tempdir) / "jobs")

        cold_seconds, cold = timed(grid, 1, serial_store)
        warm_seconds, warm = timed(grid, 1, serial_store)
        delays_seconds, delays = timed(delays_grid, 1, serial_store)
        jobs_seconds, jobs = timed(grid, 2, jobs_store)

    identical = all(render(cold.rows, fmt) == render(warm.rows, fmt)
                    and render(cold.rows, fmt) == render(jobs.rows, fmt)
                    for fmt in ("json", "csv", "md"))

    result = {
        "specs": specs,
        "points": points,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "delays_seconds": delays_seconds,
        "jobs_seconds": jobs_seconds,
        "speedup_warm_vs_cold": cold_seconds / warm_seconds,
        "speedup_delays_vs_cold": cold_seconds / delays_seconds,
        "cold_computed_points": cold.computed,
        "warm_computed_points": warm.computed,
        "warm_cached_points": warm.cached,
        "delays_computed_points": delays.computed,
        "cold_stage_computed": dict(sorted(cold.stage_computed.items())),
        "cold_stage_reused": dict(sorted(cold.stage_reused.items())),
        "delays_stage_computed": dict(sorted(delays.stage_computed.items())),
        "delays_stage_reused": dict(sorted(delays.stage_reused.items())),
        "cold_stages_computed_total": sum(cold.stage_computed.values()),
        "delays_stages_computed_total": sum(delays.stage_computed.values()),
        "cold_stage_slots": points * STAGE_SLOTS_PER_POINT,
        "reports_identical_cold_warm_jobs": identical,
    }
    return result


register(BenchCase(
    name="pipeline_resume",
    title="Pipeline resume (suite grid, stage-granular warm store)",
    tier="full",
    run=run_pipeline_resume,
    metrics=(
        Metric("points", "points"),
        Metric("cold_computed_points", "points"),
        Metric("warm_computed_points", "points"),
        Metric("warm_cached_points", "points"),
        Metric("delays_computed_points", "points"),
        Metric("cold_stages_computed_total", "stages", direction="lower"),
        Metric("delays_stages_computed_total", "stages", direction="lower"),
        Metric("cold_stage_slots", "stages"),
        Metric("cold_seconds", "s", direction="lower", measured=True),
        Metric("warm_seconds", "s", direction="lower", measured=True),
        Metric("delays_seconds", "s", direction="lower", measured=True),
        Metric("jobs_seconds", "s", direction="lower", measured=True),
        Metric("speedup_warm_vs_cold", "x", direction="higher",
               measured=True),
        Metric("speedup_delays_vs_cold", "x", direction="higher",
               measured=True),
    ),
    checks=(
        Check("determinism", lambda r: _require(
            r["reports_identical_cold_warm_jobs"],
            "cold, warm and jobs=2 reports must be byte-identical")),
        Check("warm_store_sound", lambda r: _require(
            r["warm_computed_points"] == 0
            and r["warm_cached_points"] == r["points"],
            "a warm rerun must compute zero points")),
        Check("stage_granular_resume", lambda r: _require(
            set(r["delays_stage_computed"]) == {"timing"}
            and all(r["delays_stage_reused"][stage] == r["points"]
                    for stage in ("generate", "reduce", "resolve",
                                  "synthesize")),
            "a delay-model change must recompute only the timing stage")),
        Check("cross_point_sharing", lambda r: _require(
            r["cold_stages_computed_total"] < r["cold_stage_slots"],
            "content-addressed keys must dedup stages across points "
            "already in the cold run")),
        Check("delays_cheaper_than_cold", lambda r: _require(
            r["delays_seconds"] < r["cold_seconds"],
            "the delays-only rerun must beat the cold run")),
    ),
    info_keys=("specs", "cold_stage_computed", "cold_stage_reused",
               "delays_stage_computed", "delays_stage_reused"),
    table=lambda r: (
        ("phase", "seconds", "points computed", "stages computed"),
        [("cold serial", f"{r['cold_seconds']:.2f}",
          r["cold_computed_points"], r["cold_stages_computed_total"]),
         ("warm serial", f"{r['warm_seconds']:.2f}",
          r["warm_computed_points"], 0),
         ("delays-only change", f"{r['delays_seconds']:.2f}",
          r["delays_computed_points"], r["delays_stages_computed_total"])]),
))
