"""Differential fuzzing: generator + oracle throughput.

The fuzz harness is only useful if it is cheap enough to run constantly,
so this case tracks specs/second through the full engines-only oracle
(packed vs tuples state graphs, explicit vs symbolic coding) over a
small seeded corpus.  The checks pin what the throughput must never
cost: zero divergences between the engines, and byte-determinism -- the
same seed must reproduce the same corpus digest within the run.
"""

from __future__ import annotations

from ..registry import BenchCase, Check, CheckFailed, Metric, register

#: The corpus: small knobs keep the quick tier sub-3-seconds per pass.
SEED = 0
COUNT = 20
KNOBS = {"max_fragments": 2, "max_mutations": 3, "max_signals": 8}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CheckFailed(message)


def run_fuzz_throughput(context) -> dict:
    from repro.specs.generate import GenKnobs, run_fuzz

    knobs = GenKnobs(**KNOBS)
    seconds, report = context.best_of(
        lambda: run_fuzz(seed=SEED, count=COUNT, knobs=knobs,
                         pipeline_limit=0),
        rounds=1)
    again = run_fuzz(seed=SEED, count=COUNT, knobs=knobs, pipeline_limit=0)

    return {
        "seed": SEED,
        "count": COUNT,
        "knobs": KNOBS,
        "corpus_digest": report.corpus_digest,
        "repeat_digest": again.corpus_digest,
        "corpus_states": report.total_states,
        "max_states": report.max_states,
        "divergences": len(report.divergences),
        "checks_run": sum(report.check_counts().values()),
        "fuzz_seconds": seconds,
        "specs_per_sec": COUNT / seconds if seconds else 0.0,
    }


register(BenchCase(
    name="fuzz_throughput",
    title="Differential fuzzing (generator + cross-engine oracle)",
    tier="quick",
    run=run_fuzz_throughput,
    metrics=(
        Metric("corpus_states", "states"),
        Metric("max_states", "states"),
        Metric("divergences", "divergences"),
        Metric("checks_run", "checks"),
        Metric("fuzz_seconds", "s", direction="lower", measured=True),
        Metric("specs_per_sec", "specs/s", direction="higher",
               measured=True),
    ),
    checks=(
        Check("no_divergences", lambda r: _require(
            r["divergences"] == 0,
            f"the engines disagreed on {r['divergences']} generated "
            f"spec(s) of seed {r['seed']}")),
        Check("deterministic", lambda r: _require(
            r["corpus_digest"] == r["repeat_digest"],
            f"two identical fuzz runs produced different corpus "
            f"digests: {r['corpus_digest']} vs {r['repeat_digest']}")),
    ),
    info_keys=("seed", "count", "knobs", "corpus_digest"),
))
