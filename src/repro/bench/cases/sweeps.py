"""Sweep throughput: design points per second, serial vs sharded.

Runs the Tables 1-2 *search* grid (the ``none`` strategy is excluded --
implementing the unreduced MMU is one 40+ second CSC search that would
benchmark state-signal insertion, not sweep breadth) three ways:
parallel cold, serial cold, parallel warm against the first store.

The parallel-speedup floor is environment-dependent: on fewer than four
CPUs the claim cannot be tested, and instead of quietly degrading (the
old ad-hoc script simply did not assert) the check raises
:class:`~repro.bench.registry.CheckSkipped`, which the harness records
in the report's ``skipped_checks`` -- no silent cap.
"""

from __future__ import annotations

import multiprocessing
import tempfile
import time
from pathlib import Path

from ..registry import BenchCase, Check, CheckFailed, CheckSkipped, Metric, register

PARALLEL_JOBS = 4
SPEEDUP_FLOOR = 2.5

#: Chunks of two points keep the pool's dynamic scheduling fine-grained
#: enough that one heavy spec (MMU) cannot serialize a worker for long,
#: while same-spec chunks still share the worker-side SG and memo caches.
CHUNK_SIZE = 2


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CheckFailed(message)


def run_sweep_throughput(context) -> dict:
    from repro import engine
    from repro.sweep import ResultStore, render, run_sweep, tables_grid

    def timed(grid, jobs, store):
        engine.clear_caches()
        started = time.perf_counter()
        outcome = run_sweep(grid, jobs=jobs, store=store,
                            chunk_size=CHUNK_SIZE)
        return time.perf_counter() - started, outcome

    grid = tables_grid(strategies=("beam", "best-first", "full"))
    points = len(grid.points)

    with tempfile.TemporaryDirectory() as tempdir:
        parallel_store = ResultStore(Path(tempdir) / "parallel")
        serial_store = ResultStore(Path(tempdir) / "serial")

        # Parallel first: its workers must not inherit memo tables
        # warmed by the serial phase (the pool forks from this process).
        parallel_seconds, parallel = timed(grid, PARALLEL_JOBS,
                                           parallel_store)
        serial_seconds, serial = timed(grid, 1, serial_store)
        warm_seconds, warm = timed(grid, PARALLEL_JOBS, parallel_store)

    identical = all(render(serial.rows, fmt) == render(parallel.rows, fmt)
                    and render(serial.rows, fmt) == render(warm.rows, fmt)
                    for fmt in ("json", "csv", "md"))

    return {
        "points": points,
        "jobs": PARALLEL_JOBS,
        "cpu_count": multiprocessing.cpu_count(),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "warm_seconds": warm_seconds,
        "points_per_second_serial": points / serial_seconds,
        "points_per_second_parallel": points / parallel_seconds,
        "points_per_second_warm": points / warm_seconds,
        "speedup_parallel_vs_serial": serial_seconds / parallel_seconds,
        "speedup_warm_vs_cold": parallel_seconds / warm_seconds,
        "serial_computed": serial.computed,
        "parallel_computed": parallel.computed,
        "warm_computed": warm.computed,
        "warm_cached": warm.cached,
        "reports_identical_serial_parallel_warm": identical,
    }


def _check_parallel_speedup(result: dict) -> None:
    if result["cpu_count"] < PARALLEL_JOBS:
        # The old script's silent degradation, made loud: the claim is
        # recorded as skipped with the reason, never just dropped.
        raise CheckSkipped(
            f"cpu_count={result['cpu_count']} < {PARALLEL_JOBS}: the "
            f"parallel-speedup floor needs {PARALLEL_JOBS} CPUs")
    _require(result["speedup_parallel_vs_serial"] >= SPEEDUP_FLOOR,
             f"jobs={PARALLEL_JOBS} must deliver >= {SPEEDUP_FLOOR}x "
             f"serial points/sec, got "
             f"{result['speedup_parallel_vs_serial']:.2f}x")


register(BenchCase(
    name="sweep_throughput",
    title="Sweep throughput (full Tables 1-2 search grid)",
    tier="full",
    run=run_sweep_throughput,
    metrics=(
        Metric("points", "points"),
        Metric("serial_computed", "points"),
        Metric("parallel_computed", "points"),
        Metric("warm_computed", "points"),
        Metric("warm_cached", "points"),
        Metric("serial_seconds", "s", direction="lower", measured=True),
        Metric("parallel_seconds", "s", direction="lower", measured=True),
        Metric("warm_seconds", "s", direction="lower", measured=True),
        Metric("points_per_second_serial", "points/s", direction="higher",
               measured=True),
        Metric("points_per_second_parallel", "points/s", direction="higher",
               measured=True),
        Metric("points_per_second_warm", "points/s", direction="higher",
               measured=True),
        Metric("speedup_parallel_vs_serial", "x", direction="higher",
               measured=True),
        Metric("speedup_warm_vs_cold", "x", direction="higher",
               measured=True),
    ),
    checks=(
        Check("sharding_deterministic", lambda r: _require(
            r["reports_identical_serial_parallel_warm"],
            "serial, parallel and warm reports must be byte-identical")),
        Check("warm_store_sound", lambda r: _require(
            r["warm_computed"] == 0 and r["warm_cached"] == r["points"],
            "a warm rerun must serve every point from the store")),
        Check("parallel_speedup_floor", _check_parallel_speedup),
    ),
    table=lambda r: (
        ("phase", "seconds", "points/s", "computed"),
        [("serial cold", f"{r['serial_seconds']:.2f}",
          f"{r['points_per_second_serial']:.1f}", r["serial_computed"]),
         (f"jobs={r['jobs']} cold", f"{r['parallel_seconds']:.2f}",
          f"{r['points_per_second_parallel']:.1f}", r["parallel_computed"]),
         (f"jobs={r['jobs']} warm", f"{r['warm_seconds']:.2f}",
          f"{r['points_per_second_warm']:.1f}", r["warm_computed"])]),
))
