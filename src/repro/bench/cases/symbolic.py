"""Symbolic engine: the state-explosion crossover.

The headline claim of the symbolic core: past ~10^5 states the explicit
engines hit the wall the paper describes, while the BDD engine's cost
follows the *structure* of the reachable set.  This case pins that
crossover on ``micropipeline_chain_6`` -- 2^20 = 1,048,576 reachable
states:

* the packed explicit engine must exceed a 250k-state budget with a
  structured :class:`~repro.explore.budget.BudgetExceedance`, and
* the full symbolic USC/CSC check (reachability *and* the coding
  self-product) must complete on the same instance inside a 2M-node
  BDD budget, with exact, hash-seed-independent state/pair/node counts.

A states-vs-seconds curve over smaller family instances (both engines,
same machine, same run) records where the crossover sits on this
hardware, and a parity leg byte-compares the canonical coding payloads
of the explicit and symbolic engines on instances small enough to
enumerate.
"""

from __future__ import annotations

import json

from ..registry import BenchCase, Check, CheckFailed, Metric, register

#: The crossover instance and its closed-form state count.
CROSSOVER = "micropipeline_chain_6"
CROSSOVER_STATES = 2 ** (3 * 6 + 2)
#: The budget the explicit engine must exceed (states)...
BUDGET_STATES = 250_000
#: ...and the one the symbolic coding check must stay inside (BDD nodes).
BUDGET_NODES = 2_000_000

#: The states-vs-seconds curve: (family member, closed-form states).
CURVE = (
    ("counter_4", 2 ** 9),
    ("fifo_chain_6", 3 ** 7 + 1),
    ("micropipeline_chain_4", 2 ** 14),
)

#: Instances small enough to byte-compare explicit vs symbolic payloads.
PARITY = ("fifo_chain_2", "counter_2", "arbiter_tree_2")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CheckFailed(message)


def run_symbolic_scaling(context) -> dict:
    from repro.explore.budget import ExplorationBudget
    from repro.sg.generator import GenerationBudgetError, generate_sg
    from repro.sg.properties import check_coding
    from repro.specs.families import load_family
    from repro.symbolic import encode_stg, symbolic_reach

    # -- crossover leg: explicit wall vs symbolic completion ----------
    crossover = load_family(CROSSOVER)

    def explicit_wall():
        try:
            generate_sg(crossover,
                        budget=ExplorationBudget(max_states=BUDGET_STATES))
        except GenerationBudgetError as error:
            return error.exceedance
        raise CheckFailed(
            f"the packed engine cleared {CROSSOVER} inside "
            f"{BUDGET_STATES} states; the crossover instance must be "
            "beyond the explicit budget")

    packed_seconds, exceedance = context.best_of(explicit_wall, rounds=1)
    symbolic_seconds, coding = context.best_of(
        lambda: check_coding(
            crossover, engine="symbolic",
            budget=ExplorationBudget(max_nodes=BUDGET_NODES)),
        rounds=1)

    # -- curve leg: both engines over the family ladder ----------------
    curve = []
    for member, want_states in CURVE:
        stg = load_family(member)
        explicit_seconds, sg = context.best_of(
            lambda stg=stg: generate_sg(stg), rounds=1)
        reach_seconds, run = context.best_of(
            lambda stg=stg: symbolic_reach(encode_stg(stg)), rounds=1)
        curve.append({
            "family": member,
            "states": want_states,
            "explicit_states": len(sg),
            "symbolic_states": run.state_count,
            "explicit_seconds": explicit_seconds,
            "symbolic_seconds": reach_seconds,
            "symbolic_nodes": run.node_count,
            "symbolic_levels": run.levels,
        })

    # -- parity leg: canonical coding payloads byte-compare ------------
    parity_ok = True
    for member in PARITY:
        stg = load_family(member)
        explicit = json.dumps(
            check_coding(stg, engine="auto").to_payload(), sort_keys=True)
        symbolic = json.dumps(
            check_coding(stg, engine="symbolic").to_payload(),
            sort_keys=True)
        if explicit != symbolic:
            parity_ok = False

    return {
        "crossover": CROSSOVER,
        "budget_states": BUDGET_STATES,
        "budget_nodes": BUDGET_NODES,
        "exceedance": exceedance.to_payload(),
        "packed_seconds": packed_seconds,
        "crossover_states": coding.states,
        "crossover_usc_pairs": coding.usc_pair_count,
        "crossover_csc_conflicts": coding.csc_conflict_count,
        "crossover_usc": coding.usc,
        "crossover_csc": coding.csc,
        "crossover_consistent": coding.consistent,
        "crossover_truncated": coding.truncated,
        "crossover_nodes": coding.bdd_nodes,
        "symbolic_seconds": symbolic_seconds,
        "symbolic_states_per_sec": (coding.states / symbolic_seconds
                                    if symbolic_seconds else 0.0),
        "curve": curve,
        "parity_ok": parity_ok,
        "parity_members": list(PARITY),
    }


register(BenchCase(
    name="symbolic_scaling",
    title="Symbolic engine (BDD crossover past the state-explosion wall)",
    tier="quick",
    run=run_symbolic_scaling,
    metrics=(
        Metric("crossover_states", "states"),
        Metric("crossover_usc_pairs", "pairs"),
        Metric("crossover_csc_conflicts", "conflicts"),
        Metric("crossover_nodes", "nodes"),
        Metric("symbolic_seconds", "s", direction="lower", measured=True),
        Metric("packed_seconds", "s", direction="lower", measured=True),
        Metric("symbolic_states_per_sec", "states/s", direction="higher",
               measured=True),
    ),
    checks=(
        Check("crossover_holds", lambda r: _require(
            r["exceedance"]["resource"] == "states"
            and r["exceedance"]["limit"] == BUDGET_STATES
            and r["crossover_states"] == CROSSOVER_STATES
            and r["crossover_nodes"] <= BUDGET_NODES,
            f"the explicit engine must exceed {BUDGET_STATES} states "
            f"while the symbolic check covers all {CROSSOVER_STATES} "
            f"inside {BUDGET_NODES} nodes; got "
            f"{r['exceedance']}, {r['crossover_states']} states, "
            f"{r['crossover_nodes']} nodes")),
        Check("exceedance_is_structured", lambda r: _require(
            {"resource", "limit", "states", "arcs", "seconds", "level"}
            <= set(r["exceedance"]),
            f"budget exceedance must carry the structured payload, "
            f"got {sorted(r['exceedance'])}")),
        Check("closed_forms", lambda r: _require(
            all(row["explicit_states"] == row["states"]
                and row["symbolic_states"] == row["states"]
                for row in r["curve"]),
            "every curve instance must match its closed-form state "
            "count on both engines")),
        Check("verdict_parity", lambda r: _require(
            r["parity_ok"],
            f"explicit and symbolic coding payloads must byte-match on "
            f"{r['parity_members']}")),
    ),
    info_keys=("crossover", "curve", "parity_members"),
    table=lambda r: (
        ("instance", "states", "explicit", "symbolic"),
        [(row["family"], f"{row['states']:,}",
          f"{row['explicit_seconds']:.3f}s",
          f"{row['symbolic_seconds']:.3f}s") for row in r["curve"]]
        + [(r["crossover"], f"{r['crossover_states']:,}",
            f">{r['packed_seconds']:.1f}s (budget)",
            f"{r['symbolic_seconds']:.3f}s")]),
))
