"""The benchmark harness: timing, env capture, the BENCH report.

One call -- :func:`run_cases` -- runs a selection of registry cases and
produces the versioned BENCH report: a plain dict with a captured
environment (git revision, python version, cpu count, hash seed), one
entry per case (metric records, check outcomes, an explicit
``skipped_checks`` list, wall seconds) and a schema version.
:func:`to_json_bytes` renders it with sorted keys; the *canonical
payload* (:func:`canonical_payload`) strips everything non-deterministic
-- the environment and every ``measured`` metric -- so its bytes are
identical across repeated runs and hash seeds, which is what
``tests/test_bench.py`` pins.

The table-printing helpers the 14 ad-hoc benchmark scripts used to copy
out of ``benchmarks/conftest.py`` (``print_table``, ``report_row``) live
here now; the conftest keeps only a pytest fixture shim.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import platform
import subprocess
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..obs.trace import TraceRecorder, recording, summarize
from .registry import BenchCase, CheckFailed, CheckSkipped

__all__ = [
    "BENCH_SCHEMA", "RunContext",
    "print_table", "report_row", "capture_env",
    "run_cases", "run_case", "failed_checks",
    "canonical_payload", "to_json_bytes", "default_bench_name",
]

#: Version of the BENCH file layout.  Bump on incompatible changes; the
#: comparison refuses to diff reports across schema versions.
BENCH_SCHEMA = 1


def print_table(title: str, header: Sequence[str],
                rows: Sequence[tuple]) -> None:
    """Render a paper-style table to stdout (shown with ``pytest -s``)."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(header[i])),
                  max((len(str(row[i])) for row in rows), default=0))
              for i in range(len(header))]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def report_row(report) -> tuple:
    """(name, area, #CSC, cycle, inputs) with an estimate marker."""
    name, area, csc, cycle, inputs = report.row()
    area_text = f"{area}" if report.csc_resolved else f"~{area}"
    return (name, area_text, csc, cycle, inputs)


@dataclass
class RunContext:
    """What a case's ``run`` callable gets from the harness.

    ``best_of`` is the one timing idiom every throughput case shares:
    clear the engine's memo tables, run, keep the best of N rounds
    (quick mode collapses N to 1).
    """

    quick: bool = False
    rounds: int = 3
    warmup: bool = True

    def timing_rounds(self, rounds: Optional[int] = None) -> int:
        if self.quick:
            return 1
        return self.rounds if rounds is None else rounds

    def best_of(self, fn: Callable[[], Any],
                rounds: Optional[int] = None,
                clear_caches: bool = True) -> Tuple[float, Any]:
        """(best seconds, last result) over min-of-N rounds.

        With ``clear_caches`` the rounds time the *cold* path (memo
        tables reset before each).  Without it they time the warm path,
        preceded by one untimed warmup round outside quick mode.
        """
        from repro import engine

        if not clear_caches and self.warmup and not self.quick:
            fn()
        best_time: Optional[float] = None
        result: Any = None
        for _ in range(self.timing_rounds(rounds)):
            if clear_caches:
                engine.clear_caches()
            started = time.perf_counter()
            result = fn()
            elapsed = time.perf_counter() - started
            if best_time is None or elapsed < best_time:
                best_time = elapsed
        return best_time or 0.0, result


def _git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() or "unknown" if out.returncode == 0 else "unknown"


def capture_env() -> Dict[str, Any]:
    """The measurement environment (full report only, never canonical)."""
    return {
        "git_rev": _git_rev(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
        "cpu_count": multiprocessing.cpu_count(),
        "hash_seed": os.environ.get("PYTHONHASHSEED", "random"),
    }


def default_bench_name(env: Optional[Mapping[str, Any]] = None) -> str:
    """``BENCH_<rev>.json`` -- the versioned trajectory file name."""
    rev = (env or capture_env()).get("git_rev", "unknown")
    return f"BENCH_{rev}.json"


def run_case(case: BenchCase, context: Optional[RunContext] = None,
             printer: Optional[Callable[..., None]] = print_table,
             ) -> Dict[str, Any]:
    """Run one case: workload, metrics, checks, optional table.

    Returns the case's report entry.  Check failures do not raise here;
    they are recorded as ``"failed: <message>"`` so one broken case
    cannot hide the metrics of the others -- callers decide via
    :func:`failed_checks`.
    """
    context = context or RunContext()
    recorder = TraceRecorder(meta={"case": case.name})
    started = time.perf_counter()
    with recording(recorder), recorder.span("case:" + case.name):
        result = case.run(context)
    seconds = time.perf_counter() - started

    entry: Dict[str, Any] = {
        "tier": case.tier,
        "title": case.title,
        "seconds": seconds,
        "metrics": {m.name: m.record(result) for m in case.metrics},
        "checks": {},
        "skipped_checks": [],
        # Per-span-name breakdown of the case's trace.  Timing-flavoured
        # like "seconds": canonical_payload copies explicit keys only, so
        # this never reaches the byte-compared canonical projection.
        "trace": {name: {"count": int(totals["count"]),
                         "wall_s": round(totals["wall_s"], 6),
                         "self_s": round(totals["self_s"], 6),
                         "cpu_s": round(totals["cpu_s"], 6)}
                  for name, totals in sorted(
                      summarize(recorder.to_tree()).items())},
    }
    if case.info_keys:
        entry["info"] = {key: result[key] for key in case.info_keys}
    for check in case.checks:
        try:
            check.run(result)
        except CheckSkipped as skip:
            # Environment-dependent caps are recorded, never silent.
            entry["checks"][check.name] = f"skipped: {skip}"
            entry["skipped_checks"].append(f"{check.name}: {skip}")
        except AssertionError as failure:
            message = str(failure) or failure.__class__.__name__
            entry["checks"][check.name] = f"failed: {message}"
        else:
            entry["checks"][check.name] = "passed"

    if printer is not None and case.table is not None:
        header, rows = case.table(result)
        printer(case.title, header, rows)
    return entry


def run_cases(cases: Sequence[BenchCase],
              quick: bool = False,
              rounds: int = 3,
              printer: Optional[Callable[..., None]] = print_table,
              ) -> Dict[str, Any]:
    """Run a case selection into one BENCH report dict."""
    context = RunContext(quick=quick, rounds=1 if quick else rounds)
    report: Dict[str, Any] = {
        "bench_schema": BENCH_SCHEMA,
        "env": capture_env(),
        "cases": {},
    }
    for case in cases:
        report["cases"][case.name] = run_case(case, context, printer=printer)
    return report


def failed_checks(report: Mapping[str, Any]) -> List[str]:
    """``case/check: message`` for every failed check in a report."""
    failures = []
    for name, entry in sorted(report.get("cases", {}).items()):
        for check, outcome in sorted(entry.get("checks", {}).items()):
            if outcome.startswith("failed"):
                failures.append(f"{name}/{check}: {outcome}")
    return failures


def skipped_checks(report: Mapping[str, Any]) -> List[str]:
    """``case/check: reason`` for every skipped check in a report."""
    skips = []
    for name, entry in sorted(report.get("cases", {}).items()):
        for skip in entry.get("skipped_checks", []):
            skips.append(f"{name}/{skip}")
    return skips


def canonical_payload(report: Mapping[str, Any]) -> Dict[str, Any]:
    """The deterministic projection of a BENCH report.

    Drops the environment, per-case wall seconds, the per-stage trace
    breakdown and every ``measured`` metric; what remains (exact metrics,
    check outcomes, skip reasons, info) is byte-identical across repeated
    runs and hash seeds on one machine.
    """
    cases: Dict[str, Any] = {}
    for name, entry in report.get("cases", {}).items():
        canonical: Dict[str, Any] = {
            "tier": entry["tier"],
            "metrics": {
                metric: {key: value for key, value in record.items()}
                for metric, record in entry.get("metrics", {}).items()
                if not record.get("measured")
            },
            "checks": entry.get("checks", {}),
            "skipped_checks": entry.get("skipped_checks", []),
        }
        if "info" in entry:
            canonical["info"] = entry["info"]
        cases[name] = canonical
    return {"bench_schema": report.get("bench_schema"), "cases": cases}


def to_json_bytes(payload: Mapping[str, Any]) -> bytes:
    """Deterministic sorted-key JSON rendering (trailing newline)."""
    return (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()
