"""Baseline comparison: classify metric deltas, render a verdict.

``repro bench --against BENCH_baseline.json`` diffs the fresh report
against a committed baseline:

* **exact** metrics (deterministic counts, areas, flags) must match,
  modulo an explicit per-metric tolerance; a change in the metric's good
  direction is an *improvement*, anything else a *regression* (neutral
  metrics treat any drift as a regression -- regenerate the baseline
  when a change is intentional).
* **measured, gated** metrics (machine-relative ratios such as warm
  speedups) regress when they move beyond the tolerance in the bad
  direction; improvements never fail.
* **measured, ungated** metrics (raw seconds, rates) are *tracked*:
  reported for the trajectory, never a failure -- absolute wall times do
  not transfer between machines, so gating them would make CI lie.
* metrics present in the baseline but absent from the fresh report are
  *missing* (a failure: a refactor silently dropped coverage); baseline
  cases that were not selected this run (tier filters) are listed as
  not-run, which is not a failure.

The result is machine-readable (:meth:`Comparison.to_dict`) and renders
as a markdown table (:meth:`Comparison.to_markdown`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

__all__ = ["DEFAULT_TOLERANCE", "MetricDelta", "Comparison", "compare"]

#: Default relative tolerance for gated measured metrics.  Generous on
#: purpose: CI machines are noisy, and the exact metrics plus each
#: case's checks carry the precise claims.
DEFAULT_TOLERANCE = 0.5

_STATUSES = ("ok", "improvement", "regression", "tracked", "missing", "new")


@dataclass(frozen=True)
class MetricDelta:
    """One metric's classification against the baseline."""

    case: str
    metric: str
    status: str
    baseline: Any = None
    current: Any = None
    unit: str = ""
    direction: str = "neutral"
    rel_change: Optional[float] = None
    tolerance: Optional[float] = None
    note: str = ""

    def row(self) -> tuple:
        def fmt(value: Any) -> str:
            if isinstance(value, bool) or value is None:
                return str(value)
            if isinstance(value, float):
                return f"{value:.4g}"
            return str(value)

        change = ("" if self.rel_change is None
                  else f"{self.rel_change * 100:+.1f}%")
        return (self.case, self.metric, fmt(self.baseline),
                fmt(self.current), self.unit, change, self.status)


@dataclass
class Comparison:
    """Every delta plus the verdict of one baseline comparison."""

    deltas: List[MetricDelta] = field(default_factory=list)
    cases_not_run: List[str] = field(default_factory=list)
    tolerance: float = DEFAULT_TOLERANCE

    def with_status(self, status: str) -> List[MetricDelta]:
        return [delta for delta in self.deltas if delta.status == status]

    @property
    def regressions(self) -> List[MetricDelta]:
        return self.with_status("regression")

    @property
    def missing(self) -> List[MetricDelta]:
        return self.with_status("missing")

    @property
    def improvements(self) -> List[MetricDelta]:
        return self.with_status("improvement")

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing

    @property
    def verdict(self) -> str:
        return "pass" if self.ok else "fail"

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable verdict (what the CI gate archives)."""
        return {
            "verdict": self.verdict,
            "tolerance": self.tolerance,
            "counts": {status: len(self.with_status(status))
                       for status in _STATUSES},
            "cases_not_run": list(self.cases_not_run),
            "deltas": [{
                "case": d.case, "metric": d.metric, "status": d.status,
                "baseline": d.baseline, "current": d.current,
                "unit": d.unit, "direction": d.direction,
                "rel_change": d.rel_change, "tolerance": d.tolerance,
                "note": d.note,
            } for d in self.deltas],
        }

    def to_markdown(self, show_ok: bool = False) -> str:
        """The human-facing verdict table.

        By default only the interesting rows (anything not plain
        ``ok``/``tracked``) appear; ``show_ok`` renders everything.
        """
        lines = [f"## Bench comparison: **{self.verdict}** "
                 f"(tolerance {self.tolerance:.0%})", ""]
        shown = [d for d in self.deltas
                 if show_ok or d.status not in ("ok", "tracked")]
        if shown:
            lines.append("| case | metric | baseline | current | unit "
                         "| change | status |")
            lines.append("| --- | --- | --- | --- | --- | --- | --- |")
            for delta in shown:
                lines.append("| " + " | ".join(str(cell)
                                               for cell in delta.row()) + " |")
            lines.append("")
        counts = ", ".join(f"{len(self.with_status(s))} {s}"
                           for s in _STATUSES if self.with_status(s))
        lines.append(f"{len(self.deltas)} metrics compared: {counts or 'none'}.")
        if self.cases_not_run:
            lines.append(f"Baseline cases not run this time: "
                         f"{', '.join(self.cases_not_run)}.")
        return "\n".join(lines) + "\n"


def _numeric(value: Any) -> Optional[float]:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    return None


def _classify(case: str, name: str, base: Mapping[str, Any],
              cur: Mapping[str, Any], default_tol: float) -> MetricDelta:
    direction = cur.get("direction", base.get("direction", "neutral"))
    unit = cur.get("unit", base.get("unit", ""))
    measured = bool(cur.get("measured", base.get("measured")))
    gated = bool(cur.get("gated", not measured))
    base_value, cur_value = base.get("value"), cur.get("value")
    tolerance = cur.get("tolerance", base.get("tolerance"))
    if tolerance is None:
        tolerance = default_tol if measured else 0.0

    common = dict(case=case, metric=name, baseline=base_value,
                  current=cur_value, unit=unit, direction=direction,
                  tolerance=tolerance)

    base_num, cur_num = _numeric(base_value), _numeric(cur_value)
    if base_num is None or cur_num is None:
        # Non-numeric values (strings, lists in info-style metrics):
        # equality or bust.
        if base_value == cur_value:
            return MetricDelta(status="ok", **common)
        return MetricDelta(status="regression",
                           note="non-numeric value changed", **common)

    rel = None
    if base_num != 0:
        rel = (cur_num - base_num) / abs(base_num)
    common["rel_change"] = rel

    if not gated:
        return MetricDelta(status="tracked", **common)

    if rel is None:  # baseline of exactly zero
        within = abs(cur_num - base_num) <= tolerance
        worse = ((direction == "higher" and cur_num < base_num)
                 or (direction == "lower" and cur_num > base_num)
                 or (direction == "neutral" and cur_num != base_num))
        if within or cur_num == base_num:
            return MetricDelta(status="ok", **common)
        return MetricDelta(status="regression" if worse else "improvement",
                           **common)

    if abs(rel) <= tolerance:
        return MetricDelta(status="ok", **common)
    better = ((direction == "higher" and rel > 0)
              or (direction == "lower" and rel < 0))
    return MetricDelta(status="improvement" if better else "regression",
                       **common)


def compare(current: Mapping[str, Any], baseline: Mapping[str, Any],
            tolerance: Optional[float] = None) -> Comparison:
    """Diff a fresh BENCH report against a baseline BENCH report."""
    if current.get("bench_schema") != baseline.get("bench_schema"):
        raise ValueError(
            f"BENCH schema mismatch: current "
            f"{current.get('bench_schema')!r} vs baseline "
            f"{baseline.get('bench_schema')!r}; regenerate the baseline")
    result = Comparison(tolerance=DEFAULT_TOLERANCE
                        if tolerance is None else tolerance)
    current_cases = current.get("cases", {})
    baseline_cases = baseline.get("cases", {})
    for case_name in baseline_cases:
        if case_name not in current_cases:
            result.cases_not_run.append(case_name)
            continue
        base_metrics = baseline_cases[case_name].get("metrics", {})
        cur_metrics = current_cases[case_name].get("metrics", {})
        for name, base_record in base_metrics.items():
            if name not in cur_metrics:
                result.deltas.append(MetricDelta(
                    case=case_name, metric=name, status="missing",
                    baseline=base_record.get("value"),
                    unit=base_record.get("unit", ""),
                    direction=base_record.get("direction", "neutral"),
                    note="metric dropped from the registry"))
                continue
            result.deltas.append(_classify(
                case_name, name, base_record, cur_metrics[name],
                result.tolerance))
        for name, cur_record in cur_metrics.items():
            if name not in base_metrics:
                result.deltas.append(MetricDelta(
                    case=case_name, metric=name, status="new",
                    current=cur_record.get("value"),
                    unit=cur_record.get("unit", ""),
                    direction=cur_record.get("direction", "neutral"),
                    note="not in baseline"))
    return result
