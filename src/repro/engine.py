"""Global switches for the packed-bitvector engine.

The hot exploration loop leans on memo tables keyed by packed integer
minterm sets (see :mod:`repro.logic.minimize` and
:mod:`repro.logic.complexity`).  Pure caches must never change results, so
the scaling benchmark runs the same workload with the caches enabled and
disabled and asserts byte-identical synthesis outputs; this module is the
single point of control for that ablation.

Caches register themselves here (optionally under a name) so that
disabling the engine also clears them (a stale entry surviving a toggle
would defeat the comparison) and so ``repro cache stats`` can report the
in-process memo tables next to the on-disk artifact store.
"""

from __future__ import annotations

from typing import Dict, List, MutableMapping, Optional, Tuple

_packed_memo_enabled = True
_registered_caches: List[Tuple[str, MutableMapping]] = []


def register_cache(cache: MutableMapping,
                   name: Optional[str] = None) -> MutableMapping:
    """Register a memo table so toggling the engine clears it; returns it.

    ``name`` labels the table in :func:`cache_stats`; anonymous tables get
    a positional label.
    """
    label = name or f"cache-{len(_registered_caches)}"
    _registered_caches.append((label, cache))
    return cache


def packed_memo_enabled() -> bool:
    return _packed_memo_enabled


def set_packed_memo(enabled: bool) -> None:
    """Enable or disable every registered memo table (clearing them all)."""
    global _packed_memo_enabled
    _packed_memo_enabled = bool(enabled)
    clear_caches()


def clear_caches() -> None:
    """Drop all memoized results (used between benchmark phases)."""
    for _, cache in _registered_caches:
        cache.clear()


def cache_stats() -> Dict[str, int]:
    """Entry count of every registered memo table, by label."""
    return {label: len(cache) for label, cache in _registered_caches}
