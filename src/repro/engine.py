"""Global switches for the packed-bitvector engine.

The hot exploration loop leans on memo tables keyed by packed integer
minterm sets (see :mod:`repro.logic.minimize` and
:mod:`repro.logic.complexity`).  Pure caches must never change results, so
the scaling benchmark runs the same workload with the caches enabled and
disabled and asserts byte-identical synthesis outputs; this module is the
single point of control for that ablation.

Caches register themselves here so that disabling the engine also clears
them (a stale entry surviving a toggle would defeat the comparison).
"""

from __future__ import annotations

from typing import Dict, List

_packed_memo_enabled = True
_registered_caches: List[Dict] = []


def register_cache(cache: Dict) -> Dict:
    """Register a memo dict so toggling the engine clears it; returns it."""
    _registered_caches.append(cache)
    return cache


def packed_memo_enabled() -> bool:
    return _packed_memo_enabled


def set_packed_memo(enabled: bool) -> None:
    """Enable or disable every registered memo table (clearing them all)."""
    global _packed_memo_enabled
    _packed_memo_enabled = bool(enabled)
    clear_caches()


def clear_caches() -> None:
    """Drop all memoized results (used between benchmark phases)."""
    for cache in _registered_caches:
        cache.clear()
