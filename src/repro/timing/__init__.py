"""Delay models and critical-cycle extraction by timed simulation."""
