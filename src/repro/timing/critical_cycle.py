"""Critical-cycle extraction by exact timed simulation.

The performance figures in Tables 1 and 2 ("cr.cycle" and "inp.events") are
the length of the critical cycle of the timed behaviour and the number of
input events on it.  For a deterministic delay assignment the timed
execution of a speed-independent SG is eventually periodic; we simulate with
exact rational time, detect the recurrent timed configuration, and report
the period plus the events fired within one period.

Semantics: every enabled event owns a countdown timer initialised to its
delay when the event becomes enabled (persistency keeps timers alive across
other firings); the event with the smallest residual fires next, ties broken
by label order so choice-free specifications are fully deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Set, Tuple

from ..petri.stg import SignalKind
from ..sg.graph import State, StateGraph
from .delays import DelayModel


class TimingError(Exception):
    """Raised when simulation cannot proceed (deadlock) or does not settle."""


@dataclass(frozen=True)
class CycleReport:
    """The steady-state cycle of the timed execution."""

    period: Fraction
    events: Tuple[str, ...]
    input_events: Tuple[str, ...]
    transient_steps: int

    @property
    def cycle_time(self) -> float:
        return float(self.period)

    @property
    def input_event_count(self) -> int:
        return len(self.input_events)

    @property
    def event_count(self) -> int:
        return len(self.events)


def critical_cycle(sg: StateGraph, delays: DelayModel,
                   max_steps: int = 100_000) -> CycleReport:
    """Simulate the timed SG until periodic; return the critical cycle."""
    state = sg.initial
    if state is None or state not in sg:
        raise TimingError("state graph has no initial state")
    timers: Dict[str, Fraction] = {
        label: delays.delay_of(sg, label) for label in sg.enabled(state)}
    time = Fraction(0)
    seen: Dict[Tuple[State, Tuple[Tuple[str, Fraction], ...]], Tuple[int, Fraction, int]] = {}
    trace: List[Tuple[str, bool]] = []  # (label, is_input)

    for step in range(max_steps):
        config = (state, tuple(sorted(timers.items())))
        if config in seen:
            first_step, first_time, first_len = seen[config]
            period = time - first_time
            cycle = trace[first_len:]
            events = tuple(label for label, _ in cycle)
            inputs = tuple(label for label, is_input in cycle if is_input)
            return CycleReport(period=period, events=events,
                               input_events=inputs, transient_steps=first_step)
        seen[config] = (step, time, len(trace))

        if not timers:
            raise TimingError(f"deadlock reached at state {state!r}")
        fire_label = min(timers, key=lambda label: (timers[label], label))
        advance = timers[fire_label]
        time += advance
        next_state = sg.target(state, fire_label)
        assert next_state is not None
        survivors: Dict[str, Fraction] = {}
        next_enabled = set(sg.enabled(next_state))
        for label, remaining in timers.items():
            if label == fire_label:
                continue
            if label in next_enabled:
                survivors[label] = remaining - advance
        for label in next_enabled:
            if label not in survivors:
                survivors[label] = delays.delay_of(sg, label)
        trace.append((fire_label, sg.is_input_label(fire_label)))
        state = next_state
        timers = survivors

    raise TimingError(f"no periodic behaviour within {max_steps} steps")


def cycle_time(sg: StateGraph, delays: DelayModel) -> float:
    """Shorthand: just the critical-cycle period as a float."""
    return critical_cycle(sg, delays).cycle_time


def throughput(sg: StateGraph, delays: DelayModel,
               per_label: Optional[str] = None) -> float:
    """Firings of ``per_label`` (or all events) per time unit in steady state."""
    report = critical_cycle(sg, delays)
    if report.period == 0:
        raise TimingError("zero-period cycle")
    if per_label is None:
        return report.event_count / float(report.period)
    count = sum(1 for label in report.events if label == per_label)
    return count / float(report.period)
