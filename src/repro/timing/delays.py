"""Delay models for performance estimation.

Table 1 of the paper assumes "all internal and output events have a delay of
1 time unit, and all input events have a delay of 2 time units"; the PAR
study uses combinational gate = 1, sequential gate = 1.5, input event = 3.
Both are instances of an event-delay model: a mapping from SG arc labels to
firing delays.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, Optional, Union

from ..petri.stg import SignalKind
from ..sg.graph import StateGraph

Number = Union[int, float, Fraction]


def _to_fraction(value: Number) -> Fraction:
    return value if isinstance(value, Fraction) else Fraction(value).limit_denominator(1000)


@dataclass(frozen=True)
class DelayModel:
    """Per-kind event delays; ``overrides`` wins on specific signals."""

    input_delay: Fraction
    output_delay: Fraction
    internal_delay: Fraction
    overrides: tuple = ()  # tuple of (signal, Fraction) pairs, hashable

    @staticmethod
    def by_kind(input_delay: Number = 2, output_delay: Number = 1,
                internal_delay: Number = 1,
                overrides: Optional[Dict[str, Number]] = None) -> "DelayModel":
        """Build a model from per-kind delays plus per-signal overrides."""
        return DelayModel(
            _to_fraction(input_delay), _to_fraction(output_delay),
            _to_fraction(internal_delay),
            tuple(sorted((s, _to_fraction(d)) for s, d in (overrides or {}).items())))

    def delay_of(self, sg: StateGraph, label: str) -> Fraction:
        """The delay of event ``label`` in ``sg`` (overrides win)."""
        signal = sg.events[label].signal
        for name, delay in self.overrides:
            if name == signal:
                return delay
        kind = sg.kinds[signal]
        if kind == SignalKind.INPUT:
            return self.input_delay
        if kind == SignalKind.OUTPUT:
            return self.output_delay
        return self.internal_delay


#: The delay model of Table 1: inputs 2, outputs/internals 1.
TABLE1_DELAYS = DelayModel.by_kind(input_delay=2, output_delay=1, internal_delay=1)


def gate_level_delays(sg: StateGraph, sequential_signals: set,
                      input_delay: Number = 3, comb_delay: Number = 1,
                      seq_delay: Number = Fraction(3, 2)) -> DelayModel:
    """The PAR-study model: inputs 3, C-element outputs 1.5, others 1.

    ``sequential_signals`` lists the non-input signals implemented with a
    sequential cell (as reported by circuit synthesis).
    """
    overrides: Dict[str, Number] = {}
    for signal, kind in sg.kinds.items():
        if kind == SignalKind.INPUT:
            continue
        overrides[signal] = seq_delay if signal in sequential_signals else comb_delay
    return DelayModel.by_kind(input_delay=input_delay, output_delay=comb_delay,
                              internal_delay=comb_delay, overrides=overrides)
