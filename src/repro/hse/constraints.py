"""Interface and concurrency constraints.

Interface constraints fix the interleaving of events on a channel ("never
reset the requesting signal before receiving the acknowledgment", Section 3)
and are enforced structurally: a cyclic chain of places threads the listed
events in order.  Concurrency constraints (``Keep_Conc`` in Fig. 9) are
pairs of events whose concurrency the reduction must not destroy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..petri.stg import STG, SignalEvent
from ..sg.graph import StateGraph


@dataclass(frozen=True)
class InterfaceConstraint:
    """A cyclic event order, e.g. ``[li+, lo+, li-, lo-]`` for a passive port.

    ``marked_before`` is the index of the event that is enabled first: the
    token of the constraint cycle initially sits on the place feeding it.
    """

    order: Tuple[str, ...]
    marked_before: int = 0

    @staticmethod
    def passive(channel: str) -> "InterfaceConstraint":
        """Request in, acknowledge out: ``[ai+, ao+, ai-, ao-]``."""
        return InterfaceConstraint((f"{channel}i+", f"{channel}o+",
                                    f"{channel}i-", f"{channel}o-"))

    @staticmethod
    def active(channel: str) -> "InterfaceConstraint":
        """Request out, acknowledge in: ``[ao+, ai+, ao-, ai-]``."""
        return InterfaceConstraint((f"{channel}o+", f"{channel}i+",
                                    f"{channel}o-", f"{channel}i-"))


def apply_interface_constraint(stg: STG, constraint: InterfaceConstraint) -> None:
    """Thread the constraint's events with a marked cycle of places.

    Every instance of each base event is connected: a place sits between
    consecutive order positions, fed by all instances of the earlier event
    and feeding all instances of the later one.
    """
    order = constraint.order
    count = len(order)
    instance_lists: List[List[str]] = []
    for text in order:
        base = SignalEvent.parse(text)
        instances = stg.transitions_of_event(base)
        if not instances:
            raise ValueError(f"constraint event {text!r} not present in STG {stg.name!r}")
        instance_lists.append(instances)
    for position in range(count):
        nxt = (position + 1) % count
        place = stg.net.fresh_place_name(f"ic_{order[position]}_{order[nxt]}_")
        stg.net.add_place(place)
        for transition in instance_lists[position]:
            stg.net.add_arc(transition, place)
        for transition in instance_lists[nxt]:
            stg.net.add_arc(place, transition)
        if nxt == constraint.marked_before % count:
            stg.mark(place)


NormalisedPair = FrozenSet[str]


def normalise_keep_conc(sg: StateGraph,
                        pairs: Iterable[Tuple[str, str]]) -> Set[NormalisedPair]:
    """Expand ``Keep_Conc`` pairs into label pairs of the SG.

    Each element of a pair may be a full label (``li-``), a base event
    (expands to all instances) or a bare signal name (expands to all labels
    of that signal).  The result is a set of unordered label pairs.
    """
    def expand(item: str) -> List[str]:
        if item in sg.events:
            return [item]
        by_event = [label for label, event in sg.events.items()
                    if str(event.base) == item]
        if by_event:
            return by_event
        by_signal = sg.labels_of_signal(item)
        if by_signal:
            return by_signal
        raise ValueError(f"Keep_Conc item {item!r} matches no event of {sg.name!r}")

    result: Set[NormalisedPair] = set()
    for first, second in pairs:
        for label_a in expand(first):
            for label_b in expand(second):
                if label_a != label_b:
                    result.add(frozenset((label_a, label_b)))
    return result
