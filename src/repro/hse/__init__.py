"""Partial specifications and handshake expansion (2-phase and 4-phase)."""
