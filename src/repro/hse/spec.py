"""Partial specifications.

The input to the flow (Section 1 of the paper): a behaviour described with

* **channel actions** ``a?`` / ``a!`` -- abstract communication events on a
  channel ``a``, later refined into handshakes on the wire pair
  ``(a_i, a_o)``;
* **partially specified signals** -- only the functional (rising) pulses of
  a signal are given, written ``b``; the return-to-zero event is left to the
  tool;
* **fully specified signals** -- ordinary ``c+ / c-`` transitions.

A :class:`PartialSpec` is a Petri net over these abstract events plus the
declarations needed by expansion (channel roles, signal kinds).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..petri.net import PetriNet, PetriNetError
from ..petri.stg import Direction, SignalEvent, SignalKind


class ChannelRole(Enum):
    """Handshake role of a channel port, fixing the interface constraint.

    PASSIVE ports receive the request (``[ai+, ao+, ai-, ao-]``), ACTIVE
    ports emit it (``[ao+, ai+, ao-, ai-]``); FREE ports get no interface
    constraint, yielding the unconstrained maximal-concurrency expansion of
    Fig. 2.e.
    """

    PASSIVE = "passive"
    ACTIVE = "active"
    FREE = "free"


@dataclass(frozen=True)
class ChannelAction:
    """``a?`` (input action) or ``a!`` (output action) on channel ``a``."""

    channel: str
    kind: str  # "?" or "!"
    instance: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("?", "!"):
            raise ValueError(f"channel action kind must be ? or !: {self.kind!r}")

    @property
    def is_input(self) -> bool:
        return self.kind == "?"

    def __str__(self) -> str:
        suffix = f"/{self.instance}" if self.instance else ""
        return f"{self.channel}{self.kind}{suffix}"


@dataclass(frozen=True)
class PartialPulse:
    """A functional pulse of a partially specified signal (rising edge)."""

    signal: str
    instance: int = 0

    def __str__(self) -> str:
        suffix = f"/{self.instance}" if self.instance else ""
        return f"{self.signal}{suffix}"


AbstractEvent = Union[ChannelAction, PartialPulse, SignalEvent]

_ACTION_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)([?!])(?:/(\d+))?$")
_PULSE_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)(?:/(\d+))?$")


class PartialSpec:
    """A partially specified behaviour over abstract events."""

    def __init__(self, name: str = "spec") -> None:
        self.name = name
        self.net = PetriNet(name)
        self.channels: Dict[str, ChannelRole] = {}
        self.partial_signals: Dict[str, SignalKind] = {}
        self.full_signals: Dict[str, SignalKind] = {}
        self.initial_values: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # declarations
    # ------------------------------------------------------------------
    def declare_channel(self, name: str, role: ChannelRole = ChannelRole.PASSIVE) -> None:
        """Declare a handshake channel with the given role."""
        existing = self.channels.get(name)
        if existing is not None and existing != role:
            raise PetriNetError(f"channel {name!r} already declared as {existing.value}")
        self.channels[name] = role

    def declare_partial_signal(self, name: str,
                               kind: SignalKind = SignalKind.OUTPUT) -> None:
        """Declare a signal whose reset events the tool may place freely."""
        if kind == SignalKind.INPUT:
            raise PetriNetError(
                "partial signals are implemented by the circuit; inputs cannot "
                "have tool-inserted reset events")
        self.partial_signals[name] = kind

    def declare_signal(self, name: str, kind: SignalKind) -> None:
        """Declare a fully specified signal of the given kind."""
        self.full_signals[name] = kind

    # ------------------------------------------------------------------
    # event construction
    # ------------------------------------------------------------------
    def parse_event(self, text: str) -> AbstractEvent:
        """Interpret ``a?``, ``a!``, ``b`` (pulse) or ``c+`` by declarations."""
        text = text.strip()
        action = _ACTION_RE.match(text)
        if action:
            channel, kind, instance = action.groups()
            if channel not in self.channels:
                raise PetriNetError(f"undeclared channel {channel!r}")
            return ChannelAction(channel, kind, int(instance) if instance else 0)
        try:
            event = SignalEvent.parse(text)
        except ValueError:
            event = None
        if event is not None:
            if event.signal not in self.full_signals:
                raise PetriNetError(f"undeclared signal {event.signal!r}")
            return event
        pulse = _PULSE_RE.match(text)
        if pulse:
            signal, instance = pulse.groups()
            if signal not in self.partial_signals:
                raise PetriNetError(f"undeclared partial signal {signal!r}")
            return PartialPulse(signal, int(instance) if instance else 0)
        raise PetriNetError(f"cannot parse abstract event {text!r}")

    def add(self, text: str) -> str:
        """Add a transition for the abstract event; returns the node name."""
        event = self.parse_event(text)
        name = str(event)
        self.net.add_transition(name, event)
        return name

    def add_place(self, name: str, tokens: int = 0) -> str:
        """Add an explicit place; returns its name."""
        self.net.add_place(name, tokens)
        return name

    def connect(self, source: str, target: str) -> None:
        """Add a causal arc between two abstract events (or places)."""
        for node in (source, target):
            if node not in self.net:
                # Lazily create transitions for event-looking names.
                try:
                    self.add(node)
                except PetriNetError:
                    raise PetriNetError(f"unknown node {node!r}") from None
        self.net.add_arc(source, target)

    def chain(self, *nodes: str) -> None:
        """Connect the nodes in sequence."""
        for src, dst in zip(nodes, nodes[1:]):
            self.connect(src, dst)

    def cycle(self, *nodes: str) -> None:
        """Connect the nodes in a closed cycle."""
        self.chain(*nodes)
        if len(nodes) > 1:
            self.connect(nodes[-1], nodes[0])

    def mark(self, *places: str) -> None:
        """Put one token on each named (or implicit ``<a,b>``) place."""
        marking = dict(self.net._initial)
        for place in places:
            if not self.net.has_place(place):
                raise PetriNetError(f"unknown place {place!r}")
            marking[place] = marking.get(place, 0) + 1
        self.net.set_initial(marking)

    def set_initial_value(self, signal: str, value: int) -> None:
        """Fix a signal's initial binary value."""
        if value not in (0, 1):
            raise PetriNetError("initial value must be 0 or 1")
        self.initial_values[signal] = value

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def events(self) -> List[AbstractEvent]:
        """Every declared abstract event."""
        return [t.label for t in self.net.transitions if t.label is not None]

    def wire_names(self, channel: str) -> Tuple[str, str]:
        """The (input, output) wire pair implementing a channel (Fig. 2.b)."""
        if channel not in self.channels:
            raise PetriNetError(f"undeclared channel {channel!r}")
        return f"{channel}i", f"{channel}o"

    def __repr__(self) -> str:
        return (f"PartialSpec({self.name!r}, channels={sorted(self.channels)}, "
                f"partial={sorted(self.partial_signals)}, "
                f"full={sorted(self.full_signals)})")
