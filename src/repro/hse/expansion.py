"""Handshake expansion (Section 4 of the paper).

Transforms a :class:`~repro.hse.spec.PartialSpec` into a fully specified STG
under the chosen phase refinement:

* **2-phase**: channel actions and partial pulses become toggle transitions
  of the corresponding wires (``a?`` -> ``ai~``, ``a!`` -> ``ao~``,
  ``b`` -> ``b~``); no reset events exist.
* **4-phase**: actions become rising transitions (``a?`` -> ``ai+``,
  ``a!`` -> ``ao+``, ``b`` -> ``b+``) and a return-to-zero structure
  (Fig. 5) is attached to every such signal: one falling transition whose
  ``rtz`` place is fed by every rising instance and whose ``rdy`` place
  gates them, giving the reset event **maximum concurrency** with the rest
  of the behaviour.  Interface constraints (channel roles) then restrict the
  interleaving per handshake protocol, reproducing Fig. 2.f.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..petri.net import PetriNetError
from ..petri.stg import STG, Direction, SignalEvent, SignalKind
from .constraints import InterfaceConstraint, apply_interface_constraint
from .spec import AbstractEvent, ChannelAction, ChannelRole, PartialPulse, PartialSpec


class ExpansionError(Exception):
    """Raised when a specification cannot be refined."""


def _declare_wires(spec: PartialSpec, stg: STG) -> None:
    for channel in spec.channels:
        wire_in, wire_out = spec.wire_names(channel)
        stg.declare_signal(wire_in, SignalKind.INPUT)
        stg.declare_signal(wire_out, SignalKind.OUTPUT)
    for signal, kind in spec.partial_signals.items():
        stg.declare_signal(signal, kind)
    for signal, kind in spec.full_signals.items():
        stg.declare_signal(signal, kind)


def _copy_structure(spec: PartialSpec, stg: STG,
                    relabel: Dict[str, str]) -> None:
    """Copy places and arcs from the spec net, renaming transitions."""
    for place in spec.net.places:
        stg.net.add_place(place.name, auto=place.auto)
    for old_name, new_name in relabel.items():
        for place, weight in spec.net.preset_of_transition(old_name).items():
            stg.net.add_arc(place, new_name, weight)
        for place, weight in spec.net.postset_of_transition(old_name).items():
            stg.net.add_arc(new_name, place, weight)
    marking = spec.net.marking_dict(spec.net.initial_marking())
    stg.net.set_initial(marking)


def _signal_of_action(spec: PartialSpec, action: ChannelAction) -> str:
    wire_in, wire_out = spec.wire_names(action.channel)
    return wire_in if action.is_input else wire_out


def expand_two_phase(spec: PartialSpec, name: Optional[str] = None) -> STG:
    """2-phase refinement: every abstract event becomes a toggle transition."""
    stg = STG(name or f"{spec.name}_2ph")
    _declare_wires(spec, stg)
    relabel: Dict[str, str] = {}
    for transition in spec.net.transitions:
        label = transition.label
        if label is None:
            raise ExpansionError(f"dummy transition {transition.name!r} in spec")
        if isinstance(label, ChannelAction):
            signal = _signal_of_action(spec, label)
            relabel[transition.name] = stg.add_fresh_event(f"{signal}~")
        elif isinstance(label, PartialPulse):
            relabel[transition.name] = stg.add_fresh_event(f"{label.signal}~")
        elif isinstance(label, SignalEvent):
            relabel[transition.name] = stg.add_fresh_event(label)
        else:
            raise ExpansionError(f"unsupported label {label!r}")
    _copy_structure(spec, stg, relabel)
    for signal in stg.signals:
        stg.set_initial_value(signal, spec.initial_values.get(signal, 0))
    return stg


def _attach_return_to_zero(stg: STG, signal: str) -> str:
    """Fig. 5.a/b: one falling transition with ``rtz``/``rdy`` places.

    Every rising instance feeds ``rtz`` (enabling the reset as soon as the
    pulse fired) and is gated by ``rdy`` (the next pulse waits for the
    reset), and nothing else constrains the reset: maximum concurrency.
    """
    rising = stg.transitions_of_event(f"{signal}+")
    if not rising:
        raise ExpansionError(f"no rising transitions for signal {signal!r}")
    falling = stg.add_event(f"{signal}-")
    rtz = f"rtz_{signal}"
    rdy = f"rdy_{signal}"
    stg.net.add_place(rtz)
    stg.net.add_place(rdy)
    for transition in rising:
        stg.net.add_arc(transition, rtz)
        stg.net.add_arc(rdy, transition)
    stg.net.add_arc(rtz, falling)
    stg.net.add_arc(falling, rdy)
    stg.mark(rdy)
    return falling


def expand_four_phase(spec: PartialSpec,
                      extra_constraints: Sequence[InterfaceConstraint] = (),
                      name: Optional[str] = None) -> STG:
    """4-phase refinement with maximally concurrent return-to-zero events.

    Channel roles drive the interface constraints: PASSIVE and ACTIVE ports
    get their protocol interleaving threaded through the STG; FREE channels
    (and partial signals) are constrained only by signal alternation.
    ``extra_constraints`` lets callers impose additional orderings.
    """
    stg = STG(name or f"{spec.name}_4ph")
    _declare_wires(spec, stg)
    relabel: Dict[str, str] = {}
    rtz_signals: List[str] = []
    for transition in spec.net.transitions:
        label = transition.label
        if label is None:
            raise ExpansionError(f"dummy transition {transition.name!r} in spec")
        if isinstance(label, ChannelAction):
            signal = _signal_of_action(spec, label)
            relabel[transition.name] = stg.add_fresh_event(f"{signal}+")
            if signal not in rtz_signals:
                rtz_signals.append(signal)
        elif isinstance(label, PartialPulse):
            relabel[transition.name] = stg.add_fresh_event(f"{label.signal}+")
            if label.signal not in rtz_signals:
                rtz_signals.append(label.signal)
        elif isinstance(label, SignalEvent):
            if label.direction == Direction.TOGGLE:
                raise ExpansionError(
                    f"toggle event {label} not allowed in a 4-phase refinement")
            relabel[transition.name] = stg.add_fresh_event(label)
        else:
            raise ExpansionError(f"unsupported label {label!r}")
    _copy_structure(spec, stg, relabel)

    for signal in rtz_signals:
        _attach_return_to_zero(stg, signal)

    for channel, role in spec.channels.items():
        if role == ChannelRole.PASSIVE:
            apply_interface_constraint(stg, InterfaceConstraint.passive(channel))
        elif role == ChannelRole.ACTIVE:
            apply_interface_constraint(stg, InterfaceConstraint.active(channel))
    for constraint in extra_constraints:
        apply_interface_constraint(stg, constraint)

    for signal in stg.signals:
        stg.set_initial_value(signal, spec.initial_values.get(signal, 0))
    return stg


def expand(spec: PartialSpec, phases: int = 4,
           extra_constraints: Sequence[InterfaceConstraint] = (),
           name: Optional[str] = None) -> STG:
    """Dispatch to the chosen refinement (``phases`` in {2, 4})."""
    if phases == 2:
        if extra_constraints:
            raise ExpansionError("interface constraints apply to 4-phase only")
        return expand_two_phase(spec, name)
    if phases == 4:
        return expand_four_phase(spec, extra_constraints, name)
    raise ExpansionError(f"unsupported refinement: {phases}-phase")
