"""Gate library, netlists, 2-input decomposition and technology mapping."""
