"""SOP decomposition into 2-input gates and technology mapping.

The paper obtains final areas "by decomposing the circuit into 2-input
gates and mapping the network onto a gate library".  This module performs
that decomposition for the covers produced by logic synthesis:

* each complemented literal costs one inverter (shared per signal),
* each cube with k literals becomes a balanced tree of k-1 AND2 gates,
* the disjunction of m cubes becomes a tree of m-1 OR2 gates,
* a single positive literal collapses to a wire (zero area).

Decomposition of speed-independent logic must in general be done hazard-
free; the paper uses SI-preserving decomposition.  For area accounting the
gate counts are the same, which is what the benchmarks compare.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..logic.cube import DC, Cube, Cover
from .library import Library, DEFAULT_LIBRARY
from .netlist import Netlist, NetlistError


def _literal_net(netlist: Netlist, names: Sequence[str], var: int, value: int,
                 inverter_cache: Dict[str, str]) -> str:
    """Net carrying the requested literal, instantiating shared inverters."""
    name = names[var]
    if value == 1:
        return name
    if name not in inverter_cache:
        gate = netlist.add_gate("INV", [name])
        inverter_cache[name] = gate.output
    return inverter_cache[name]


def _tree(netlist: Netlist, cell: str, nets: List[str]) -> str:
    """Balanced tree of 2-input gates over ``nets``; returns the root net."""
    level = list(nets)
    while len(level) > 1:
        nxt: List[str] = []
        for i in range(0, len(level) - 1, 2):
            gate = netlist.add_gate(cell, [level[i], level[i + 1]])
            nxt.append(gate.output)
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def map_cover(cover: Cover, names: Sequence[str], output: str,
              netlist: Optional[Netlist] = None,
              library: Library = DEFAULT_LIBRARY,
              inverter_cache: Optional[Dict[str, str]] = None) -> Netlist:
    """Map an SOP cover onto 2-input gates, driving net ``output``.

    When ``netlist`` is given the gates are added to it (sharing its
    inverter cache through ``inverter_cache``); otherwise a fresh netlist is
    created.
    """
    if netlist is None:
        netlist = Netlist(f"map_{output}", library)
    if inverter_cache is None:
        inverter_cache = {}
    if cover.is_constant_zero:
        netlist.add_alias("GND", output)
        return netlist
    if cover.is_constant_one:
        netlist.add_alias("VDD", output)
        return netlist

    cube_nets: List[str] = []
    for cube in cover:
        literal_nets = [
            _literal_net(netlist, names, var, value, inverter_cache)
            for var, value in enumerate(cube.values) if value != DC
        ]
        cube_nets.append(_tree(netlist, "AND2", literal_nets))
    root = _tree(netlist, "OR2", cube_nets)
    if root == output:
        return netlist
    if netlist.driver_of(root) is None:
        # Root is a primary net (single positive literal): a plain wire.
        netlist.add_alias(root, output)
    else:
        _rename_output(netlist, root, output)
    return netlist


def _rename_output(netlist: Netlist, old: str, new: str) -> None:
    """Re-point the gate driving ``old`` at net ``new``."""
    for i, gate in enumerate(netlist.gates):
        if gate.output == old:
            netlist.gates[i] = type(gate)(gate.name, gate.cell, gate.inputs, new)
            netlist._drivers.pop(old, None)
            netlist._drivers[new] = gate.name
            return
    raise NetlistError(f"no gate drives {old!r}")


def cover_mapped_area(cover: Cover, names: Sequence[str],
                      library: Library = DEFAULT_LIBRARY,
                      shared_inverters: Optional[Dict[str, str]] = None) -> float:
    """Mapped area of a cover without keeping the netlist."""
    scratch = Netlist("scratch", library)
    cache = shared_inverters if shared_inverters is not None else {}
    map_cover(cover, names, "out", scratch, library, cache)
    return scratch.area


def map_gc(set_cover: Cover, reset_cover: Cover, names: Sequence[str],
           output: str, library: Library = DEFAULT_LIBRARY,
           netlist: Optional[Netlist] = None,
           inverter_cache: Optional[Dict[str, str]] = None) -> Netlist:
    """Map a generalized C-element: set/reset networks feeding a C2 cell.

    The C element fires the output high when the set network is high and low
    when the reset network is *low*; the reset network is therefore fed
    through complemented logic (an extra inverter unless it simplifies).
    """
    if netlist is None:
        netlist = Netlist(f"gc_{output}", library)
    if inverter_cache is None:
        inverter_cache = {}
    set_net = f"{output}_set"
    reset_net = f"{output}_reset"
    map_cover(set_cover, names, set_net, netlist, library, inverter_cache)
    map_cover(reset_cover, names, reset_net, netlist, library, inverter_cache)
    reset_inv = netlist.add_gate("INV", [reset_net]).output
    netlist.add_gate("C2", [set_net, reset_inv], output)
    return netlist
