"""Circuit synthesis from a state graph.

Derives, for every output and internal signal, either:

* a **complex gate**: the minimized next-state function as one SOP network
  with output feedback, or
* a **generalized C element (gC)**: minimized set/reset networks driving a
  C2 cell,

maps both onto the 2-input library and keeps the cheaper one.  Signals whose
minimized function is a single positive literal collapse to plain wires
(zero area), which is how the fully reduced LR-process becomes "two wires".

The SG must satisfy CSC; callers resolve conflicts first (see
:mod:`repro.encoding.insertion`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..logic.cube import Cover
from ..logic.functions import extract_all_functions, extract_function, extract_set_reset
from ..sg.graph import StateGraph
from ..petri.stg import SignalKind
from .library import Library, DEFAULT_LIBRARY
from .mapping import cover_mapped_area, map_cover, map_gc
from .netlist import Netlist


class SynthesisError(Exception):
    """Raised when an SG cannot be implemented (e.g. CSC conflicts)."""


@dataclass
class SignalImplementation:
    """Implementation of one signal: style, covers and mapped netlist."""

    signal: str
    style: str  # "wire", "constant", "complex" or "gc"
    cover: Optional[Cover]
    set_cover: Optional[Cover]
    reset_cover: Optional[Cover]
    netlist: Netlist
    equation: str

    @property
    def area(self) -> float:
        return self.netlist.area


@dataclass
class CircuitImplementation:
    """A complete synthesized controller."""

    name: str
    signals: Dict[str, SignalImplementation]
    netlist: Netlist

    @property
    def area(self) -> float:
        return self.netlist.area

    @property
    def equations(self) -> Dict[str, str]:
        return {signal: impl.equation for signal, impl in self.signals.items()}

    def style_of(self, signal: str) -> str:
        return self.signals[signal].style


def synthesize_signal(sg: StateGraph, signal: str, exact: bool = True,
                      library: Library = DEFAULT_LIBRARY,
                      style: str = "auto") -> SignalImplementation:
    """Implement one non-input signal from the SG.

    ``style`` is ``"auto"`` (pick the cheaper of complex gate and gC),
    ``"complex"`` or ``"gc"``.
    """
    function = extract_function(sg, signal)
    if function.has_csc_conflict:
        raise SynthesisError(
            f"signal {signal!r} has {len(function.conflicts)} CSC-conflicting "
            "codes; insert state signals before synthesis")
    names = function.variables
    cover = function.minimized(exact=exact)

    complex_netlist = Netlist(f"{sg.name}_{signal}_cx", library)
    map_cover(cover, names, signal, complex_netlist)
    literal = cover.single_literal()
    if cover.is_constant_zero or cover.is_constant_one:
        return SignalImplementation(signal, "constant", cover, None, None,
                                    complex_netlist,
                                    f"{signal} = {cover.to_expression(names)}")
    if literal is not None and literal[1] == 1 and names[literal[0]] != signal:
        return SignalImplementation(signal, "wire", cover, None, None,
                                    complex_netlist,
                                    f"{signal} = {names[literal[0]]}")

    if style == "complex":
        return SignalImplementation(signal, "complex", cover, None, None,
                                    complex_netlist,
                                    f"{signal} = {cover.to_expression(names)}")

    set_reset = extract_set_reset(sg, signal, exact=exact)
    gc_netlist = Netlist(f"{sg.name}_{signal}_gc", library)
    map_gc(set_reset.set_cover, set_reset.reset_cover, names, signal,
           library, gc_netlist)
    gc_equation = (f"{signal} = C(set: {set_reset.set_cover.to_expression(names)}, "
                   f"reset: {set_reset.reset_cover.to_expression(names)})")
    if style == "gc" or gc_netlist.area < complex_netlist.area:
        return SignalImplementation(signal, "gc", None, set_reset.set_cover,
                                    set_reset.reset_cover, gc_netlist, gc_equation)
    return SignalImplementation(signal, "complex", cover, None, None,
                                complex_netlist,
                                f"{signal} = {cover.to_expression(names)}")


def estimate_circuit_area(sg: StateGraph, library: Library = DEFAULT_LIBRARY) -> float:
    """Optimistic mapped-area estimate that tolerates CSC conflicts.

    Conflicting codes are treated as ON for each signal's cover, so the
    number is a *lower bound* on any real implementation (the state signals
    still to be inserted only add logic).  Used to report the "original"
    rows of Table 2 when the insertion search cannot fully resolve CSC.
    """
    total = 0.0
    for signal, function in extract_all_functions(sg).items():
        cover = function.minimized(conflict_policy="on")
        total += cover_mapped_area(cover, function.variables, library)
    return total


def synthesize_circuit(sg: StateGraph, exact: bool = True,
                       library: Library = DEFAULT_LIBRARY,
                       style: str = "auto") -> CircuitImplementation:
    """Implement every output and internal signal of the SG."""
    top = Netlist(sg.name, library)
    for signal in sg.signals:
        if sg.kinds[signal] == SignalKind.INPUT:
            top.add_input(signal)
        elif sg.kinds[signal] == SignalKind.OUTPUT:
            top.add_output(signal)
    implementations: Dict[str, SignalImplementation] = {}
    for signal in sg.signals:
        if sg.kinds[signal] == SignalKind.INPUT:
            continue
        impl = synthesize_signal(sg, signal, exact=exact, library=library,
                                 style=style)
        implementations[signal] = impl
        top.merge(impl.netlist)
    return CircuitImplementation(sg.name, implementations, top)
