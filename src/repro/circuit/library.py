"""Gate library.

The paper reports area "in units" of the authors' standard-cell library
after decomposition into 2-input gates.  We define an equivalent library
with conventional relative sizes; absolute numbers differ from the paper,
but ratios between design points (which is what Tables 1 and 2 compare) are
preserved by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class Cell:
    """A library cell: a gate type with fixed fan-in, area and delay."""

    name: str
    fanin: int
    area: float
    delay: float
    sequential: bool = False

    def __str__(self) -> str:
        return self.name


class Library:
    """A named collection of cells, looked up by cell name."""

    def __init__(self, name: str, cells: Dict[str, Cell]) -> None:
        self.name = name
        self._cells = dict(cells)

    def cell(self, name: str) -> Cell:
        """The cell named ``name``; raises ``KeyError`` if absent."""
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(f"no cell {name!r} in library {self.name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    @property
    def cells(self) -> Dict[str, Cell]:
        """Every cell, keyed by name."""
        return dict(self._cells)


def _default_cells() -> Dict[str, Cell]:
    cells = [
        Cell("INV", 1, 8.0, 1.0),
        Cell("BUF", 1, 8.0, 1.0),
        Cell("AND2", 2, 16.0, 1.0),
        Cell("OR2", 2, 16.0, 1.0),
        Cell("NAND2", 2, 12.0, 1.0),
        Cell("NOR2", 2, 12.0, 1.0),
        Cell("XOR2", 2, 24.0, 1.0),
        # Muller C element: the canonical sequential cell of SI design.
        Cell("C2", 2, 24.0, 1.5, sequential=True),
        Cell("C3", 3, 32.0, 1.5, sequential=True),
        # Asymmetric C / set-reset latch used when set and reset networks
        # are separate (the "gC" implementation style).
        Cell("SRLATCH", 2, 28.0, 1.5, sequential=True),
    ]
    return {cell.name: cell for cell in cells}


#: Library used by default throughout the flow and the benchmarks.
DEFAULT_LIBRARY = Library("repro-2in", _default_cells())
