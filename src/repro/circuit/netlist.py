"""Gate-level netlists.

A netlist is a set of gate instances connecting named nets.  Primary inputs
and outputs are tracked explicitly so examples and tests can check circuit
structure (e.g. the fully reduced LR-process really is two wires).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .library import Cell, Library, DEFAULT_LIBRARY


class NetlistError(Exception):
    """Raised for malformed netlist operations."""


@dataclass(frozen=True)
class Gate:
    """A gate instance: a cell driving ``output`` from ``inputs``."""

    name: str
    cell: Cell
    inputs: Tuple[str, ...]
    output: str

    def __post_init__(self) -> None:
        if len(self.inputs) != self.cell.fanin:
            raise NetlistError(
                f"gate {self.name!r}: cell {self.cell.name} expects "
                f"{self.cell.fanin} inputs, got {len(self.inputs)}")


@dataclass(frozen=True)
class Alias:
    """A zero-cost connection: ``target`` is the same net as ``source``.

    Wires produced by full concurrency reduction (e.g. ``lo = ri`` in the
    LR-process) are aliases, not gates.
    """

    source: str
    target: str


class Netlist:
    """A named circuit: gates + aliases over named nets."""

    def __init__(self, name: str, library: Library = DEFAULT_LIBRARY) -> None:
        self.name = name
        self.library = library
        self.gates: List[Gate] = []
        self.aliases: List[Alias] = []
        self.primary_inputs: List[str] = []
        self.primary_outputs: List[str] = []
        self._drivers: Dict[str, str] = {}
        self._counter = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, net: str) -> None:
        if net not in self.primary_inputs:
            self.primary_inputs.append(net)

    def add_output(self, net: str) -> None:
        if net not in self.primary_outputs:
            self.primary_outputs.append(net)

    def add_gate(self, cell_name: str, inputs: Iterable[str],
                 output: Optional[str] = None, name: Optional[str] = None) -> Gate:
        """Instantiate a library cell; auto-names the gate and output net."""
        cell = self.library.cell(cell_name)
        self._counter += 1
        gate_name = name or f"{self.name}.g{self._counter}"
        out_net = output or f"{self.name}.n{self._counter}"
        if out_net in self._drivers:
            raise NetlistError(f"net {out_net!r} already driven by {self._drivers[out_net]!r}")
        gate = Gate(gate_name, cell, tuple(inputs), out_net)
        self.gates.append(gate)
        self._drivers[out_net] = gate_name
        return gate

    def add_alias(self, source: str, target: str) -> Alias:
        """Connect ``target`` directly to ``source`` (a plain wire)."""
        if target in self._drivers:
            raise NetlistError(f"net {target!r} already driven")
        alias = Alias(source, target)
        self.aliases.append(alias)
        self._drivers[target] = f"alias:{source}"
        return alias

    def merge(self, other: "Netlist") -> None:
        """Absorb another netlist's gates and aliases (nets must not clash)."""
        for gate in other.gates:
            if gate.output in self._drivers:
                raise NetlistError(f"net {gate.output!r} driven in both netlists")
            self.gates.append(gate)
            self._drivers[gate.output] = gate.name
        for alias in other.aliases:
            if alias.target in self._drivers:
                raise NetlistError(f"net {alias.target!r} driven in both netlists")
            self.aliases.append(alias)
            self._drivers[alias.target] = f"alias:{alias.source}"
        for net in other.primary_inputs:
            self.add_input(net)
        for net in other.primary_outputs:
            self.add_output(net)
        self._counter = max(self._counter, other._counter)

    # ------------------------------------------------------------------
    # metrics and queries
    # ------------------------------------------------------------------
    @property
    def area(self) -> float:
        """Total cell area; aliases are free."""
        return sum(gate.cell.area for gate in self.gates)

    @property
    def gate_count(self) -> int:
        return len(self.gates)

    def driver_of(self, net: str) -> Optional[str]:
        return self._drivers.get(net)

    def nets(self) -> Set[str]:
        nets: Set[str] = set(self.primary_inputs) | set(self.primary_outputs)
        for gate in self.gates:
            nets.update(gate.inputs)
            nets.add(gate.output)
        for alias in self.aliases:
            nets.add(alias.source)
            nets.add(alias.target)
        return nets

    def sequential_gates(self) -> List[Gate]:
        return [gate for gate in self.gates if gate.cell.sequential]

    def depth_of(self, net: str, _visiting: Optional[Set[str]] = None) -> float:
        """Worst-case delay from any primary input to ``net``.

        Feedback loops (C elements, combinational feedback of complex gates)
        are broken at sequential cells and at revisited nets.
        """
        if _visiting is None:
            _visiting = set()
        if net in _visiting or net in self.primary_inputs:
            return 0.0
        driver = self._drivers.get(net)
        if driver is None:
            return 0.0
        _visiting = _visiting | {net}
        if driver.startswith("alias:"):
            return self.depth_of(driver[len("alias:"):], _visiting)
        gate = next(g for g in self.gates if g.name == driver)
        inputs_depth = max((self.depth_of(i, _visiting) for i in gate.inputs),
                           default=0.0)
        return inputs_depth + gate.cell.delay

    def to_verilog_like(self) -> str:
        """A human-readable structural dump (not strict Verilog)."""
        lines = [f"module {self.name} (",
                 f"  input  {', '.join(self.primary_inputs)};",
                 f"  output {', '.join(self.primary_outputs)};", ")"]
        for alias in self.aliases:
            lines.append(f"  assign {alias.target} = {alias.source};")
        for gate in self.gates:
            args = ", ".join((gate.output,) + gate.inputs)
            lines.append(f"  {gate.cell.name} {gate.name} ({args});")
        lines.append("endmodule")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Netlist({self.name!r}, gates={len(self.gates)}, area={self.area})"
