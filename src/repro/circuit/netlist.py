"""Gate-level netlists.

A netlist is a set of gate instances connecting named nets.  Primary inputs
and outputs are tracked explicitly so examples and tests can check circuit
structure (e.g. the fully reduced LR-process really is two wires).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .library import Cell, Library, DEFAULT_LIBRARY


class NetlistError(Exception):
    """Raised for malformed netlist operations."""


@dataclass(frozen=True)
class Gate:
    """A gate instance: a cell driving ``output`` from ``inputs``."""

    name: str
    cell: Cell
    inputs: Tuple[str, ...]
    output: str

    def __post_init__(self) -> None:
        if len(self.inputs) != self.cell.fanin:
            raise NetlistError(
                f"gate {self.name!r}: cell {self.cell.name} expects "
                f"{self.cell.fanin} inputs, got {len(self.inputs)}")


@dataclass(frozen=True)
class Alias:
    """A zero-cost connection: ``target`` is the same net as ``source``.

    Wires produced by full concurrency reduction (e.g. ``lo = ri`` in the
    LR-process) are aliases, not gates.
    """

    source: str
    target: str


class Netlist:
    """A named circuit: gates + aliases over named nets."""

    def __init__(self, name: str, library: Library = DEFAULT_LIBRARY) -> None:
        self.name = name
        self.library = library
        self.gates: List[Gate] = []
        self.aliases: List[Alias] = []
        self.primary_inputs: List[str] = []
        self.primary_outputs: List[str] = []
        self._drivers: Dict[str, str] = {}
        self._counter = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, net: str) -> None:
        """Declare a primary input net (idempotent)."""
        if net not in self.primary_inputs:
            self.primary_inputs.append(net)

    def add_output(self, net: str) -> None:
        """Declare a primary output net (idempotent)."""
        if net not in self.primary_outputs:
            self.primary_outputs.append(net)

    def add_gate(self, cell_name: str, inputs: Iterable[str],
                 output: Optional[str] = None, name: Optional[str] = None) -> Gate:
        """Instantiate a library cell; auto-names the gate and output net."""
        cell = self.library.cell(cell_name)
        self._counter += 1
        gate_name = name or f"{self.name}.g{self._counter}"
        out_net = output or f"{self.name}.n{self._counter}"
        if out_net in self._drivers:
            raise NetlistError(f"net {out_net!r} already driven by {self._drivers[out_net]!r}")
        gate = Gate(gate_name, cell, tuple(inputs), out_net)
        self.gates.append(gate)
        self._drivers[out_net] = gate_name
        return gate

    def add_alias(self, source: str, target: str) -> Alias:
        """Connect ``target`` directly to ``source`` (a plain wire)."""
        if target in self._drivers:
            raise NetlistError(f"net {target!r} already driven")
        alias = Alias(source, target)
        self.aliases.append(alias)
        self._drivers[target] = f"alias:{source}"
        return alias

    def merge(self, other: "Netlist") -> None:
        """Absorb another netlist's gates and aliases (nets must not clash)."""
        for gate in other.gates:
            if gate.output in self._drivers:
                raise NetlistError(f"net {gate.output!r} driven in both netlists")
            self.gates.append(gate)
            self._drivers[gate.output] = gate.name
        for alias in other.aliases:
            if alias.target in self._drivers:
                raise NetlistError(f"net {alias.target!r} driven in both netlists")
            self.aliases.append(alias)
            self._drivers[alias.target] = f"alias:{alias.source}"
        for net in other.primary_inputs:
            self.add_input(net)
        for net in other.primary_outputs:
            self.add_output(net)
        self._counter = max(self._counter, other._counter)

    # ------------------------------------------------------------------
    # metrics and queries
    # ------------------------------------------------------------------
    @property
    def area(self) -> float:
        """Total cell area; aliases are free."""
        return sum(gate.cell.area for gate in self.gates)

    @property
    def gate_count(self) -> int:
        """Number of gate instances."""
        return len(self.gates)

    def driver_of(self, net: str) -> Optional[str]:
        """The gate driving ``net``, or ``None`` for inputs/floating nets."""
        return self._drivers.get(net)

    def nets(self) -> List[str]:
        """All referenced net names, sorted.

        The sorted order (rather than set iteration order) keeps structural
        dumps, goldens and verification certificates byte-stable across
        hash seeds.
        """
        nets: Set[str] = set(self.primary_inputs) | set(self.primary_outputs)
        for gate in self.gates:
            nets.update(gate.inputs)
            nets.add(gate.output)
        for alias in self.aliases:
            nets.add(alias.source)
            nets.add(alias.target)
        return sorted(nets)

    def sequential_gates(self) -> List[Gate]:
        """Gates whose cell is sequential (state-holding)."""
        return [gate for gate in self.gates if gate.cell.sequential]

    def depth_of(self, net: str) -> float:
        """Worst-case delay from any primary input to ``net``.

        Paths are broken at sequential cells (a C element's output starts a
        new path at the cell's own delay).  A *combinational* feedback loop
        -- the SOP feedback of a complex-gate implementation, which makes
        SI netlists cyclic -- has no finite worst case: every net on or
        downstream of one reports ``math.inf``, the documented sentinel,
        instead of recursing forever or silently under-reporting.
        """
        gates_by_name = {gate.name: gate for gate in self.gates}
        done: Dict[str, float] = {}
        on_path: Set[str] = set()
        stack: List[str] = [net]
        while stack:
            current = stack[-1]
            if current in done:
                stack.pop()
                continue
            driver = self._drivers.get(current)
            if current in self.primary_inputs or driver is None:
                done[current] = 0.0
                stack.pop()
                continue
            if driver.startswith("alias:"):
                dependencies = [driver[len("alias:"):]]
                delay = 0.0
            else:
                gate = gates_by_name[driver]
                if gate.cell.sequential:
                    done[current] = gate.cell.delay
                    stack.pop()
                    continue
                dependencies = list(gate.inputs)
                delay = gate.cell.delay
            if current not in on_path:
                # First visit: a dependency on the DFS path (the node
                # itself included) is a back edge, i.e. a combinational
                # cycle.
                on_path.add(current)
                if any(d in on_path for d in dependencies):
                    done[current] = math.inf
                    on_path.discard(current)
                    stack.pop()
                    continue
                stack.extend(d for d in dependencies if d not in done)
            else:
                on_path.discard(current)
                stack.pop()
                done[current] = delay + max(
                    (done[d] for d in dependencies if d in done),
                    default=0.0)
        return done[net]

    def to_verilog_like(self) -> str:
        """A human-readable structural dump (not strict Verilog).

        Deterministic: interface and driver lines follow declaration order,
        the wire declaration follows the sorted order of :meth:`nets`.
        """
        lines = [f"module {self.name} (",
                 f"  input  {', '.join(self.primary_inputs)};",
                 f"  output {', '.join(self.primary_outputs)};", ")"]
        interface = set(self.primary_inputs) | set(self.primary_outputs)
        wires = [net for net in self.nets() if net not in interface]
        if wires:
            lines.append(f"  wire   {', '.join(wires)};")
        for alias in self.aliases:
            lines.append(f"  assign {alias.target} = {alias.source};")
        for gate in self.gates:
            args = ", ".join((gate.output,) + gate.inputs)
            lines.append(f"  {gate.cell.name} {gate.name} ({args});")
        lines.append("endmodule")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Netlist({self.name!r}, gates={len(self.gates)}, area={self.area})"
