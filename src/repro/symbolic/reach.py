"""Budgeted symbolic reachability: the frontier-image fixpoint.

The symbolic sibling of :func:`repro.explore.frontier.explore_packed`:
the same level discipline (expand the whole frontier, subtract what is
already reached, repeat), the same
:class:`~repro.explore.budget.ExplorationBudget` accounting and the same
structured :class:`~repro.explore.budget.BudgetExceeded` on exhaustion
-- but the frontier is a BDD, so a level's cost follows the *structure*
of the state set, not its cardinality.  Budgets meter what the engine
actually spends: allocated BDD nodes (``max_nodes``, charged through the
manager's grow hook so even one runaway image step trips it) and wall
clock (``max_seconds``); ``max_states`` is an explicit-enumeration
notion and is deliberately not metered here.

The image of a frontier is computed per transition from the structural
pieces of :class:`~repro.symbolic.encode.SymbolicTransition`::

    S  = frontier AND enabled_t          -- states that fire t
    --  S AND overflow_t must be empty   -- else not 1-safe
    T  = exists (rewritten vars) . S     -- forget the old values
    R' = T AND effect_t                  -- fix the new ones

Toggle transitions split ``S`` on their signal variable first and apply
the two flips separately.  Two expansion modes share this step:

* ``chaining=False`` -- strict breadth-first: every level unions the
  one-step images of the previous frontier, so ``levels`` is the BFS
  depth, matching the explicit engines level for level.
* ``chaining=True`` -- each pass sweeps the transitions forward then
  backward over the *whole* reached set, folding every image straight
  back into the working set, so one pass can ripple a token through a
  whole pipeline in either direction.  The reached *set* is identical;
  only the pass structure (and speed -- chained passes converge in far
  fewer rounds than diameter-many BFS levels, and images of the stable
  reached set hit the operation caches hard) differs.

Both modes run a fixed, data-independent op sequence over dict-only
structures, so node ids -- and therefore node counts and every rendered
payload -- are byte-stable across hash seeds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..explore.budget import BudgetMeter, ExplorationBudget
from ..obs import progress as obs_progress
from ..obs.metrics import registry as obs_registry
from ..obs.trace import span as obs_span
from .bdd import FALSE, BDD
from .encode import SymbolicEncoding, SymbolicOverflowError

__all__ = ["SymbolicReachability", "symbolic_reach"]

_UNBOUNDED = ExplorationBudget()


@dataclass
class SymbolicReachability:
    """The reachable state set of one symbolic run.

    ``reached`` is the BDD of reachable (marking, signal-values) states
    over ``encoding.state_vars``; ``state_count`` its exact model count
    (= the explicit engine's state count); ``levels`` the number of
    expansion passes; ``level_stats`` one record per pass with the
    frontier's node size and the pass's image wall clock (the obs/bench
    "image-step timings per level").
    """

    encoding: SymbolicEncoding
    reached: int
    state_count: int
    levels: int
    chaining: bool
    node_count: int
    level_stats: List[Dict[str, object]] = field(default_factory=list)

    @property
    def bdd(self) -> BDD:
        return self.encoding.bdd


def _image(bdd: BDD, frontier: int, transition) -> int:
    """One transition's successor set (see the module docstring)."""
    fires = bdd.apply_and(frontier, transition.enabled)
    if fires == FALSE:
        return FALSE
    if transition.overflow != FALSE \
            and bdd.apply_and(fires, transition.overflow) != FALSE:
        raise SymbolicOverflowError(
            f"firing {transition.name!r} leaves the 1-safe regime")
    if transition.wrong is None:  # toggle: split on the signal bit
        sig = transition.signal_var
        image = FALSE
        for value in (0, 1):
            half = bdd.restrict(fires, sig, value)
            if half == FALSE:
                continue
            moved = bdd.exists(half, transition.quant)
            moved = bdd.apply_and(moved, transition.effect)
            image = bdd.apply_or(
                image, bdd.apply_and(moved, bdd.literal(sig, 1 - value)))
        return image
    # Rise/fall: the rewritten variables always include the signal bit.
    moved = bdd.exists(fires, transition.quant)
    return bdd.apply_and(moved, transition.effect)


def _heartbeat(meter: BudgetMeter, level: int, frontier_nodes: int,
               total_nodes: int, force: bool = False) -> None:
    if not obs_progress.active():
        return
    fields: Dict[str, object] = {
        "engine": "symbolic", "level": level,
        "frontier_nodes": frontier_nodes, "bdd_nodes": total_nodes,
    }
    limit = meter.budget.max_nodes
    if limit is not None:
        fields["budget_remaining"] = int(limit) - total_nodes
    obs_progress.emit("frontier", fields, force=force)


def _record_run(levels: int, nodes: int, states: int) -> None:
    reg = obs_registry()
    reg.counter("repro_explore_runs_total",
                "Completed reachability runs.", engine="symbolic").inc()
    reg.counter("repro_explore_levels_total",
                "BFS levels expanded by reachability runs.",
                engine="symbolic").inc(levels)
    reg.counter("repro_symbolic_nodes_total",
                "BDD nodes allocated by symbolic reachability runs."
                ).inc(nodes)
    reg.counter("repro_symbolic_states_total",
                "States covered (model count) by symbolic reachability "
                "runs.").inc(states)


def symbolic_reach(encoding: SymbolicEncoding,
                   budget: Optional[ExplorationBudget] = None,
                   chaining: bool = True) -> SymbolicReachability:
    """Compute the reachable states of an encoded STG.

    Raises :class:`~repro.explore.budget.BudgetExceeded` (resource
    ``"nodes"`` or ``"seconds"``) when the budget runs out and
    :class:`~repro.symbolic.encode.SymbolicOverflowError` when the net
    leaves the 1-safe regime.
    """
    bdd = encoding.bdd
    meter = (budget or _UNBOUNDED).meter()
    meter.charge_nodes(bdd.node_count)
    bdd.on_grow = meter.charge_nodes
    level_stats: List[Dict[str, object]] = []
    forward = encoding.transitions
    sweep = forward + tuple(reversed(forward)) if chaining else forward
    reached = encoding.initial
    frontier = encoding.initial  # strict mode only
    levels = 0
    done = False
    try:
        while not done:
            depth = levels
            levels += 1
            meter.level = depth
            frontier_nodes = bdd.size(frontier if not chaining else reached)
            started = time.perf_counter()
            with obs_span("symbolic:level", engine="symbolic", level=depth,
                          frontier_nodes=frontier_nodes) as level_span:
                if chaining:
                    working = reached
                    for transition in sweep:
                        image = _image(bdd, working, transition)
                        if image != FALSE:
                            working = bdd.apply_or(working, image)
                    done = working == reached
                    reached = working
                else:
                    new = FALSE
                    for transition in sweep:
                        image = _image(bdd, frontier, transition)
                        if image != FALSE:
                            new = bdd.apply_or(new, image)
                    new = bdd.diff(new, reached)
                    reached = bdd.apply_or(reached, new)
                    frontier = new
                    done = frontier == FALSE
                meter.charge_nodes(bdd.node_count)
                meter.check_clock()
                if level_span is not None:
                    level_span.set(reached_nodes=bdd.size(reached),
                                   bdd_nodes=bdd.node_count)
            level_stats.append({
                "level": depth,
                "frontier_nodes": frontier_nodes,
                "reached_nodes": bdd.size(reached),
                "bdd_nodes": bdd.node_count,
                "seconds": round(time.perf_counter() - started, 6),
            })
            _heartbeat(meter, depth, frontier_nodes, bdd.node_count,
                       force=done)
    finally:
        bdd.on_grow = None
    state_count = bdd.count(reached, encoding.state_vars)
    _record_run(levels, bdd.node_count, state_count)
    return SymbolicReachability(
        encoding=encoding, reached=reached, state_count=state_count,
        levels=levels, chaining=chaining, node_count=bdd.node_count,
        level_stats=level_stats)
