"""A stdlib-only hash-consed BDD core.

Reduced ordered binary decision diagrams with a single unique table:
``(var, low, high)`` triples are interned once, so semantic equality is
id equality and every operation memoizes on node ids.  The manager is
deliberately small -- the operations the symbolic reachability and
CSC/USC checks need, nothing speculative:

* :meth:`BDD.apply_and` / :meth:`apply_or` / :meth:`apply_xor` /
  :meth:`negate` / :meth:`ite`  -- boolean connectives;
* :meth:`BDD.restrict` -- cofactor on one variable;
* :meth:`BDD.exists` -- existential quantification over a variable set;
* :meth:`BDD.and_exists` -- the relational product
  (``exists V . f AND g`` without building the conjunction first);
* :meth:`BDD.rename` -- order-preserving variable substitution (the
  unprimed -> primed shift of the CSC self-product);
* :meth:`BDD.count` -- model counting over a declared variable universe;
* :meth:`BDD.models` -- deterministic satisfying-assignment enumeration
  (for conflict witnesses).

Determinism is a design constraint, not an accident: node ids are
assigned in creation order, every table is a plain dict keyed by ints or
int tuples (insertion-ordered, hash-seed independent), and no operation
consults iteration order of anything seed-dependent.  Two processes
running the same op sequence under different ``PYTHONHASHSEED`` values
build byte-identical tables, so node counts and rendered payloads are
stable enough to pin in golden tests and bench canonicals.

Variable order is the integer order of variable indices: variable 0 is
closest to the root.  Callers pick the order when they allocate
variables (see :mod:`repro.symbolic.encode` for why interleaving primed
copies matters).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["BDD", "FALSE", "TRUE"]

#: Terminal node ids (fixed forever; every table starts with them).
FALSE = 0
TRUE = 1

_TERMINAL_VAR = 1 << 30  # deeper than any real variable


class BDD:
    """A BDD manager over ``num_vars`` ordered boolean variables.

    ``on_grow`` (optional) is called with the total allocated node count
    every time the unique table grows by ``grow_step`` nodes -- the hook
    the budgeted reachability uses to charge BDD nodes without polling.
    """

    __slots__ = ("num_vars", "_var", "_low", "_high", "_unique", "_vars",
                 "_nvars", "_cache", "on_grow", "grow_step", "_next_check")

    def __init__(self, num_vars: int,
                 on_grow: Optional[Callable[[int], None]] = None,
                 grow_step: int = 4096) -> None:
        if num_vars < 0:
            raise ValueError(f"num_vars must be >= 0, got {num_vars}")
        self.num_vars = num_vars
        # Parallel node arrays; ids 0/1 are the terminals.  The terminal
        # "variable" sorts below every real variable.
        self._var: List[int] = [_TERMINAL_VAR, _TERMINAL_VAR]
        self._low: List[int] = [0, 1]
        self._high: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._vars: Dict[int, int] = {}   # var index -> positive literal id
        self._nvars: Dict[int, int] = {}  # var index -> negative literal id
        #: One memo table per operation name; cleared together.
        self._cache: Dict[str, dict] = {}
        self.on_grow = on_grow
        self.grow_step = grow_step
        self._next_check = grow_step

    # ------------------------------------------------------------------
    # nodes
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Total allocated nodes, terminals included (monotone)."""
        return len(self._var)

    def node(self, var: int, low: int, high: int) -> int:
        """The interned node for ``var ? high : low`` (reduced)."""
        if low == high:
            return low
        key = (var, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        node_id = len(self._var)
        self._var.append(var)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = node_id
        if self.on_grow is not None and node_id >= self._next_check:
            self._next_check = node_id + self.grow_step
            self.on_grow(node_id + 1)
        return node_id

    def var(self, index: int) -> int:
        """The positive literal of variable ``index``."""
        found = self._vars.get(index)
        if found is None:
            if not 0 <= index < self.num_vars:
                raise IndexError(f"variable {index} outside "
                                 f"[0, {self.num_vars})")
            found = self.node(index, FALSE, TRUE)
            self._vars[index] = found
        return found

    def nvar(self, index: int) -> int:
        """The negative literal of variable ``index``."""
        found = self._nvars.get(index)
        if found is None:
            if not 0 <= index < self.num_vars:
                raise IndexError(f"variable {index} outside "
                                 f"[0, {self.num_vars})")
            found = self.node(index, TRUE, FALSE)
            self._nvars[index] = found
        return found

    def literal(self, index: int, value: int) -> int:
        """``var(index)`` when ``value`` is truthy, else ``nvar(index)``."""
        return self.var(index) if value else self.nvar(index)

    def var_of(self, f: int) -> int:
        """The root variable of ``f`` (terminals sort below all)."""
        return self._var[f]

    def low_of(self, f: int) -> int:
        return self._low[f]

    def high_of(self, f: int) -> int:
        return self._high[f]

    def size(self, f: int) -> int:
        """Nodes reachable from ``f``, terminals excluded."""
        seen = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            stack.append(self._low[node])
            stack.append(self._high[node])
        return len(seen)

    def clear_caches(self) -> None:
        """Drop every operation memo (the unique table stays)."""
        self._cache.clear()

    def _memo(self, op: str) -> dict:
        table = self._cache.get(op)
        if table is None:
            table = self._cache[op] = {}
        return table

    # ------------------------------------------------------------------
    # connectives
    # ------------------------------------------------------------------
    def apply_and(self, f: int, g: int) -> int:
        if f == FALSE or g == FALSE:
            return FALSE
        if f == TRUE:
            return g
        if g == TRUE or f == g:
            return f
        if f > g:
            f, g = g, f
        memo = self._memo("and")
        key = (f, g)
        found = memo.get(key)
        if found is not None:
            return found
        var_f, var_g = self._var[f], self._var[g]
        top = var_f if var_f < var_g else var_g
        f0, f1 = (self._low[f], self._high[f]) if var_f == top else (f, f)
        g0, g1 = (self._low[g], self._high[g]) if var_g == top else (g, g)
        result = self.node(top, self.apply_and(f0, g0),
                           self.apply_and(f1, g1))
        memo[key] = result
        return result

    def apply_or(self, f: int, g: int) -> int:
        if f == TRUE or g == TRUE:
            return TRUE
        if f == FALSE:
            return g
        if g == FALSE or f == g:
            return f
        if f > g:
            f, g = g, f
        memo = self._memo("or")
        key = (f, g)
        found = memo.get(key)
        if found is not None:
            return found
        var_f, var_g = self._var[f], self._var[g]
        top = var_f if var_f < var_g else var_g
        f0, f1 = (self._low[f], self._high[f]) if var_f == top else (f, f)
        g0, g1 = (self._low[g], self._high[g]) if var_g == top else (g, g)
        result = self.node(top, self.apply_or(f0, g0), self.apply_or(f1, g1))
        memo[key] = result
        return result

    def apply_xor(self, f: int, g: int) -> int:
        if f == FALSE:
            return g
        if g == FALSE:
            return f
        if f == g:
            return FALSE
        if f == TRUE:
            return self.negate(g)
        if g == TRUE:
            return self.negate(f)
        if f > g:
            f, g = g, f
        memo = self._memo("xor")
        key = (f, g)
        found = memo.get(key)
        if found is not None:
            return found
        var_f, var_g = self._var[f], self._var[g]
        top = var_f if var_f < var_g else var_g
        f0, f1 = (self._low[f], self._high[f]) if var_f == top else (f, f)
        g0, g1 = (self._low[g], self._high[g]) if var_g == top else (g, g)
        result = self.node(top, self.apply_xor(f0, g0),
                           self.apply_xor(f1, g1))
        memo[key] = result
        return result

    def negate(self, f: int) -> int:
        if f == FALSE:
            return TRUE
        if f == TRUE:
            return FALSE
        memo = self._memo("not")
        found = memo.get(f)
        if found is not None:
            return found
        result = self.node(self._var[f], self.negate(self._low[f]),
                           self.negate(self._high[f]))
        memo[f] = result
        memo[result] = f
        return result

    def diff(self, f: int, g: int) -> int:
        """``f AND NOT g`` (the frontier-minus-reached step)."""
        return self.apply_and(f, self.negate(g))

    def ite(self, f: int, g: int, h: int) -> int:
        """``if f then g else h`` -- the classic three-way connective."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        if g == FALSE and h == TRUE:
            return self.negate(f)
        memo = self._memo("ite")
        key = (f, g, h)
        found = memo.get(key)
        if found is not None:
            return found
        top = min(self._var[f], self._var[g], self._var[h])
        f0, f1 = ((self._low[f], self._high[f])
                  if self._var[f] == top else (f, f))
        g0, g1 = ((self._low[g], self._high[g])
                  if self._var[g] == top else (g, g))
        h0, h1 = ((self._low[h], self._high[h])
                  if self._var[h] == top else (h, h))
        result = self.node(top, self.ite(f0, g0, h0), self.ite(f1, g1, h1))
        memo[key] = result
        return result

    def conjoin(self, terms: Sequence[int]) -> int:
        """AND over a term sequence (left fold; TRUE for empty)."""
        result = TRUE
        for term in terms:
            result = self.apply_and(result, term)
        return result

    def disjoin(self, terms: Sequence[int]) -> int:
        """OR over a term sequence (left fold; FALSE for empty)."""
        result = FALSE
        for term in terms:
            result = self.apply_or(result, term)
        return result

    def cube(self, assignment: Sequence[Tuple[int, int]]) -> int:
        """The minterm cube ``AND_i literal(var_i, value_i)``.

        Built deepest-variable first so each :meth:`node` call adds at
        most one node -- a cube is a chain, never a DAG blowup.
        """
        result = TRUE
        for index, value in sorted(assignment, reverse=True):
            if value:
                result = self.node(index, FALSE, result)
            else:
                result = self.node(index, result, FALSE)
        return result

    # ------------------------------------------------------------------
    # cofactors and quantification
    # ------------------------------------------------------------------
    def restrict(self, f: int, index: int, value: int) -> int:
        """The cofactor of ``f`` with variable ``index`` fixed."""
        memo = self._memo("restrict")
        key = (f, index, 1 if value else 0)
        return self._restrict(f, index, 1 if value else 0, memo, key)

    def _restrict(self, f: int, index: int, value: int, memo: dict,
                  key: Tuple[int, int, int]) -> int:
        var = self._var[f]
        if var > index:  # terminals included: variable absent
            return f
        found = memo.get(key)
        if found is not None:
            return found
        if var == index:
            result = self._high[f] if value else self._low[f]
        else:
            result = self.node(
                var,
                self._restrict(self._low[f], index, value, memo,
                               (self._low[f], index, value)),
                self._restrict(self._high[f], index, value, memo,
                               (self._high[f], index, value)))
        memo[key] = result
        return result

    def exists(self, f: int, indices: Sequence[int]) -> int:
        """``exists indices . f`` (smoothing over a variable set)."""
        if not indices:
            return f
        cube = tuple(sorted(set(indices)))
        memo = self._memo("exists")
        return self._exists(f, cube, memo)

    def _exists(self, f: int, cube: Tuple[int, ...], memo: dict) -> int:
        if f <= TRUE:
            return f
        var = self._var[f]
        # Drop quantified variables above the root: they no longer matter.
        start = 0
        while start < len(cube) and cube[start] < var:
            start += 1
        rest = cube[start:]
        if not rest:
            return f
        key = (f, rest)
        found = memo.get(key)
        if found is not None:
            return found
        low = self._exists(self._low[f], rest, memo)
        if var == rest[0]:
            # OR of the two cofactors; shortcut when low is already TRUE.
            if low == TRUE:
                result = TRUE
            else:
                result = self.apply_or(low, self._exists(self._high[f],
                                                         rest, memo))
        else:
            result = self.node(var, low,
                               self._exists(self._high[f], rest, memo))
        memo[key] = result
        return result

    def and_exists(self, f: int, g: int, indices: Sequence[int]) -> int:
        """The relational product ``exists indices . f AND g``.

        One recursion instead of an AND followed by a quantification, so
        the (often much larger) conjunction is never materialized.
        """
        if not indices:
            return self.apply_and(f, g)
        cube = tuple(sorted(set(indices)))
        memo = self._memo("and_exists")
        return self._and_exists(f, g, cube, memo)

    def _and_exists(self, f: int, g: int, cube: Tuple[int, ...],
                    memo: dict) -> int:
        if f == FALSE or g == FALSE:
            return FALSE
        if f == TRUE and g == TRUE:
            return TRUE
        var_f, var_g = self._var[f], self._var[g]
        top = var_f if var_f < var_g else var_g
        start = 0
        while start < len(cube) and cube[start] < top:
            start += 1
        rest = cube[start:]
        if not rest:
            return self.apply_and(f, g)
        if f == TRUE:
            return self._exists(g, rest, self._memo("exists"))
        if g == TRUE:
            return self._exists(f, rest, self._memo("exists"))
        if f > g:  # AND commutes; canonicalize the memo key
            f, g = g, f
            var_f, var_g = var_g, var_f
        key = (f, g, rest)
        found = memo.get(key)
        if found is not None:
            return found
        f0, f1 = ((self._low[f], self._high[f])
                  if var_f == top else (f, f))
        g0, g1 = ((self._low[g], self._high[g])
                  if var_g == top else (g, g))
        low = self._and_exists(f0, g0, rest, memo)
        if top == rest[0]:
            if low == TRUE:
                result = TRUE
            else:
                result = self.apply_or(low,
                                       self._and_exists(f1, g1, rest, memo))
        else:
            result = self.node(top, low,
                               self._and_exists(f1, g1, rest, memo))
        memo[key] = result
        return result

    # ------------------------------------------------------------------
    # substitution
    # ------------------------------------------------------------------
    def rename(self, f: int, mapping: Dict[int, int]) -> int:
        """Substitute variables by ``mapping`` (must preserve the order).

        Every mapped pair must satisfy the same relative order as the
        originals (``a < b`` implies ``mapping[a] < mapping[b]``, and
        unmapped variables must keep their position relative to mapped
        ones); the interleaved place/primed-place layout of the encoder
        satisfies this by construction.  Order-preservation makes rename
        a single memoized traversal instead of a compose cascade.
        """
        if not mapping:
            return f
        items = tuple(sorted(mapping.items()))
        for (a, fa), (b, fb) in zip(items, items[1:]):
            if not (a < b and fa < fb):
                raise ValueError(
                    f"rename mapping must be order-preserving; "
                    f"{a}->{fa} and {b}->{fb} cross")
        memo = self._memo("rename")
        return self._rename(f, dict(items), items, memo)

    def _rename(self, f: int, mapping: Dict[int, int],
                items: Tuple[Tuple[int, int], ...], memo: dict) -> int:
        if f <= TRUE:
            return f
        key = (f, items)
        found = memo.get(key)
        if found is not None:
            return found
        var = self._var[f]
        result = self.node(mapping.get(var, var),
                           self._rename(self._low[f], mapping, items, memo),
                           self._rename(self._high[f], mapping, items, memo))
        memo[key] = result
        return result

    # ------------------------------------------------------------------
    # counting and enumeration
    # ------------------------------------------------------------------
    def count(self, f: int, care: Sequence[int]) -> int:
        """Satisfying assignments of ``f`` over the ``care`` variables.

        ``care`` must cover the support of ``f``; variables in ``care``
        that ``f`` does not mention contribute a factor of two each
        (don't-care expansion).  Exact -- python ints don't overflow.
        """
        order = tuple(sorted(set(care)))
        rank = {index: i for i, index in enumerate(order)}
        total = len(order)
        memo = self._memo("count")

        def walk(node: int) -> int:
            # Models over the care variables *below* the node's level.
            if node == FALSE:
                return 0
            if node == TRUE:
                return 1
            key = (node, order)
            found = memo.get(key)
            if found is None:
                var = self._var[node]
                if var not in rank:
                    raise ValueError(
                        f"count: variable {var} in the support of the "
                        f"function but not in the care set")
                low, high = self._low[node], self._high[node]
                found = (walk(low) << _gap(var, low)) \
                    + (walk(high) << _gap(var, high))
                memo[key] = found
            return found

        def _gap(var: int, child: int) -> int:
            # Care variables strictly between var and the child's root.
            child_var = self._var[child]
            child_rank = total if child_var not in rank else rank[child_var]
            return child_rank - rank[var] - 1

        if f == FALSE:
            return 0
        if f == TRUE:
            return 1 << total
        root_rank = rank.get(self._var[f])
        if root_rank is None:
            raise ValueError(
                f"count: root variable {self._var[f]} not in the care set")
        return walk(f) << root_rank

    def models(self, f: int, care: Sequence[int],
               limit: Optional[int] = None
               ) -> Iterator[Tuple[Tuple[int, int], ...]]:
        """Satisfying assignments as ``((var, value), ...)`` tuples.

        Deterministic order: depth-first, 0-branch before 1-branch, with
        don't-care variables expanded (0 first).  ``limit`` caps the
        yield count.  Intended for witness extraction on small conflict
        sets, not bulk enumeration.
        """
        order = tuple(sorted(set(care)))
        emitted = 0

        def walk(node: int, depth: int, prefix: List[Tuple[int, int]]
                 ) -> Iterator[Tuple[Tuple[int, int], ...]]:
            if node == FALSE:
                return
            if depth == len(order):
                yield tuple(prefix)
                return
            var = order[depth]
            node_var = self._var[node]
            if node_var == var:
                branches = ((0, self._low[node]), (1, self._high[node]))
            else:  # don't-care at this level (includes node == TRUE)
                branches = ((0, node), (1, node))
            for value, child in branches:
                prefix.append((var, value))
                yield from walk(child, depth + 1, prefix)
                prefix.pop()

        for model in walk(f, 0, []):
            yield model
            emitted += 1
            if limit is not None and emitted >= limit:
                return
