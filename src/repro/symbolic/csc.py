"""Symbolic CSC/USC/consistency checks, without enumerating states.

The classic formulation: a USC conflict is two distinct reachable states
with equal binary codes, a CSC conflict one whose non-input excitation
also differs.  Explicitly that is a pairwise scan inside code buckets
(:mod:`repro.sg.properties`); symbolically it is one product of the
reachable set with itself::

    U(p, p', s) = R(p, s) AND R(p', s) AND (p != p')        -- USC pairs
    C           = U AND (exists sd . X_sd(p) XOR X_sd(p'))   -- CSC pairs

where ``p`` / ``p'`` are the unprimed / primed place variables, the
*shared* signal variables force the two codes equal by construction, and
``X_sd`` is the excitation predicate of non-input event ``(signal,
direction)`` -- a disjunction of transition enabling cubes over the
unprimed places, renamed for the primed half.  Every unordered pair
appears in both orientations, so pair counts are half the model counts.
Consistency is two symbolic conditions: no reachable state enables a
rise (fall) of an already-high (already-low) signal, and no marking
carries two distinct signal-value vectors (a model-count comparison,
not an enumeration).

Both engines render their verdicts into one :class:`CodingReport` whose
:meth:`~CodingReport.to_payload` is engine-free and canonical: witness
pairs are decoded into (code, marking, excitation) records, ordered
pair-internally by marking and globally by (code, markings).  The
cross-engine parity suite byte-compares these payloads between the
packed, tuple and symbolic engines; witness lists above
``witness_limit`` are dropped (``truncated``) on *every* engine by the
same rule, so equality still holds when only the counts are practical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..explore.budget import ExplorationBudget
from ..obs.trace import span as obs_span
from ..petri.stg import STG
from .bdd import FALSE
from .encode import SymbolicEncoding, encode_stg
from .reach import SymbolicReachability, symbolic_reach

__all__ = ["DEFAULT_WITNESS_LIMIT", "CodingReport",
           "canonical_conflict", "canonical_pair",
           "check_coding_symbolic", "sort_conflicts", "sort_pairs"]

#: Above this many conflicts the witness lists are dropped (counts and
#: verdicts stay); one shared rule so every engine truncates alike.
DEFAULT_WITNESS_LIMIT = 64


@dataclass
class CodingReport:
    """One engine-comparable verdict record for coding properties.

    ``conflicts`` / ``usc_pairs`` hold canonical witness payloads (see
    :func:`canonical_conflict` / :func:`canonical_pair`); ``engine``,
    ``levels``, ``bdd_nodes`` and ``seconds`` are diagnostics excluded
    from :meth:`to_payload`, which is the byte-compared projection.
    """

    name: str
    engine: str
    states: int
    consistent: bool
    usc: bool
    csc: bool
    usc_pair_count: int
    csc_conflict_count: int
    conflicts: List[dict] = field(default_factory=list)
    usc_pairs: List[dict] = field(default_factory=list)
    truncated: bool = False
    levels: Optional[int] = None
    bdd_nodes: Optional[int] = None

    def to_payload(self) -> dict:
        """The canonical, engine-independent projection."""
        return {
            "name": self.name,
            "states": self.states,
            "consistent": self.consistent,
            "usc": self.usc,
            "csc": self.csc,
            "usc_pair_count": self.usc_pair_count,
            "csc_conflict_count": self.csc_conflict_count,
            "conflicts": self.conflicts,
            "usc_pairs": self.usc_pairs,
            "truncated": self.truncated,
        }


def _code_string(values: Sequence[int]) -> str:
    return "".join(str(v) for v in values)


def canonical_pair(code: Sequence[int], marking_a: Sequence[int],
                   marking_b: Sequence[int]) -> dict:
    """The canonical USC-pair payload (marking order fixed)."""
    first, second = sorted((tuple(marking_a), tuple(marking_b)))
    return {"code": _code_string(code),
            "a": list(first), "b": list(second)}


def canonical_conflict(code: Sequence[int],
                       marking_a: Sequence[int], excited_a,
                       marking_b: Sequence[int], excited_b) -> dict:
    """The canonical CSC-conflict payload.

    ``excited_*`` are iterables of ``(signal, direction_value)`` pairs;
    the conflict sides are ordered by marking so both engines emit the
    identical record for one conflict.
    """
    sides = sorted(((tuple(marking_a), excited_a),
                    (tuple(marking_b), excited_b)),
                   key=lambda side: side[0])
    return {"code": _code_string(code),
            "a": {"marking": list(sides[0][0]),
                  "excited": [list(item) for item in sorted(sides[0][1])]},
            "b": {"marking": list(sides[1][0]),
                  "excited": [list(item) for item in sorted(sides[1][1])]}}


def sort_pairs(pairs: List[dict]) -> List[dict]:
    """Global canonical order of USC-pair payloads."""
    return sorted(pairs, key=lambda p: (p["code"], p["a"], p["b"]))


def sort_conflicts(conflicts: List[dict]) -> List[dict]:
    """Global canonical order of CSC-conflict payloads."""
    return sorted(conflicts, key=lambda c: (c["code"], c["a"]["marking"],
                                            c["b"]["marking"]))


def _excitation_of(encoding: SymbolicEncoding,
                   marking: Sequence[int]) -> List[Tuple[str, str]]:
    """Non-input (signal, direction value) excitation at one marking."""
    excited = set()
    for transition in encoding.transitions:
        if transition.is_input:
            continue
        if all(marking[p] for p in transition.pre_places):
            excited.add((transition.signal, transition.direction.value))
    return sorted(excited)


def _pair_products(encoding: SymbolicEncoding, reached: int
                   ) -> Tuple[int, int]:
    """The USC pair relation ``U`` and the CSC conflict relation ``C``."""
    bdd = encoding.bdd
    mapping = encoding.prime_mapping()
    primed = bdd.rename(reached, mapping)
    pair = bdd.apply_and(reached, primed)
    marking_diff = FALSE
    for var, primed_var in zip(encoding.place_vars,
                               encoding.primed_place_vars):
        marking_diff = bdd.apply_or(
            marking_diff, bdd.apply_xor(bdd.var(var), bdd.var(primed_var)))
    usc_pairs = bdd.apply_and(pair, marking_diff)
    excitation_diff = FALSE
    for key in sorted(encoding.excitation):
        predicate = encoding.excitation[key]
        excitation_diff = bdd.apply_or(
            excitation_diff,
            bdd.apply_xor(predicate, bdd.rename(predicate, mapping)))
    csc_pairs = bdd.apply_and(usc_pairs, excitation_diff)
    return usc_pairs, csc_pairs


def _consistency(encoding: SymbolicEncoding, reached: int,
                 state_count: int) -> bool:
    """Symbolic consistency: no wrong-phase firing, one code per marking."""
    bdd = encoding.bdd
    has_toggle = False
    for transition in encoding.transitions:
        if transition.wrong is None:
            has_toggle = True
            continue
        offending = bdd.apply_and(reached, transition.enabled)
        if bdd.apply_and(offending, transition.wrong) != FALSE:
            return False
    if has_toggle:
        # Toggle (2-phase) specs are unfolded: a marking legitimately
        # recurs with different signal values, and toggles cannot fire
        # wrong-phase, so the wrong-literal sweep is the whole check.
        return True
    markings = bdd.exists(reached, encoding.signal_vars)
    return bdd.count(markings, encoding.place_vars) == state_count


def _decode_pairs(encoding: SymbolicEncoding, relation: int,
                  conflicts: bool, limit: int) -> List[dict]:
    """Enumerate a pair relation into canonical payloads (deduplicated)."""
    bdd = encoding.bdd
    care = tuple(sorted(encoding.place_vars + encoding.primed_place_vars
                        + tuple(encoding.signal_vars)))
    seen = set()
    payloads: List[dict] = []
    for model in bdd.models(relation, care):
        assignment = dict(model)
        marking_a = encoding.decode_marking(assignment)
        marking_b = encoding.decode_marking(assignment, primed=True)
        values = encoding.decode_values(assignment)
        key = (values, *sorted((marking_a, marking_b)))
        if key in seen:
            continue
        seen.add(key)
        if conflicts:
            payloads.append(canonical_conflict(
                values, marking_a, _excitation_of(encoding, marking_a),
                marking_b, _excitation_of(encoding, marking_b)))
        else:
            payloads.append(canonical_pair(values, marking_a, marking_b))
        if len(payloads) > limit:  # safety net; callers pre-check counts
            break
    return sort_conflicts(payloads) if conflicts else sort_pairs(payloads)


def check_coding_symbolic(stg: STG,
                          budget: Optional[ExplorationBudget] = None,
                          witness_limit: int = DEFAULT_WITNESS_LIMIT,
                          name: Optional[str] = None,
                          chaining: bool = True,
                          run: Optional[SymbolicReachability] = None
                          ) -> CodingReport:
    """Check consistency/USC/CSC of ``stg`` without enumerating states.

    ``run`` reuses an existing reachability result (its encoding must be
    for the same STG); otherwise the STG is encoded and explored under
    ``budget``.  Raises
    :class:`~repro.explore.budget.BudgetExceeded` /
    :class:`~repro.symbolic.encode.SymbolicEncodingError` like
    :func:`~repro.symbolic.reach.symbolic_reach`.
    """
    if run is None:
        encoding = encode_stg(stg, name=name)
        run = symbolic_reach(encoding, budget=budget, chaining=chaining)
    else:
        encoding = run.encoding
    bdd = encoding.bdd
    with obs_span("symbolic:coding", spec=encoding.name) as check_span:
        consistent = _consistency(encoding, run.reached, run.state_count)
        usc_relation, csc_relation = _pair_products(encoding, run.reached)
        pair_count_vars = tuple(sorted(
            encoding.place_vars + encoding.primed_place_vars
            + tuple(encoding.signal_vars)))
        usc_pair_count = bdd.count(usc_relation, pair_count_vars) // 2
        csc_conflict_count = bdd.count(csc_relation, pair_count_vars) // 2
        truncated = (usc_pair_count > witness_limit
                     or csc_conflict_count > witness_limit)
        conflicts: List[dict] = []
        usc_pairs: List[dict] = []
        if not truncated:
            usc_pairs = _decode_pairs(encoding, usc_relation,
                                      conflicts=False, limit=witness_limit)
            conflicts = _decode_pairs(encoding, csc_relation,
                                      conflicts=True, limit=witness_limit)
        if check_span is not None:
            check_span.set(states=run.state_count,
                           usc_pairs=usc_pair_count,
                           csc_conflicts=csc_conflict_count,
                           bdd_nodes=bdd.node_count)
    return CodingReport(
        name=encoding.name,
        engine="symbolic",
        states=run.state_count,
        consistent=consistent,
        usc=usc_pair_count == 0,
        csc=csc_conflict_count == 0,
        usc_pair_count=usc_pair_count,
        csc_conflict_count=csc_conflict_count,
        conflicts=conflicts,
        usc_pairs=usc_pairs,
        truncated=truncated,
        levels=run.levels,
        bdd_nodes=bdd.node_count)
