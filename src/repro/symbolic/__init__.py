"""Symbolic (BDD-based) reachability and coding checks.

The third engine beside the explicit packed and tuple explorers: state
sets are reduced ordered BDDs (:mod:`repro.symbolic.bdd`), an STG is
encoded with one boolean variable per place and per signal
(:mod:`repro.symbolic.encode`), reachability is a budgeted image
fixpoint (:mod:`repro.symbolic.reach`) and CSC/USC/consistency are
products of the reachable set with itself (:mod:`repro.symbolic.csc`)
-- no state is ever enumerated, so the cost follows the *structure* of
the state space, not its cardinality.  See ``docs/symbolic.md``.
"""

from .bdd import FALSE, TRUE, BDD
from .csc import (DEFAULT_WITNESS_LIMIT, CodingReport, canonical_conflict,
                  canonical_pair, check_coding_symbolic, sort_conflicts,
                  sort_pairs)
from .encode import (SymbolicEncoding, SymbolicEncodingError,
                     SymbolicOverflowError, SymbolicTransition, encode_stg)
from .reach import SymbolicReachability, symbolic_reach

__all__ = [
    "BDD", "FALSE", "TRUE",
    "SymbolicEncoding", "SymbolicEncodingError", "SymbolicOverflowError",
    "SymbolicTransition", "encode_stg",
    "SymbolicReachability", "symbolic_reach",
    "DEFAULT_WITNESS_LIMIT", "CodingReport", "canonical_conflict",
    "canonical_pair", "check_coding_symbolic", "sort_conflicts",
    "sort_pairs",
]
