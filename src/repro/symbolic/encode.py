"""Boolean encoding of an STG for the symbolic engine.

One BDD variable per Petri place plus one per signal (the signal-coded
view), laid out for locality:

* Places keep the net's declaration order -- for composed chains
  (:mod:`repro.specs.families`) that order is stage-local, which is what
  makes pipeline-shaped reachable sets near-linear as BDDs.
* Each place variable is immediately followed by its *primed* copy (the
  second half of the CSC self-product), so the unprimed -> primed shift
  is an order-preserving :meth:`~repro.symbolic.bdd.BDD.rename` and the
  pair relation ``R(p, s) AND R(p', s)`` stays close to ``|R|`` instead
  of exploding across a split order.
* Each signal variable is placed right after the *home* place of the
  transitions that switch it (the lowest-indexed place any of them
  touches).  A signal's value is a function of nearby stage places;
  parking all signals below every place -- the obvious layout -- makes
  the BDD track each signal across the whole net and blows up
  exponentially in the chain length (measured: ~2.4x nodes per stage on
  ``fifo_chain_N``; with home placement the same sets are linear).

Signals are shared between the two halves of the self-product (a
USC/CSC conflict is two markings with equal codes), so they need no
primed copies -- conjoining the renamed half automatically constrains
the codes equal.

A state is an assignment to (places, signals): the marking bits come
from the token game, the signal bits are propagated forward from the
STG's declared initial values (``.initial_state``; absent signals
default to 0, the same seed the explicit code assignment uses).  For
consistent specifications this forward propagation reproduces exactly
the codes the explicit parity-union-find solver assigns, which is what
the cross-engine parity suite pins; toggle (2-phase) events are handled
uniformly because the signal bit is genuinely part of the state, exactly
like the explicit engine's unfolded ``(marking, values)`` states.

Transitions are *not* folded into one monolithic relation.  Each
transition keeps its structural pieces -- an enabling cube over the
unprimed place variables (built from the packed pre/post masks of
:meth:`repro.petri.net.PetriNet.compile_packed`), the variables it
rewrites, the effect cube that fixes their new values, and a 1-safety
guard -- and the image step applies them per transition
(:mod:`repro.symbolic.reach`).  That keeps every intermediate BDD small
and makes the op sequence (hence node ids, hence every rendering)
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..petri.stg import STG, Direction, SignalEvent, SignalKind
from .bdd import BDD

__all__ = ["SymbolicEncodingError", "SymbolicOverflowError",
           "SymbolicTransition", "SymbolicEncoding", "encode_stg"]


class SymbolicEncodingError(Exception):
    """The STG cannot be encoded for the symbolic engine."""


class SymbolicOverflowError(SymbolicEncodingError):
    """A symbolic image step left the 1-safe regime.

    The symbolic analogue of
    :class:`repro.petri.net.PackedOverflowError`: one variable per place
    can only represent 1-safe behaviour, and the image computation
    detects the violation the moment some reachable state enables a
    transition whose firing would stack a second token.
    """


@dataclass(frozen=True)
class SymbolicTransition:
    """The structural image pieces of one transition.

    ``enabled`` is the cube of unprimed place variables the transition
    consumes from; ``overflow`` the disjunction of its pure-post place
    variables (marked = the firing would stack a token); ``quant`` the
    variables the firing rewrites; ``effect`` the cube fixing their new
    values.  Toggle transitions leave their signal variable out of
    ``quant``/``effect`` -- the image step splits on it instead.
    """

    index: int
    name: str
    signal: str
    direction: Direction
    is_input: bool
    #: Input-place indices (net order) -- the witness decoder re-derives
    #: per-marking excitation from these without touching the BDD.
    pre_places: Tuple[int, ...]
    enabled: int
    overflow: int
    quant: Tuple[int, ...]
    effect: int
    signal_var: int
    #: For rise/fall: the literal of the *pre*-state signal value that
    #: would witness an inconsistency (rise while already high, fall
    #: while already low); ``None`` for toggles, which cannot clash.
    wrong: Optional[int] = None


@dataclass
class SymbolicEncoding:
    """An STG encoded over one BDD manager, ready for reachability.

    ``place_vars[i]`` / ``primed_place_vars[i]`` / ``signal_vars[j]``
    hold the BDD variable index of place *i* (net order), its primed
    copy and signal *j* (declaration order) under the locality layout
    described in the module docstring.
    """

    name: str
    bdd: BDD
    place_names: Tuple[str, ...]
    signals: Tuple[str, ...]
    kinds: Dict[str, SignalKind]
    initial_values: Tuple[int, ...]
    place_vars: Tuple[int, ...]
    primed_place_vars: Tuple[int, ...]
    signal_vars: Tuple[int, ...]
    initial: int
    transitions: Tuple[SymbolicTransition, ...]
    #: (signal, direction value) -> excitation predicate over unprimed
    #: place variables, non-input signals only (the CSC side condition).
    excitation: Dict[Tuple[str, str], int] = field(default_factory=dict)

    @property
    def state_vars(self) -> Tuple[int, ...]:
        """The variables one state assigns: places and signals."""
        return tuple(sorted(self.place_vars + self.signal_vars))

    def prime_mapping(self) -> Dict[int, int]:
        """The order-preserving unprimed -> primed place variable map."""
        return dict(zip(self.place_vars, self.primed_place_vars))

    # -- decoding -------------------------------------------------------
    def decode_marking(self, assignment: Dict[int, int],
                       primed: bool = False) -> Tuple[int, ...]:
        """The marking tuple of one model (primed half on request)."""
        source = self.primed_place_vars if primed else self.place_vars
        return tuple(assignment[var] for var in source)

    def decode_values(self, assignment: Dict[int, int]) -> Tuple[int, ...]:
        """The signal-value tuple of one model."""
        return tuple(assignment[var] for var in self.signal_vars)


def _mask_places(mask: int) -> List[int]:
    places = []
    while mask:
        low = mask & -mask
        places.append(low.bit_length() - 1)
        mask ^= low
    return places


def _layout(packed, stg: STG, signals: Tuple[str, ...]
            ) -> Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[int, ...]]:
    """Assign BDD levels: stage-local places, primed interleave, homed
    signals (see the module docstring)."""
    place_count = len(packed.place_names)
    home: Dict[str, int] = {}
    for t, name in enumerate(packed.transition_names):
        event = stg.event_of(name)
        if not isinstance(event, SignalEvent):
            continue
        touched = _mask_places(packed.pre_masks[t] | packed.post_masks[t])
        anchor = min(touched) if touched else place_count - 1
        current = home.get(event.signal)
        home[event.signal] = anchor if current is None \
            else min(current, anchor)
    by_home: Dict[int, List[int]] = {}
    for j, signal in enumerate(signals):
        by_home.setdefault(home.get(signal, place_count - 1), []).append(j)
    place_vars = [0] * place_count
    primed_vars = [0] * place_count
    signal_vars = [0] * len(signals)
    level = 0
    for p in range(place_count):
        place_vars[p] = level
        primed_vars[p] = level + 1
        level += 2
        for j in by_home.get(p, ()):
            signal_vars[j] = level
            level += 1
    return tuple(place_vars), tuple(primed_vars), tuple(signal_vars)


def encode_stg(stg: STG, name: Optional[str] = None) -> SymbolicEncoding:
    """Encode ``stg`` into a fresh BDD manager.

    Raises :class:`SymbolicEncodingError` when the net falls outside the
    packed (structurally 1-safe) regime, contains dummy transitions, or
    labels a transition with an unknown signal -- the same preconditions
    the packed explicit engine enforces, reported up front.
    """
    packed = stg.net.compile_packed()
    if packed is None:
        raise SymbolicEncodingError(
            f"STG {stg.name!r} is outside the packed regime (weighted arcs "
            "or multi-token places); the symbolic engine needs one boolean "
            "variable per place")
    signals = tuple(s for s, kind in stg.signals.items()
                    if kind != SignalKind.DUMMY)
    signal_index = {s: j for j, s in enumerate(signals)}
    place_count = len(packed.place_names)
    place_vars, primed_vars, signal_vars = _layout(packed, stg, signals)
    bdd = BDD(2 * place_count + len(signals))

    encoding = SymbolicEncoding(
        name=name or stg.name,
        bdd=bdd,
        place_names=packed.place_names,
        signals=signals,
        kinds={s: stg.signals[s] for s in signals},
        initial_values=tuple(stg.initial_values.get(s, 0) for s in signals),
        place_vars=place_vars,
        primed_place_vars=primed_vars,
        signal_vars=signal_vars,
        initial=0,
        transitions=())

    transitions: List[SymbolicTransition] = []
    excitation: Dict[Tuple[str, str], int] = {}
    for t, transition_name in enumerate(packed.transition_names):
        event = stg.event_of(transition_name)
        if not isinstance(event, SignalEvent):
            raise SymbolicEncodingError(
                f"STG contains dummy transition {transition_name!r}; "
                "symbolic analysis needs dummy-free specifications")
        if event.signal not in signal_index:
            raise SymbolicEncodingError(
                f"transition {transition_name!r} is labelled with "
                f"undeclared signal {event.signal!r}")
        pre = packed.pre_masks[t]
        post = packed.post_masks[t]
        enabled = bdd.cube([(place_vars[p], 1)
                            for p in _mask_places(pre)])
        overflow = bdd.disjoin([bdd.var(place_vars[p])
                                for p in _mask_places(post & ~pre)])
        assignment = [(place_vars[p], 0) for p in _mask_places(pre & ~post)] \
            + [(place_vars[p], 1) for p in _mask_places(post & ~pre)]
        sig_var = signal_vars[signal_index[event.signal]]
        wrong: Optional[int] = None
        if event.direction == Direction.RISE:
            assignment.append((sig_var, 1))
            wrong = bdd.var(sig_var)
        elif event.direction == Direction.FALL:
            assignment.append((sig_var, 0))
            wrong = bdd.nvar(sig_var)
        transitions.append(SymbolicTransition(
            index=t, name=transition_name,
            signal=event.signal, direction=event.direction,
            is_input=stg.signals[event.signal] == SignalKind.INPUT,
            pre_places=tuple(_mask_places(pre)),
            enabled=enabled, overflow=overflow,
            quant=tuple(sorted(var for var, _ in assignment)),
            effect=bdd.cube(assignment),
            signal_var=sig_var, wrong=wrong))
        if stg.signals[event.signal] != SignalKind.INPUT:
            key = (event.signal, event.direction.value)
            excitation[key] = bdd.apply_or(excitation.get(key, 0), enabled)

    initial_assignment = [(place_vars[p], packed.initial >> p & 1)
                          for p in range(place_count)]
    initial_assignment += [(signal_vars[j], value)
                           for j, value in enumerate(encoding.initial_values)]
    encoding.initial = bdd.cube(initial_assignment)
    encoding.transitions = tuple(transitions)
    encoding.excitation = excitation
    return encoding
