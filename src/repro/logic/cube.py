"""Cube and cover algebra for two-level logic.

A *cube* is a product term over an ordered set of variables; each position
holds 0 (negative literal), 1 (positive literal) or DC (variable absent).
A *cover* is a set of cubes representing their disjunction.  This small
algebra is all the synthesis flow needs: next-state functions of
asynchronous controllers have a handful of variables, so the emphasis is on
correctness and debuggability rather than on BDD-grade performance.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

DC = 2  # "don't care" position value


@dataclass(frozen=True)
class Cube:
    """A product term; ``values[i]`` in {0, 1, DC} for variable ``i``."""

    values: Tuple[int, ...]

    def __post_init__(self) -> None:
        if any(v not in (0, 1, DC) for v in self.values):
            raise ValueError(f"cube positions must be 0, 1 or DC: {self.values}")

    @staticmethod
    def full(num_vars: int) -> "Cube":
        """The universal cube (tautology) over ``num_vars`` variables."""
        return Cube((DC,) * num_vars)

    @staticmethod
    def from_minterm(minterm: Sequence[int]) -> "Cube":
        return Cube(tuple(minterm))

    @staticmethod
    def parse(text: str) -> "Cube":
        """Parse ``"10-"``-style positional cubes (``-`` = don't care)."""
        mapping = {"0": 0, "1": 1, "-": DC, "x": DC, "X": DC, "2": DC}
        try:
            return Cube(tuple(mapping[ch] for ch in text.strip()))
        except KeyError as exc:
            raise ValueError(f"bad cube character in {text!r}") from exc

    @property
    def num_vars(self) -> int:
        return len(self.values)

    @property
    def literal_count(self) -> int:
        """Number of literals (non-DC positions)."""
        return sum(1 for v in self.values if v != DC)

    def contains(self, minterm: Sequence[int]) -> bool:
        """True when the minterm lies inside this cube."""
        return all(v == DC or v == m for v, m in zip(self.values, minterm))

    def covers(self, other: "Cube") -> bool:
        """True when ``other`` is contained in this cube."""
        return all(v == DC or v == o for v, o in zip(self.values, other.values))

    def intersect(self, other: "Cube") -> Optional["Cube"]:
        """Cube intersection, or None when the cubes are disjoint."""
        result = []
        for a, b in zip(self.values, other.values):
            if a == DC:
                result.append(b)
            elif b == DC or a == b:
                result.append(a)
            else:
                return None
        return Cube(tuple(result))

    def distance(self, other: "Cube") -> int:
        """Number of positions where the cubes take opposite literal values."""
        return sum(1 for a, b in zip(self.values, other.values)
                   if a != DC and b != DC and a != b)

    def merge(self, other: "Cube") -> Optional["Cube"]:
        """Consensus merge for QM: combine two cubes differing in one literal."""
        if self.values == other.values:
            return self
        diff = -1
        for i, (a, b) in enumerate(zip(self.values, other.values)):
            if a == b:
                continue
            if a == DC or b == DC or diff >= 0:
                return None
            diff = i
        merged = list(self.values)
        merged[diff] = DC
        return Cube(tuple(merged))

    def cofactor(self, var: int, value: int) -> Optional["Cube"]:
        """Shannon cofactor with respect to ``var = value``."""
        current = self.values[var]
        if current != DC and current != value:
            return None
        values = list(self.values)
        values[var] = DC
        return Cube(tuple(values))

    def expand_var(self, var: int) -> "Cube":
        """Raise (remove the literal of) one variable."""
        values = list(self.values)
        values[var] = DC
        return Cube(tuple(values))

    def minterms(self) -> Iterator[Tuple[int, ...]]:
        """Enumerate all minterms inside the cube."""
        choices = [(0, 1) if v == DC else (v,) for v in self.values]
        return product(*choices)

    def size(self) -> int:
        """Number of minterms inside the cube."""
        return 1 << sum(1 for v in self.values if v == DC)

    def to_string(self) -> str:
        return "".join("-" if v == DC else str(v) for v in self.values)

    def to_expression(self, names: Sequence[str]) -> str:
        """Render as a product of named literals, e.g. ``a b' c``."""
        parts = []
        for value, name in zip(self.values, names):
            if value == 1:
                parts.append(name)
            elif value == 0:
                parts.append(f"{name}'")
        return " ".join(parts) if parts else "1"

    def __str__(self) -> str:
        return self.to_string()


class Cover:
    """A disjunction of cubes over a fixed variable count."""

    def __init__(self, num_vars: int, cubes: Iterable[Cube] = ()) -> None:
        self.num_vars = num_vars
        self.cubes: List[Cube] = []
        for cube in cubes:
            self.add(cube)

    @staticmethod
    def from_minterms(num_vars: int, minterms: Iterable[Sequence[int]]) -> "Cover":
        return Cover(num_vars, (Cube.from_minterm(m) for m in minterms))

    @staticmethod
    def zero(num_vars: int) -> "Cover":
        """The empty (constant-0) cover."""
        return Cover(num_vars)

    @staticmethod
    def one(num_vars: int) -> "Cover":
        """The universal (constant-1) cover."""
        return Cover(num_vars, [Cube.full(num_vars)])

    def add(self, cube: Cube) -> None:
        if cube.num_vars != self.num_vars:
            raise ValueError("cube arity mismatch")
        self.cubes.append(cube)

    def contains(self, minterm: Sequence[int]) -> bool:
        return any(cube.contains(minterm) for cube in self.cubes)

    def covers_cube(self, cube: Cube) -> bool:
        """Exact containment test by minterm enumeration (small covers only)."""
        return all(self.contains(m) for m in cube.minterms())

    @property
    def is_constant_zero(self) -> bool:
        return not self.cubes

    @property
    def is_constant_one(self) -> bool:
        return any(cube.literal_count == 0 for cube in self.cubes)

    @property
    def literal_count(self) -> int:
        """Total SOP literals, the classic area estimate."""
        return sum(cube.literal_count for cube in self.cubes)

    @property
    def cube_count(self) -> int:
        return len(self.cubes)

    def single_literal(self) -> Optional[Tuple[int, int]]:
        """If the cover is exactly one literal, return ``(var, polarity)``."""
        if len(self.cubes) != 1 or self.cubes[0].literal_count != 1:
            return None
        for var, value in enumerate(self.cubes[0].values):
            if value != DC:
                return var, value
        return None

    def support(self) -> Set[int]:
        """Variables appearing in at least one cube."""
        return {i for cube in self.cubes for i, v in enumerate(cube.values) if v != DC}

    def remove_redundant(self) -> "Cover":
        """Drop cubes contained in single other cubes (cheap irredundancy)."""
        kept: List[Cube] = []
        for cube in sorted(self.cubes, key=lambda c: -c.size()):
            if not any(other.covers(cube) for other in kept):
                kept.append(cube)
        return Cover(self.num_vars, kept)

    def to_expression(self, names: Sequence[str]) -> str:
        if self.is_constant_zero:
            return "0"
        if self.is_constant_one:
            return "1"
        return " + ".join(cube.to_expression(names) for cube in self.cubes)

    def __iter__(self) -> Iterator[Cube]:
        return iter(self.cubes)

    def __len__(self) -> int:
        return len(self.cubes)

    def __str__(self) -> str:
        return " + ".join(str(c) for c in self.cubes) if self.cubes else "0"
