"""Next-state function extraction from a state graph.

For each non-input signal ``a`` the next-state function is::

    F_a(s) = 1  iff  a+ is enabled in s, or v_a(s) = 1 and a- is not enabled

States whose code appears in both the ON and OFF sets witness a CSC conflict
for that signal; the extractor reports them instead of silently producing an
unimplementable cover.  Unreachable codes form the don't-care set exploited
by minimization (this is exactly how concurrency reduction helps logic:
fewer reachable states, larger DC set).

Extraction runs on packed integer codes (bit i = signal i, shared with
:meth:`repro.sg.graph.StateGraph.code_int` and the fast minimizer); the
tuple-minterm views ``on``/``off``/``dc``/``conflicts`` are materialized
lazily for the synthesis layer and the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..petri.stg import Direction, SignalKind
from ..sg.graph import State, StateGraph
from .cube import Cover
from .minimize import (minimize, minimize_fast_ints, _unpack_cube,
                       unpack_minterm)

Minterm = Tuple[int, ...]


class NextStateFunction:
    """ON/OFF/DC characterisation of one signal's next-state function.

    The authoritative representation is packed integers (``on_ints`` and
    friends); the tuple-set views are computed on first access.
    """

    __slots__ = ("signal", "variables", "on_ints", "off_ints", "dc_ints",
                 "conflict_ints", "_tuple_views")

    def __init__(self, signal: str, variables: List[str],
                 on_ints: FrozenSet[int], off_ints: FrozenSet[int],
                 dc_ints: FrozenSet[int], conflict_ints: FrozenSet[int]) -> None:
        self.signal = signal
        self.variables = variables
        self.on_ints = on_ints
        self.off_ints = off_ints
        self.dc_ints = dc_ints
        self.conflict_ints = conflict_ints
        self._tuple_views: Dict[str, Set[Minterm]] = {}

    def _view(self, name: str, ints: FrozenSet[int]) -> Set[Minterm]:
        view = self._tuple_views.get(name)
        if view is None:
            n = len(self.variables)
            view = {unpack_minterm(m, n) for m in ints}
            self._tuple_views[name] = view
        return view

    @property
    def on(self) -> Set[Minterm]:
        return self._view("on", self.on_ints)

    @property
    def off(self) -> Set[Minterm]:
        return self._view("off", self.off_ints)

    @property
    def dc(self) -> Set[Minterm]:
        return self._view("dc", self.dc_ints)

    @property
    def conflicts(self) -> Set[Minterm]:
        return self._view("conflicts", self.conflict_ints)

    @property
    def has_csc_conflict(self) -> bool:
        return bool(self.conflict_ints)

    @property
    def num_vars(self) -> int:
        return len(self.variables)

    def resolved_ints(self, conflict_policy: str = "on"
                      ) -> Tuple[FrozenSet[int], FrozenSet[int]]:
        """(ON, DC) with conflicting codes folded in per the policy."""
        if not self.conflict_ints:
            return self.on_ints, self.dc_ints
        if conflict_policy == "on":
            return self.on_ints | self.conflict_ints, self.dc_ints
        if conflict_policy == "dc":
            return self.on_ints, self.dc_ints | self.conflict_ints
        raise ValueError(f"unknown conflict policy {conflict_policy!r}")

    def minimized(self, exact: bool = False, conflict_policy: str = "on",
                  fast: bool = False) -> Cover:
        """Minimal cover of the function.

        With conflicts present an exact cover does not exist; the policy
        decides how conflicting codes are treated for *estimation*:
        ``"on"`` treats them as ON (optimistic), ``"dc"`` as don't care.
        ``fast=True`` uses the expand-and-cover heuristic minimizer (for the
        exploration cost function).
        """
        on_ints, dc_ints = self.resolved_ints(conflict_policy)
        n = self.num_vars
        if fast:
            if not on_ints:
                return Cover.zero(n)
            if len(on_ints | dc_ints) == 1 << n:
                return Cover.one(n)
            chosen = minimize_fast_ints(n, on_ints, dc_ints - on_ints)
            return Cover(n, [_unpack_cube(p, n) for p in chosen])
        on = {unpack_minterm(m, n) for m in on_ints}
        dc = {unpack_minterm(m, n) for m in dc_ints}
        return minimize(n, on, dc, exact=exact)


def _rising_falling_labels(sg: StateGraph, signal: str) -> Tuple[List[str], List[str]]:
    rising, falling = [], []
    for label in sg.labels_of_signal(signal):
        event = sg.events[label]
        if event.direction == Direction.RISE:
            rising.append(label)
        elif event.direction == Direction.FALL:
            falling.append(label)
        else:
            raise ValueError(
                f"toggle event {label!r}: derive logic from a 4-phase refinement")
    return rising, falling


def _excitation_masks(sg: StateGraph) -> List[Tuple[int, int, int]]:
    """Per state: (code, rising-signal bitmask, falling-signal bitmask).

    One pass over the compiled adjacency serves the extraction of every
    signal at once.
    """
    compiled = sg.compiled()
    label_bits_rise = []
    label_bits_fall = []
    for lid in range(len(compiled.labels)):
        direction = compiled.event_direction[lid]
        bit = 1 << compiled.event_signal[lid]
        # Toggle labels contribute to neither mask; extraction rejects the
        # toggled signal itself up front (_rising_falling_labels), and a
        # toggle on an *input* signal never blocks extracting the others.
        label_bits_rise.append(bit if direction == Direction.RISE else 0)
        label_bits_fall.append(bit if direction == Direction.FALL else 0)
    rows = []
    for sid, out in enumerate(compiled.succ):
        code = compiled.code_ints[sid]
        if code < 0:
            sg.code_of(compiled.states[sid])  # raises StateGraphError
        rise = fall = 0
        for lid in out:
            rise |= label_bits_rise[lid]
            fall |= label_bits_fall[lid]
        rows.append((code, rise, fall))
    return rows


def _extract_from_masks(sg: StateGraph, signal: str,
                        rows: List[Tuple[int, int, int]]) -> NextStateFunction:
    bit = 1 << sg.signal_index(signal)
    on: Set[int] = set()
    off: Set[int] = set()
    for code, rise, fall in rows:
        if rise & bit or (code & bit and not fall & bit):
            on.add(code)
        else:
            off.add(code)
    conflicts = on & off
    on -= conflicts
    off -= conflicts
    num_vars = len(sg.signals)
    dc = set(range(1 << num_vars)) - on - off - conflicts
    return NextStateFunction(signal=signal, variables=list(sg.signals),
                             on_ints=frozenset(on), off_ints=frozenset(off),
                             dc_ints=frozenset(dc),
                             conflict_ints=frozenset(conflicts))


def extract_function(sg: StateGraph, signal: str) -> NextStateFunction:
    """Build the next-state function of one non-input signal."""
    if sg.kinds[signal] == SignalKind.INPUT:
        raise ValueError(f"signal {signal!r} is an input; nothing to implement")
    _rising_falling_labels(sg, signal)  # reject toggle events for this signal
    return _extract_from_masks(sg, signal, _excitation_masks(sg))


def extract_all_functions(sg: StateGraph) -> Dict[str, NextStateFunction]:
    """Next-state functions for every output and internal signal."""
    targets = [signal for signal in sg.signals
               if sg.kinds[signal] in (SignalKind.OUTPUT, SignalKind.INTERNAL)]
    if not targets:
        return {}
    for signal in targets:
        _rising_falling_labels(sg, signal)  # reject toggles on implemented signals
    rows = _excitation_masks(sg)
    return {signal: _extract_from_masks(sg, signal, rows) for signal in targets}


@dataclass
class SetResetFunctions:
    """Excitation (set/reset) covers for a generalized C-element implementation."""

    signal: str
    variables: List[str]
    set_cover: Cover
    reset_cover: Cover


def extract_set_reset(sg: StateGraph, signal: str,
                      exact: bool = False) -> SetResetFunctions:
    """Covers of ER(a+) and ER(a-) with quiescent states as don't care.

    Valid only when the signal has no CSC conflict; raises otherwise.
    """
    function = extract_function(sg, signal)
    if function.has_csc_conflict:
        raise ValueError(f"signal {signal!r} has CSC conflicts; resolve first")
    rising, falling = _rising_falling_labels(sg, signal)
    index = sg.signal_index(signal)
    set_on: Set[Minterm] = set()
    reset_on: Set[Minterm] = set()
    stable_high: Set[Minterm] = set()
    stable_low: Set[Minterm] = set()
    for state in sg.states:
        code = sg.code_of(state)
        if any(sg.target(state, label) is not None for label in rising):
            set_on.add(code)
        elif any(sg.target(state, label) is not None for label in falling):
            reset_on.add(code)
        elif code[index] == 1:
            stable_high.add(code)
        else:
            stable_low.add(code)
    reachable = set_on | reset_on | stable_high | stable_low
    unreachable = {unpack_minterm(m, len(sg.signals))
                   for m in range(1 << len(sg.signals))} - reachable
    # The set network may stay high while the signal is high (the C element
    # holds), but must be low in the reset region and at stable 0; dually for
    # the reset network.  Unreachable codes are free for both.
    set_cover = minimize(len(sg.signals), set_on,
                         stable_high | unreachable, exact=exact)
    reset_cover = minimize(len(sg.signals), reset_on,
                           stable_low | unreachable, exact=exact)
    return SetResetFunctions(signal=signal, variables=list(sg.signals),
                             set_cover=set_cover, reset_cover=reset_cover)
