"""Next-state function extraction from a state graph.

For each non-input signal ``a`` the next-state function is::

    F_a(s) = 1  iff  a+ is enabled in s, or v_a(s) = 1 and a- is not enabled

States whose code appears in both the ON and OFF sets witness a CSC conflict
for that signal; the extractor reports them instead of silently producing an
unimplementable cover.  Unreachable codes form the don't-care set exploited
by minimization (this is exactly how concurrency reduction helps logic:
fewer reachable states, larger DC set).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..petri.stg import Direction, SignalKind
from ..sg.graph import State, StateGraph
from .cube import Cover
from .minimize import complement_minterms, minimize, minimize_fast

Minterm = Tuple[int, ...]


@dataclass
class NextStateFunction:
    """ON/OFF/DC characterisation of one signal's next-state function."""

    signal: str
    variables: List[str]
    on: Set[Minterm]
    off: Set[Minterm]
    dc: Set[Minterm]
    conflicts: Set[Minterm]

    @property
    def has_csc_conflict(self) -> bool:
        return bool(self.conflicts)

    @property
    def num_vars(self) -> int:
        return len(self.variables)

    def minimized(self, exact: bool = False, conflict_policy: str = "on",
                  fast: bool = False) -> Cover:
        """Minimal cover of the function.

        With conflicts present an exact cover does not exist; the policy
        decides how conflicting codes are treated for *estimation*:
        ``"on"`` treats them as ON (optimistic), ``"dc"`` as don't care.
        ``fast=True`` uses the expand-and-cover heuristic minimizer (for the
        exploration cost function).
        """
        on = set(self.on)
        dc = set(self.dc)
        if self.conflicts:
            if conflict_policy == "on":
                on |= self.conflicts
            elif conflict_policy == "dc":
                dc |= self.conflicts
            else:
                raise ValueError(f"unknown conflict policy {conflict_policy!r}")
        if fast:
            return minimize_fast(self.num_vars, on, dc)
        return minimize(self.num_vars, on, dc, exact=exact)


def _rising_falling_labels(sg: StateGraph, signal: str) -> Tuple[List[str], List[str]]:
    rising, falling = [], []
    for label in sg.labels_of_signal(signal):
        event = sg.events[label]
        if event.direction == Direction.RISE:
            rising.append(label)
        elif event.direction == Direction.FALL:
            falling.append(label)
        else:
            raise ValueError(
                f"toggle event {label!r}: derive logic from a 4-phase refinement")
    return rising, falling


def extract_function(sg: StateGraph, signal: str) -> NextStateFunction:
    """Build the next-state function of one non-input signal."""
    if sg.kinds[signal] == SignalKind.INPUT:
        raise ValueError(f"signal {signal!r} is an input; nothing to implement")
    rising, falling = _rising_falling_labels(sg, signal)
    index = sg.signal_index(signal)
    on_codes: Set[Minterm] = set()
    off_codes: Set[Minterm] = set()
    for state in sg.states:
        code = sg.code_of(state)
        rise_enabled = any(sg.target(state, label) is not None for label in rising)
        fall_enabled = any(sg.target(state, label) is not None for label in falling)
        next_value = 1 if (rise_enabled or (code[index] == 1 and not fall_enabled)) else 0
        (on_codes if next_value else off_codes).add(code)
    conflicts = on_codes & off_codes
    on_codes -= conflicts
    off_codes -= conflicts
    dc = complement_minterms(len(sg.signals), on_codes | conflicts, off_codes | conflicts)
    dc -= on_codes | off_codes
    return NextStateFunction(signal=signal, variables=list(sg.signals),
                             on=on_codes, off=off_codes, dc=dc, conflicts=conflicts)


def extract_all_functions(sg: StateGraph) -> Dict[str, NextStateFunction]:
    """Next-state functions for every output and internal signal."""
    return {signal: extract_function(sg, signal) for signal in sg.signals
            if sg.kinds[signal] in (SignalKind.OUTPUT, SignalKind.INTERNAL)}


@dataclass
class SetResetFunctions:
    """Excitation (set/reset) covers for a generalized C-element implementation."""

    signal: str
    variables: List[str]
    set_cover: Cover
    reset_cover: Cover


def extract_set_reset(sg: StateGraph, signal: str,
                      exact: bool = False) -> SetResetFunctions:
    """Covers of ER(a+) and ER(a-) with quiescent states as don't care.

    Valid only when the signal has no CSC conflict; raises otherwise.
    """
    function = extract_function(sg, signal)
    if function.has_csc_conflict:
        raise ValueError(f"signal {signal!r} has CSC conflicts; resolve first")
    rising, falling = _rising_falling_labels(sg, signal)
    index = sg.signal_index(signal)
    set_on: Set[Minterm] = set()
    reset_on: Set[Minterm] = set()
    stable_high: Set[Minterm] = set()
    stable_low: Set[Minterm] = set()
    for state in sg.states:
        code = sg.code_of(state)
        if any(sg.target(state, label) is not None for label in rising):
            set_on.add(code)
        elif any(sg.target(state, label) is not None for label in falling):
            reset_on.add(code)
        elif code[index] == 1:
            stable_high.add(code)
        else:
            stable_low.add(code)
    reachable = set_on | reset_on | stable_high | stable_low
    unreachable = complement_minterms(len(sg.signals), reachable, set())
    # The set network may stay high while the signal is high (the C element
    # holds), but must be low in the reset region and at stable 0; dually for
    # the reset network.  Unreachable codes are free for both.
    set_cover = minimize(len(sg.signals), set_on,
                         stable_high | unreachable, exact=exact)
    reset_cover = minimize(len(sg.signals), reset_on,
                           stable_low | unreachable, exact=exact)
    return SetResetFunctions(signal=signal, variables=list(sg.signals),
                             set_cover=set_cover, reset_cover=reset_cover)
