"""Two-level logic: cubes, Quine-McCluskey, next-state functions, complexity."""
