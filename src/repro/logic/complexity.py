"""Heuristic logic-complexity estimation.

Section 7 of the paper motivates a cheap cost function: exact cost (state
signal insertion + decomposition + technology mapping) is too expensive to
evaluate at every step of the exploration.  The estimator here mirrors the
paper's observations:

* fewer reachable states -> larger don't-care set -> smaller covers;
* fewer CSC conflicts -> less state-signal logic later;
* ordering one signal after another may *grow* the support of its function.

The estimate is the total SOP literal count over all non-input signals, with
conflicting codes treated optimistically plus a fixed per-conflict penalty
that stands in for the state signals that will have to be inserted.

The fast path never leaves the packed-integer representation: extraction
yields int minterm sets, and the literal count comes from the memoized fast
minimizer (:func:`repro.logic.minimize.fast_literal_count`), so sibling SGs
in the exploration sharing a signal's (ON, DC) sets hit the cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .. import engine
from ..sg.graph import StateGraph
from .functions import extract_all_functions
from .minimize import fast_literal_count

#: Literal-equivalent penalty for each state code involved in a CSC conflict.
CSC_CODE_PENALTY = 4


@dataclass(frozen=True)
class ComplexityEstimate:
    """Breakdown of the heuristic complexity of an SG's logic."""

    literals: int
    csc_conflict_codes: int
    per_signal_literals: Dict[str, int]

    @property
    def total(self) -> int:
        return self.literals + CSC_CODE_PENALTY * self.csc_conflict_codes


#: Memo for per-function QM literal counts (the fast path memoizes inside
#: the minimizer itself); reductions of unrelated events often leave a
#: signal's (ON, DC) pair untouched, so hits are common.
_LITERAL_CACHE: Dict[tuple, int] = engine.register_cache({}, name="logic-literal-count")


def _cached_literals(function, fast: bool) -> int:
    on_ints, dc_ints = function.resolved_ints("on")
    if fast:
        return fast_literal_count(function.num_vars, on_ints, dc_ints)
    key = (function.num_vars, on_ints, dc_ints)
    cached = _LITERAL_CACHE.get(key) if engine.packed_memo_enabled() else None
    if cached is None:
        cached = function.minimized(conflict_policy="on", fast=False).literal_count
        if engine.packed_memo_enabled():
            if len(_LITERAL_CACHE) > 100_000:
                _LITERAL_CACHE.clear()
            _LITERAL_CACHE[key] = cached
    return cached


def estimate_logic_complexity(sg: StateGraph, exact: bool = False,
                              fast: bool = True) -> ComplexityEstimate:
    """Estimate implementation complexity of every non-input signal.

    ``fast=True`` (the default) uses the heuristic expand-and-cover
    minimizer; pass ``fast=False, exact=True`` for QM-quality counts.
    """
    per_signal: Dict[str, int] = {}
    conflict_codes = 0
    for signal, function in extract_all_functions(sg).items():
        if fast and not exact:
            per_signal[signal] = _cached_literals(function, fast=True)
        else:
            cover = function.minimized(exact=exact, conflict_policy="on")
            per_signal[signal] = cover.literal_count
        conflict_codes += len(function.conflict_ints)
    return ComplexityEstimate(
        literals=sum(per_signal.values()),
        csc_conflict_codes=conflict_codes,
        per_signal_literals=per_signal,
    )
