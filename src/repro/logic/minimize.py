"""Two-level logic minimization.

Two engines behind one API:

* :func:`minimize` -- Quine-McCluskey prime generation (on packed integer
  cubes) followed by essential-prime extraction and greedy or exact
  covering.  Used for final synthesis where cover quality matters.
* :func:`minimize_fast` -- an espresso-flavoured expand-and-cover heuristic
  (greedily raise literals of each ON minterm against the OFF set, then
  greedy set cover).  Linear-ish in |ON| x |OFF| and used by the cost
  function inside the exploration loop, where it runs thousands of times.

Cubes are packed as ``(mask, value)`` integer pairs internally -- bit i of
``mask`` set means variable i is a literal, whose polarity is bit i of
``value`` -- and converted to :class:`~repro.logic.cube.Cube` at the API
boundary.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .cube import DC, Cube, Cover

Minterm = Tuple[int, ...]
PackedCube = Tuple[int, int]  # (mask, value)


class MinimizationError(Exception):
    """Raised on contradictory ON/DC input."""


def _normalise(num_vars: int, minterms: Iterable[Sequence[int]]) -> Set[Minterm]:
    result: Set[Minterm] = set()
    for minterm in minterms:
        term = tuple(minterm)
        if len(term) != num_vars or any(v not in (0, 1) for v in term):
            raise MinimizationError(f"bad minterm {term!r} for {num_vars} variables")
        result.add(term)
    return result


def _pack(minterm: Minterm) -> int:
    value = 0
    for i, bit in enumerate(minterm):
        if bit:
            value |= 1 << i
    return value


def _unpack_cube(packed: PackedCube, num_vars: int) -> Cube:
    mask, value = packed
    positions = []
    for i in range(num_vars):
        bit = 1 << i
        if mask & bit:
            positions.append(1 if value & bit else 0)
        else:
            positions.append(DC)
    return Cube(tuple(positions))


def _pack_cube(cube: Cube) -> PackedCube:
    mask = value = 0
    for i, v in enumerate(cube.values):
        if v != DC:
            mask |= 1 << i
            if v == 1:
                value |= 1 << i
    return mask, value


def _contains(packed: PackedCube, minterm_int: int) -> bool:
    mask, value = packed
    return (minterm_int ^ value) & mask == 0


def prime_implicants(num_vars: int, on: Iterable[Sequence[int]],
                     dc: Iterable[Sequence[int]] = ()) -> List[Cube]:
    """All prime implicants of ON + DC (Quine-McCluskey on packed cubes)."""
    on_set = _normalise(num_vars, on)
    dc_set = _normalise(num_vars, dc)
    current: Set[PackedCube] = {((1 << num_vars) - 1, _pack(m))
                                for m in on_set | dc_set}
    primes: Set[PackedCube] = set()
    while current:
        merged: Set[PackedCube] = set()
        used: Set[PackedCube] = set()
        by_group: Dict[Tuple[int, int], List[PackedCube]] = {}
        for cube in current:
            mask, value = cube
            by_group.setdefault((mask, bin(value).count("1")), []).append(cube)
        for (mask, ones), group in by_group.items():
            neighbours = by_group.get((mask, ones + 1), [])
            for cube in group:
                value = cube[1]
                for other in neighbours:
                    diff = value ^ other[1]
                    if diff & (diff - 1) == 0:  # single differing bit
                        merged.add((mask & ~diff, value & ~diff))
                        used.add(cube)
                        used.add(other)
        primes.update(current - used)
        current = merged
    cubes = [_unpack_cube(p, num_vars) for p in primes]
    return sorted(cubes, key=lambda c: (c.literal_count, c.to_string()))


def _essential_and_greedy(primes: List[PackedCube], on_ints: Set[int],
                          num_vars: int) -> List[PackedCube]:
    """Essential primes first, then greedy largest-coverage selection."""
    coverage: Dict[int, List[PackedCube]] = {m: [] for m in on_ints}
    for prime in primes:
        for minterm in on_ints:
            if _contains(prime, minterm):
                coverage[minterm].append(prime)
    for minterm, covering in coverage.items():
        if not covering:
            raise MinimizationError(f"minterm {minterm:b} not covered by any prime")
    selected: List[PackedCube] = []
    for minterm, covering in coverage.items():
        if len(covering) == 1 and covering[0] not in selected:
            selected.append(covering[0])
    uncovered = {m for m in on_ints
                 if not any(_contains(p, m) for p in selected)}
    while uncovered:
        def gain(prime: PackedCube) -> Tuple[int, int]:
            return (sum(1 for m in uncovered if _contains(prime, m)),
                    -bin(prime[0]).count("1"))
        best = max(primes, key=gain)
        gained = {m for m in uncovered if _contains(best, m)}
        if not gained:
            raise MinimizationError("greedy covering stalled")
        selected.append(best)
        uncovered -= gained
    return selected


def _exact_cover(primes: List[PackedCube], on_ints: Set[int],
                 budget: int = 200_000) -> Optional[List[PackedCube]]:
    """Branch-and-bound minimum-literal covering; None when budget exceeded."""
    minterms = sorted(on_ints)
    cover_sets = [frozenset(m for m in minterms if _contains(p, m)) for p in primes]
    literal_cost = [bin(p[0]).count("1") for p in primes]
    order = sorted(range(len(primes)),
                   key=lambda i: (literal_cost[i], -len(cover_sets[i])))
    best_cost = float("inf")
    best: Optional[List[int]] = None
    steps = 0

    def recurse(uncovered: FrozenSet[int], chosen: List[int], cost: int) -> None:
        nonlocal best_cost, best, steps
        steps += 1
        if steps > budget:
            raise TimeoutError
        if cost >= best_cost:
            return
        if not uncovered:
            best_cost, best = cost, list(chosen)
            return
        target = min(uncovered)
        for i in order:
            if target in cover_sets[i]:
                chosen.append(i)
                recurse(uncovered - cover_sets[i], chosen, cost + literal_cost[i])
                chosen.pop()

    try:
        recurse(frozenset(minterms), [], 0)
    except TimeoutError:
        return None
    return [primes[i] for i in best] if best is not None else None


def minimize(num_vars: int, on: Iterable[Sequence[int]],
             dc: Iterable[Sequence[int]] = (), exact: bool = False) -> Cover:
    """Minimal (or near-minimal) SOP cover of ON with DC flexibility.

    ``exact=True`` attempts branch-and-bound minimum-literal covering over
    the full prime set and falls back to the greedy heuristic on blow-up.
    """
    on_set = _normalise(num_vars, on)
    dc_set = _normalise(num_vars, dc) - on_set
    if not on_set:
        return Cover.zero(num_vars)
    if len(on_set | dc_set) == 1 << num_vars:
        return Cover.one(num_vars)
    on_ints = {_pack(m) for m in on_set}
    primes = [_pack_cube(c) for c in prime_implicants(num_vars, on_set, dc_set)]
    chosen: Optional[List[PackedCube]] = None
    if exact:
        chosen = _exact_cover(primes, on_ints)
    if chosen is None:
        chosen = _essential_and_greedy(primes, on_ints, num_vars)
    cubes = [_unpack_cube(p, num_vars) for p in chosen]
    return Cover(num_vars, cubes).remove_redundant()


def minimize_fast(num_vars: int, on: Iterable[Sequence[int]],
                  dc: Iterable[Sequence[int]] = ()) -> Cover:
    """Espresso-flavoured heuristic cover: greedy expand + greedy cover.

    Each ON minterm is expanded by raising literals (most-shared variables
    first) while staying disjoint from the OFF set; the expanded cubes then
    greedily cover the ON set.  Roughly |ON| x |OFF| x n work; the result is
    a valid (irredundant-ish) cover, typically within a literal or two of
    the QM result on controller-sized functions.
    """
    on_set = _normalise(num_vars, on)
    dc_set = _normalise(num_vars, dc) - on_set
    if not on_set:
        return Cover.zero(num_vars)
    if len(on_set | dc_set) == 1 << num_vars:
        return Cover.one(num_vars)
    care_off = [_pack(m) for m in _all_minterms(num_vars)
                if m not in on_set and m not in dc_set]
    full_mask = (1 << num_vars) - 1
    expanded: List[PackedCube] = []
    seen: Set[PackedCube] = set()
    for minterm in sorted(on_set):
        mask, value = full_mask, _pack(minterm)
        for i in range(num_vars):
            bit = 1 << i
            trial_mask = mask & ~bit
            trial_value = value & ~bit
            if not any((m ^ trial_value) & trial_mask == 0 for m in care_off):
                mask, value = trial_mask, trial_value
        cube = (mask, value)
        if cube not in seen:
            seen.add(cube)
            expanded.append(cube)
    uncovered = {_pack(m) for m in on_set}
    chosen: List[PackedCube] = []
    while uncovered:
        best = max(expanded,
                   key=lambda c: (sum(1 for m in uncovered if _contains(c, m)),
                                  -bin(c[0]).count("1")))
        gained = {m for m in uncovered if _contains(best, m)}
        if not gained:
            raise MinimizationError("fast covering stalled")
        chosen.append(best)
        uncovered -= gained
    cubes = [_unpack_cube(p, num_vars) for p in chosen]
    return Cover(num_vars, cubes)


def _all_minterms(num_vars: int) -> List[Minterm]:
    from itertools import product as _product
    return list(_product((0, 1), repeat=num_vars))


def verify_cover(cover: Cover, on: Iterable[Sequence[int]],
                 off: Iterable[Sequence[int]]) -> bool:
    """Check a cover: contains every ON minterm, avoids every OFF minterm."""
    return (all(cover.contains(m) for m in on)
            and not any(cover.contains(m) for m in off))


def complement_minterms(num_vars: int, on: Set[Minterm], dc: Set[Minterm]) -> Set[Minterm]:
    """All minterms outside ON and DC (the OFF set) -- exponential, small n only."""
    return {m for m in _all_minterms(num_vars) if m not in on and m not in dc}
