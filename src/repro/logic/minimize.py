"""Two-level logic minimization.

Two engines behind one API:

* :func:`minimize` -- Quine-McCluskey prime generation (on packed integer
  cubes) followed by essential-prime extraction and greedy or exact
  covering.  Used for final synthesis where cover quality matters.
* :func:`minimize_fast` -- an espresso-flavoured expand-and-cover heuristic
  (greedily raise literals of each ON minterm against the OFF set, then
  greedy set cover).  Linear-ish in |ON| x |OFF| and used by the cost
  function inside the exploration loop, where it runs thousands of times.

Cubes are packed as ``(mask, value)`` integer pairs internally -- bit i of
``mask`` set means variable i is a literal, whose polarity is bit i of
``value`` -- and converted to :class:`~repro.logic.cube.Cube` at the API
boundary.  The fast engine also accepts minterms packed as single integers
(bit i = variable i, the same convention the state-graph layer uses for
state codes) via :func:`minimize_fast_ints`, and memoizes covers keyed on
the packed ON/DC sets so beam-search siblings sharing subproblems do not
recompute them.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .. import engine
from .cube import DC, Cube, Cover

Minterm = Tuple[int, ...]
PackedCube = Tuple[int, int]  # (mask, value)


class MinimizationError(Exception):
    """Raised on contradictory ON/DC input."""


def _normalise(num_vars: int, minterms: Iterable[Sequence[int]]) -> Set[Minterm]:
    result: Set[Minterm] = set()
    for minterm in minterms:
        term = tuple(minterm)
        if len(term) != num_vars or any(v not in (0, 1) for v in term):
            raise MinimizationError(f"bad minterm {term!r} for {num_vars} variables")
        result.add(term)
    return result


def _pack(minterm: Minterm) -> int:
    value = 0
    for i, bit in enumerate(minterm):
        if bit:
            value |= 1 << i
    return value


def unpack_minterm(packed: int, num_vars: int) -> Minterm:
    """Inverse of packing: integer minterm back to a 0/1 tuple (bit i = var i)."""
    return tuple((packed >> i) & 1 for i in range(num_vars))


def _unpack_cube(packed: PackedCube, num_vars: int) -> Cube:
    mask, value = packed
    positions = []
    for i in range(num_vars):
        bit = 1 << i
        if mask & bit:
            positions.append(1 if value & bit else 0)
        else:
            positions.append(DC)
    return Cube(tuple(positions))


def _pack_cube(cube: Cube) -> PackedCube:
    mask = value = 0
    for i, v in enumerate(cube.values):
        if v != DC:
            mask |= 1 << i
            if v == 1:
                value |= 1 << i
    return mask, value


def _contains(packed: PackedCube, minterm_int: int) -> bool:
    mask, value = packed
    return (minterm_int ^ value) & mask == 0


def prime_implicants(num_vars: int, on: Iterable[Sequence[int]],
                     dc: Iterable[Sequence[int]] = ()) -> List[Cube]:
    """All prime implicants of ON + DC (Quine-McCluskey on packed cubes)."""
    on_set = _normalise(num_vars, on)
    dc_set = _normalise(num_vars, dc)
    current: Set[PackedCube] = {((1 << num_vars) - 1, _pack(m))
                                for m in on_set | dc_set}
    primes: Set[PackedCube] = set()
    while current:
        merged: Set[PackedCube] = set()
        used: Set[PackedCube] = set()
        # Cubes merge when they share a mask and differ in one value bit, so
        # a per-mask value set turns the pairing into O(cubes x variables)
        # membership tests instead of scanning group x neighbour-group.
        by_mask: Dict[int, Set[int]] = {}
        for mask, value in current:
            by_mask.setdefault(mask, set()).add(value)
        for mask, values in by_mask.items():
            for value in values:
                bits = mask & ~value
                while bits:
                    bit = bits & -bits
                    bits ^= bit
                    if value | bit in values:
                        merged.add((mask & ~bit, value))
                        used.add((mask, value))
                        used.add((mask, value | bit))
        primes.update(current - used)
        current = merged
    cubes = [_unpack_cube(p, num_vars) for p in primes]
    return sorted(cubes, key=lambda c: (c.literal_count, c.to_string()))


def _essential_and_greedy(primes: List[PackedCube], on_ints: Set[int],
                          num_vars: int) -> List[PackedCube]:
    """Essential primes first, then greedy largest-coverage selection.

    ``primes`` must arrive in the deterministic sorted-prime order produced
    by :func:`prime_implicants`; minterms are processed in sorted order and
    ``max`` ties resolve to the earliest prime in that order, so the chosen
    cover is identical across runs.
    """
    minterms = sorted(on_ints)
    coverage: Dict[int, List[PackedCube]] = {
        m: [p for p in primes if _contains(p, m)] for m in minterms}
    for minterm, covering in coverage.items():
        if not covering:
            raise MinimizationError(f"minterm {minterm:b} not covered by any prime")
    selected: List[PackedCube] = []
    selected_set: Set[PackedCube] = set()
    for minterm in minterms:
        covering = coverage[minterm]
        if len(covering) == 1 and covering[0] not in selected_set:
            selected.append(covering[0])
            selected_set.add(covering[0])
    uncovered = {m for m in minterms
                 if not any(_contains(p, m) for p in selected)}
    while uncovered:
        def gain(prime: PackedCube) -> Tuple[int, int]:
            return (sum(1 for m in uncovered if _contains(prime, m)),
                    -bin(prime[0]).count("1"))
        best = max(primes, key=gain)
        gained = {m for m in uncovered if _contains(best, m)}
        if not gained:
            raise MinimizationError("greedy covering stalled")
        selected.append(best)
        uncovered -= gained
    return selected


def _exact_cover(primes: List[PackedCube], on_ints: Set[int],
                 budget: int = 200_000) -> Optional[List[PackedCube]]:
    """Branch-and-bound minimum-literal covering; None when budget exceeded."""
    minterms = sorted(on_ints)
    cover_sets = [frozenset(m for m in minterms if _contains(p, m)) for p in primes]
    literal_cost = [bin(p[0]).count("1") for p in primes]
    order = sorted(range(len(primes)),
                   key=lambda i: (literal_cost[i], -len(cover_sets[i])))
    best_cost = float("inf")
    best: Optional[List[int]] = None
    steps = 0

    def recurse(uncovered: FrozenSet[int], chosen: List[int], cost: int) -> None:
        nonlocal best_cost, best, steps
        steps += 1
        if steps > budget:
            raise TimeoutError
        if cost >= best_cost:
            return
        if not uncovered:
            best_cost, best = cost, list(chosen)
            return
        target = min(uncovered)
        for i in order:
            if target in cover_sets[i]:
                chosen.append(i)
                recurse(uncovered - cover_sets[i], chosen, cost + literal_cost[i])
                chosen.pop()

    try:
        recurse(frozenset(minterms), [], 0)
    except TimeoutError:
        return None
    return [primes[i] for i in best] if best is not None else None


def minimize(num_vars: int, on: Iterable[Sequence[int]],
             dc: Iterable[Sequence[int]] = (), exact: bool = False) -> Cover:
    """Minimal (or near-minimal) SOP cover of ON with DC flexibility.

    ``exact=True`` attempts branch-and-bound minimum-literal covering over
    the full prime set and falls back to the greedy heuristic on blow-up.
    """
    on_set = _normalise(num_vars, on)
    dc_set = _normalise(num_vars, dc) - on_set
    if not on_set:
        return Cover.zero(num_vars)
    if len(on_set | dc_set) == 1 << num_vars:
        return Cover.one(num_vars)
    on_ints = {_pack(m) for m in on_set}
    primes = [_pack_cube(c) for c in prime_implicants(num_vars, on_set, dc_set)]
    chosen: Optional[List[PackedCube]] = None
    if exact:
        chosen = _exact_cover(primes, on_ints)
    if chosen is None:
        chosen = _essential_and_greedy(primes, on_ints, num_vars)
    cubes = [_unpack_cube(p, num_vars) for p in chosen]
    return Cover(num_vars, cubes).remove_redundant()


#: Memo for the fast engine: (num_vars, frozenset(ON), frozenset(DC)) -> cover
#: as a tuple of packed cubes.  Shared across the whole process because the
#: exploration loop evaluates thousands of sibling SGs whose signals mostly
#: keep their (ON, DC) sets.
_FAST_MEMO: Dict[Tuple[int, FrozenSet[int], FrozenSet[int]],
                 Tuple[PackedCube, ...]] = engine.register_cache({}, name="logic-minimize")

_FAST_MEMO_LIMIT = 200_000


def minimize_fast_ints(num_vars: int, on_ints: FrozenSet[int],
                       dc_ints: FrozenSet[int]) -> Tuple[PackedCube, ...]:
    """Fast cover over integer-packed minterms; memoized on the input sets.

    This is the engine behind :func:`minimize_fast`, exposed so callers that
    already hold packed state codes (the SG layer) skip tuple conversion
    entirely.  Returns the chosen cover as packed ``(mask, value)`` cubes.
    """
    key = (num_vars, on_ints, dc_ints)
    if engine.packed_memo_enabled():
        cached = _FAST_MEMO.get(key)
        if cached is not None:
            return cached
    result = _expand_and_cover(num_vars, on_ints, dc_ints)
    if engine.packed_memo_enabled():
        if len(_FAST_MEMO) > _FAST_MEMO_LIMIT:
            _FAST_MEMO.clear()
        _FAST_MEMO[key] = result
    return result


def _expand_and_cover(num_vars: int, on_ints: FrozenSet[int],
                      dc_ints: FrozenSet[int]) -> Tuple[PackedCube, ...]:
    """Greedy expand of each ON minterm against OFF, then greedy set cover."""
    care = on_ints | dc_ints
    off = [m for m in range(1 << num_vars) if m not in care]
    full_mask = (1 << num_vars) - 1
    on_sorted = sorted(on_ints)
    # Literal-sharing ranks: ones[i] = ON minterms with variable i high, so a
    # minterm with bit i set shares that literal with ones[i] - 1 others.
    ones = [0] * num_vars
    for m in on_sorted:
        for i in range(num_vars):
            if m & (1 << i):
                ones[i] += 1
    total = len(on_sorted)
    expanded: List[PackedCube] = []
    seen: Set[PackedCube] = set()
    for start in on_sorted:
        # Minterms swallowed by an earlier expansion would mostly re-derive
        # the same cube; skipping them is the standard espresso shortcut.
        if any((start ^ v) & m == 0 for m, v in expanded):
            continue
        mask, value = full_mask, start
        # Raise most-shared literals first: variables whose literal appears
        # in many other ON minterms are cheap to give up (few minterms lie
        # on the other side), so trying them first keeps the expansion free
        # to absorb the rarely-shared directions later.
        order = sorted(
            range(num_vars),
            key=lambda i: (-((ones[i] if start & (1 << i) else total - ones[i]) - 1), i))
        for i in order:
            bit = 1 << i
            trial_mask = mask & ~bit
            trial_value = value & ~bit
            if not any((m ^ trial_value) & trial_mask == 0 for m in off):
                mask, value = trial_mask, trial_value
        cube = (mask, value)
        if cube not in seen:
            seen.add(cube)
            expanded.append(cube)
    uncovered = set(on_ints)
    chosen: List[PackedCube] = []
    while uncovered:
        best = max(expanded,
                   key=lambda c: (sum(1 for m in uncovered if _contains(c, m)),
                                  -bin(c[0]).count("1")))
        gained = {m for m in uncovered if _contains(best, m)}
        if not gained:
            raise MinimizationError("fast covering stalled")
        chosen.append(best)
        uncovered -= gained
    return tuple(chosen)


def fast_literal_count(num_vars: int, on_ints: FrozenSet[int],
                       dc_ints: FrozenSet[int]) -> int:
    """Literal count of the fast cover, without building Cube objects.

    The constant-0 and constant-1 short cuts mirror :func:`minimize_fast`.
    """
    if not on_ints:
        return 0
    if len(on_ints | dc_ints) == 1 << num_vars:
        return 0
    cover = minimize_fast_ints(num_vars, on_ints, dc_ints)
    return sum(bin(mask).count("1") for mask, _ in cover)


def minimize_fast(num_vars: int, on: Iterable[Sequence[int]],
                  dc: Iterable[Sequence[int]] = ()) -> Cover:
    """Espresso-flavoured heuristic cover: greedy expand + greedy cover.

    Each ON minterm is expanded by raising literals (most-shared variables
    first) while staying disjoint from the OFF set; the expanded cubes then
    greedily cover the ON set.  Roughly |ON| x |OFF| x n work; the result is
    a valid (irredundant-ish) cover, typically within a literal or two of
    the QM result on controller-sized functions.
    """
    on_set = _normalise(num_vars, on)
    dc_set = _normalise(num_vars, dc) - on_set
    if not on_set:
        return Cover.zero(num_vars)
    if len(on_set | dc_set) == 1 << num_vars:
        return Cover.one(num_vars)
    chosen = minimize_fast_ints(num_vars,
                                frozenset(_pack(m) for m in on_set),
                                frozenset(_pack(m) for m in dc_set))
    cubes = [_unpack_cube(p, num_vars) for p in chosen]
    return Cover(num_vars, cubes)


def _all_minterms(num_vars: int) -> List[Minterm]:
    from itertools import product as _product
    return list(_product((0, 1), repeat=num_vars))


def verify_cover(cover: Cover, on: Iterable[Sequence[int]],
                 off: Iterable[Sequence[int]]) -> bool:
    """Check a cover: contains every ON minterm, avoids every OFF minterm."""
    return (all(cover.contains(m) for m in on)
            and not any(cover.contains(m) for m in off))


def complement_minterms(num_vars: int, on: Set[Minterm], dc: Set[Minterm]) -> Set[Minterm]:
    """All minterms outside ON and DC (the OFF set) -- exponential, small n only."""
    return {m for m in _all_minterms(num_vars) if m not in on and m not in dc}
