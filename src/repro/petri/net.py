"""Petri net kernel.

This module provides the untyped Petri-net substrate used by the rest of the
library: places, transitions, arcs, markings and the token game.  Signal
Transition Graphs (:mod:`repro.petri.stg`) are built on top of it by labelling
transitions with signal events.

The nets manipulated by the synthesis flow are small control specifications,
so the implementation favours clarity and checkability over raw speed:
markings are immutable tuples of token counts, reachability is explicit, and
every mutation validates its arguments.

The token game compiles per-transition pre/post arcs into place-index
arrays on first use (rebuilt lazily after structural edits), and
:meth:`PetriNet.fire_incremental` maintains the enabled set across a firing
by rechecking only the transitions that touch a place whose token count
changed -- the state-graph generator leans on this to avoid rescanning
every transition per reachable marking.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple


class PetriNetError(Exception):
    """Raised for structurally invalid Petri-net operations."""


@dataclass(frozen=True)
class Place:
    """A place of a Petri net.

    Places are identified by name; ``auto`` marks places created implicitly
    (e.g. by the STG parser for transition-to-transition arcs), which writers
    may render back in the implicit ``<t1,t2>`` form.
    """

    name: str
    auto: bool = False

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Transition:
    """A transition of a Petri net.

    ``name`` is unique within the net.  ``label`` is an opaque payload; STGs
    store a :class:`repro.petri.stg.SignalEvent` there.  Unlabelled
    transitions behave as dummy (lambda) events.
    """

    name: str
    label: object = None

    def __str__(self) -> str:
        return self.name


Marking = Tuple[int, ...]
"""A marking is a tuple of token counts indexed by place index."""


@dataclass(frozen=True)
class _CompiledNet:
    """Index-array form of the token game (see :meth:`PetriNet._compile`).

    ``pre``/``post`` map each transition to ``((place_index, weight), ...)``;
    ``affected`` maps each transition to the transitions whose enabledness
    must be rechecked after it fires; ``order`` is the net declaration order
    used to keep results deterministic.
    """

    pre: Dict[str, Tuple[Tuple[int, int], ...]]
    post: Dict[str, Tuple[Tuple[int, int], ...]]
    affected: Dict[str, Tuple[str, ...]]
    order: Dict[str, int]


class PetriNet:
    """A finite, weighted Petri net with an initial marking.

    The net keeps places and transitions in insertion order; markings are
    tuples aligned with the place order, which makes them hashable and cheap
    to store in reachability sets.
    """

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self._places: Dict[str, Place] = {}
        self._transitions: Dict[str, Transition] = {}
        self._place_index: Dict[str, int] = {}
        # arcs: weight maps keyed by (place_name, transition_name)
        self._pre: Dict[str, Dict[str, int]] = {}   # transition -> {place: weight}
        self._post: Dict[str, Dict[str, int]] = {}  # transition -> {place: weight}
        self._place_post: Dict[str, Set[str]] = {}  # place -> transitions consuming
        self._place_pre: Dict[str, Set[str]] = {}   # place -> transitions producing
        self._initial: Dict[str, int] = {}
        self._compiled: Optional["_CompiledNet"] = None

    def _invalidate(self) -> None:
        self._compiled = None

    def _compile(self) -> "_CompiledNet":
        """Build (or reuse) the index-array form of the token game."""
        compiled = self._compiled
        if compiled is not None:
            return compiled
        index = self._place_index
        pre = {t: tuple(sorted((index[p], w) for p, w in arcs.items()))
               for t, arcs in self._pre.items()}
        post = {t: tuple(sorted((index[p], w) for p, w in arcs.items()))
                for t, arcs in self._post.items()}
        order = {t: i for i, t in enumerate(self._transitions)}
        # affected[t]: transitions whose enabling can change when t fires,
        # i.e. the consumers of every place t consumes from or produces into.
        affected: Dict[str, Tuple[str, ...]] = {}
        for t in self._transitions:
            touched: Set[str] = set()
            for place in self._pre[t]:
                touched.update(self._place_post[place])
            for place in self._post[t]:
                touched.update(self._place_post[place])
            affected[t] = tuple(sorted(touched, key=order.__getitem__))
        compiled = _CompiledNet(pre=pre, post=post, affected=affected, order=order)
        self._compiled = compiled
        return compiled

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_place(self, name: str, tokens: int = 0, auto: bool = False) -> Place:
        """Add a place; returns the existing place if the name is known.

        Re-adding a known place is idempotent: a ``tokens`` value on re-add
        must match the existing initial marking (or the place must still be
        unmarked), otherwise :class:`PetriNetError` is raised.  Tokens are
        never accumulated across re-adds.
        """
        if name in self._places:
            place = self._places[name]
            if tokens:
                existing = self._initial.get(name, 0)
                if existing and existing != tokens:
                    raise PetriNetError(
                        f"place {name!r} re-added with {tokens} token(s) but "
                        f"already marked with {existing}")
                self._initial[name] = tokens
            return place
        if name in self._transitions:
            raise PetriNetError(f"name {name!r} already used by a transition")
        self._invalidate()
        place = Place(name, auto=auto)
        self._places[name] = place
        self._place_index[name] = len(self._place_index)
        self._place_post[name] = set()
        self._place_pre[name] = set()
        if tokens:
            self._initial[name] = tokens
        return place

    def add_transition(self, name: str, label: object = None) -> Transition:
        """Add a transition with an optional label."""
        if name in self._transitions:
            existing = self._transitions[name]
            if label is not None and existing.label != label:
                raise PetriNetError(f"transition {name!r} already exists with a different label")
            return existing
        if name in self._places:
            raise PetriNetError(f"name {name!r} already used by a place")
        self._invalidate()
        transition = Transition(name, label)
        self._transitions[name] = transition
        self._pre[name] = {}
        self._post[name] = {}
        return transition

    def add_arc(self, source: str, target: str, weight: int = 1) -> None:
        """Add an arc place->transition or transition->place.

        Adding an arc between two transitions inserts an implicit place
        (named ``<t1,t2>``), matching STG notation.  Arcs between two places
        are rejected.
        """
        if weight < 1:
            raise PetriNetError("arc weight must be positive")
        src_is_place = source in self._places
        dst_is_place = target in self._places
        src_is_trans = source in self._transitions
        dst_is_trans = target in self._transitions
        if src_is_trans and dst_is_trans:
            implicit = f"<{source},{target}>"
            self.add_place(implicit, auto=True)
            self.add_arc(source, implicit, weight)
            self.add_arc(implicit, target, weight)
            return
        if src_is_place and dst_is_trans:
            self._invalidate()
            self._pre[target][source] = self._pre[target].get(source, 0) + weight
            self._place_post[source].add(target)
            return
        if src_is_trans and dst_is_place:
            self._invalidate()
            self._post[source][target] = self._post[source].get(target, 0) + weight
            self._place_pre[target].add(source)
            return
        if src_is_place and dst_is_place:
            raise PetriNetError(f"arc between two places: {source!r} -> {target!r}")
        missing = source if not (src_is_place or src_is_trans) else target
        raise PetriNetError(f"unknown node {missing!r}")

    def remove_arc(self, source: str, target: str) -> None:
        """Remove an arc previously added with :meth:`add_arc`."""
        self._invalidate()
        if source in self._places and target in self._transitions:
            self._pre[target].pop(source, None)
            self._place_post[source].discard(target)
        elif source in self._transitions and target in self._places:
            self._post[source].pop(target, None)
            self._place_pre[target].discard(source)
        else:
            raise PetriNetError(f"no such arc {source!r} -> {target!r}")

    def remove_place(self, name: str) -> None:
        """Remove a place and all arcs incident to it."""
        if name not in self._places:
            raise PetriNetError(f"unknown place {name!r}")
        self._invalidate()
        for transition in list(self._place_post[name]):
            self._pre[transition].pop(name, None)
        for transition in list(self._place_pre[name]):
            self._post[transition].pop(name, None)
        del self._places[name]
        del self._place_post[name]
        del self._place_pre[name]
        self._initial.pop(name, None)
        self._place_index = {p: i for i, p in enumerate(self._places)}

    def remove_transition(self, name: str) -> None:
        """Remove a transition and all arcs incident to it."""
        if name not in self._transitions:
            raise PetriNetError(f"unknown transition {name!r}")
        self._invalidate()
        for place in list(self._pre[name]):
            self._place_post[place].discard(name)
        for place in list(self._post[name]):
            self._place_pre[place].discard(name)
        del self._transitions[name]
        del self._pre[name]
        del self._post[name]

    def set_initial(self, marking: Dict[str, int]) -> None:
        """Set the initial marking from a place-name -> tokens mapping."""
        for place in marking:
            if place not in self._places:
                raise PetriNetError(f"unknown place {place!r} in marking")
        self._initial = {p: n for p, n in marking.items() if n > 0}

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def places(self) -> List[Place]:
        """Every place, in insertion order."""
        return list(self._places.values())

    @property
    def transitions(self) -> List[Transition]:
        """Every transition, in insertion order."""
        return list(self._transitions.values())

    @property
    def place_names(self) -> List[str]:
        """Place names, in insertion order."""
        return list(self._places)

    @property
    def transition_names(self) -> List[str]:
        """Transition names, in insertion order."""
        return list(self._transitions)

    def has_place(self, name: str) -> bool:
        """Whether a place named ``name`` exists."""
        return name in self._places

    def has_transition(self, name: str) -> bool:
        """Whether a transition named ``name`` exists."""
        return name in self._transitions

    def place(self, name: str) -> Place:
        """The place named ``name``; raises :class:`PetriNetError` if unknown."""
        try:
            return self._places[name]
        except KeyError:
            raise PetriNetError(f"unknown place {name!r}") from None

    def transition(self, name: str) -> Transition:
        """The transition named ``name``; raises :class:`PetriNetError` if unknown."""
        try:
            return self._transitions[name]
        except KeyError:
            raise PetriNetError(f"unknown transition {name!r}") from None

    def label_of(self, transition: str) -> object:
        """The label attached to ``transition``."""
        return self.transition(transition).label

    def relabel_transition(self, name: str, label: object) -> None:
        """Replace the label of an existing transition."""
        if name not in self._transitions:
            raise PetriNetError(f"unknown transition {name!r}")
        self._transitions[name] = Transition(name, label)

    def rename_transition(self, old: str, new: str, label: object = None) -> None:
        """Rename a transition, preserving connectivity.

        ``label`` replaces the transition label when given; otherwise the old
        label is kept.
        """
        if old not in self._transitions:
            raise PetriNetError(f"unknown transition {old!r}")
        if new in self._transitions or new in self._places:
            raise PetriNetError(f"name {new!r} already in use")
        self._invalidate()
        old_t = self._transitions.pop(old)
        self._transitions[new] = Transition(new, label if label is not None else old_t.label)
        self._pre[new] = self._pre.pop(old)
        self._post[new] = self._post.pop(old)
        for place in self._pre[new]:
            self._place_post[place].discard(old)
            self._place_post[place].add(new)
        for place in self._post[new]:
            self._place_pre[place].discard(old)
            self._place_pre[place].add(new)

    def preset_of_transition(self, name: str) -> Dict[str, int]:
        """Input places of a transition with arc weights."""
        if name not in self._transitions:
            raise PetriNetError(f"unknown transition {name!r}")
        return dict(self._pre[name])

    def postset_of_transition(self, name: str) -> Dict[str, int]:
        """Output places of a transition with arc weights."""
        if name not in self._transitions:
            raise PetriNetError(f"unknown transition {name!r}")
        return dict(self._post[name])

    def preset_of_place(self, name: str) -> Set[str]:
        """Transitions producing into a place."""
        if name not in self._places:
            raise PetriNetError(f"unknown place {name!r}")
        return set(self._place_pre[name])

    def postset_of_place(self, name: str) -> Set[str]:
        """Transitions consuming from a place."""
        if name not in self._places:
            raise PetriNetError(f"unknown place {name!r}")
        return set(self._place_post[name])

    # ------------------------------------------------------------------
    # token game
    # ------------------------------------------------------------------
    def initial_marking(self) -> Marking:
        """The initial marking as a tuple aligned with ``place_names``."""
        return tuple(self._initial.get(p, 0) for p in self._places)

    def marking_dict(self, marking: Marking) -> Dict[str, int]:
        """Expand a tuple marking into a place-name -> tokens mapping."""
        return {p: n for p, n in zip(self._places, marking) if n > 0}

    def marking_from_dict(self, tokens: Dict[str, int]) -> Marking:
        """Build a tuple marking from a place-name -> tokens mapping."""
        for place in tokens:
            if place not in self._places:
                raise PetriNetError(f"unknown place {place!r} in marking")
        return tuple(tokens.get(p, 0) for p in self._places)

    def is_enabled(self, transition: str, marking: Marking) -> bool:
        """True when every input place holds enough tokens."""
        if transition not in self._transitions:
            raise PetriNetError(f"unknown transition {transition!r}")
        pre = self._compile().pre[transition]
        return all(marking[i] >= w for i, w in pre)

    def enabled_transitions(self, marking: Marking) -> List[str]:
        """Names of all transitions enabled at ``marking`` (net order)."""
        pre = self._compile().pre
        return [t for t in self._transitions
                if all(marking[i] >= w for i, w in pre[t])]

    def fire(self, transition: str, marking: Marking) -> Marking:
        """Fire an enabled transition; returns the successor marking."""
        if not self.is_enabled(transition, marking):
            raise PetriNetError(f"transition {transition!r} not enabled")
        compiled = self._compile()
        counts = list(marking)
        for i, weight in compiled.pre[transition]:
            counts[i] -= weight
        for i, weight in compiled.post[transition]:
            counts[i] += weight
        return tuple(counts)

    def fire_incremental(self, transition: str, marking: Marking,
                         enabled: FrozenSet[str]) -> Tuple[Marking, FrozenSet[str]]:
        """Fire ``transition`` and update the enabled set incrementally.

        ``enabled`` must be the exact enabled set of ``marking`` (for the
        initial marking, seed it with ``frozenset(enabled_transitions(m))``).
        Only the transitions consuming from a place whose token count just
        changed are rechecked, so repeated firings over a large net cost
        O(local fan-out) instead of O(|T|) per step.
        """
        if transition not in enabled:
            raise PetriNetError(f"transition {transition!r} not enabled")
        compiled = self._compile()
        counts = list(marking)
        for i, weight in compiled.pre[transition]:
            counts[i] -= weight
        for i, weight in compiled.post[transition]:
            counts[i] += weight
        successor = tuple(counts)
        pre = compiled.pre
        updated = set(enabled)
        for other in compiled.affected[transition]:
            if all(successor[i] >= w for i, w in pre[other]):
                updated.add(other)
            else:
                updated.discard(other)
        return successor, frozenset(updated)

    def reachable_markings(self, limit: int = 1_000_000) -> Set[Marking]:
        """All markings reachable from the initial marking.

        ``limit`` guards against unbounded nets; exceeding it raises
        :class:`PetriNetError`.
        """
        seen: Set[Marking] = set()
        queue: deque = deque([self.initial_marking()])
        seen.add(self.initial_marking())
        while queue:
            marking = queue.popleft()
            for transition in self.enabled_transitions(marking):
                nxt = self.fire(transition, marking)
                if nxt not in seen:
                    seen.add(nxt)
                    if len(seen) > limit:
                        raise PetriNetError(f"reachability exceeded {limit} markings")
                    queue.append(nxt)
        return seen

    def compile_packed(self) -> Optional["PackedNet"]:
        """Compile the net into the packed-marking form, if representable.

        Returns ``None`` when the net cannot use single-bit-per-place
        markings up front: some arc weight exceeds 1, or some place starts
        with more than one token.  A net that *passes* this test can still
        reach a marking with two tokens in a place; the packed token game
        detects that at fire time (:class:`PackedOverflowError`) and the
        caller falls back to tuple markings.
        """
        index = self._place_index
        initial = 0
        for place, tokens in self._initial.items():
            if tokens > 1:
                return None
            if tokens:
                initial |= 1 << index[place]
        pre_masks: List[int] = []
        post_masks: List[int] = []
        pre_places: List[Tuple[int, ...]] = []
        for t in self._transitions:
            mask = 0
            places: List[int] = []
            for place, weight in self._pre[t].items():
                if weight != 1:
                    return None
                places.append(index[place])
                mask |= 1 << index[place]
            pre_masks.append(mask)
            pre_places.append(tuple(sorted(places)))
            mask = 0
            for place, weight in self._post[t].items():
                if weight != 1:
                    return None
                mask |= 1 << index[place]
            post_masks.append(mask)
        t_index = {t: i for i, t in enumerate(self._transitions)}
        conflicts: List[int] = []
        for t in self._transitions:
            mask = 0
            for place in self._pre[t]:
                for other in self._place_post[place]:
                    mask |= 1 << t_index[other]
            conflicts.append(mask)
        producers = tuple(
            sum(1 << t_index[t] for t in self._place_pre[place])
            for place in self._places)
        return PackedNet(
            place_names=tuple(self._places),
            transition_names=tuple(self._transitions),
            pre_masks=tuple(pre_masks),
            post_masks=tuple(post_masks),
            pre_places=tuple(pre_places),
            initial=initial,
            conflicts=tuple(conflicts),
            producers=producers)

    # ------------------------------------------------------------------
    # utilities
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "PetriNet":
        """A structural deep copy of the net (labels shared, structure new)."""
        clone = PetriNet(name or self.name)
        for place in self._places.values():
            clone.add_place(place.name, auto=place.auto)
        for transition in self._transitions.values():
            clone.add_transition(transition.name, transition.label)
        for transition, places in self._pre.items():
            for place, weight in places.items():
                clone.add_arc(place, transition, weight)
        for transition, places in self._post.items():
            for place, weight in places.items():
                clone.add_arc(transition, place, weight)
        clone.set_initial(dict(self._initial))
        return clone

    def fresh_place_name(self, stem: str = "p") -> str:
        """A place name not yet used in the net."""
        i = len(self._places)
        while f"{stem}{i}" in self._places or f"{stem}{i}" in self._transitions:
            i += 1
        return f"{stem}{i}"

    def fresh_transition_name(self, stem: str) -> str:
        """A transition name not yet used in the net."""
        if stem not in self._transitions and stem not in self._places:
            return stem
        i = 1
        while f"{stem}/{i}" in self._transitions:
            i += 1
        return f"{stem}/{i}"

    def __contains__(self, name: str) -> bool:
        return name in self._places or name in self._transitions

    def __repr__(self) -> str:
        return (f"PetriNet({self.name!r}, |P|={len(self._places)}, "
                f"|T|={len(self._transitions)})")


class PackedOverflowError(PetriNetError):
    """A packed firing would put a second token into a place.

    Packed markings carry one bit per place, so they can only represent
    1-safe behaviour; the packed token game raises this the moment a
    firing leaves that regime, and callers fall back to tuple markings.
    """


@dataclass(frozen=True)
class PackedNet:
    """Bit-packed form of a (structurally 1-safe-capable) net.

    A marking is one int with bit *p* set iff place *p* holds a token --
    the place-side analogue of the state graph's per-state ``code_int``.
    Enabledness is ``marking & pre == pre`` and firing is two bitwise
    ops, so the token game runs on machine words instead of per-place
    Python loops.  The batch methods extend this across a whole frontier
    level: a level of *n* markings is transposed into per-place columns
    (bit *j* of column *p* = "slot *j* marks place *p*"), and the enabled
    set of every state in the level for one transition is a single
    int-wide AND over its input-place columns.

    ``conflicts``/``producers`` are transition bitmasks (bit *t* set)
    serving the stubborn-set selector: transitions competing for any
    input place of *t*, and the transitions producing into each place.
    """

    place_names: Tuple[str, ...]
    transition_names: Tuple[str, ...]
    pre_masks: Tuple[int, ...]
    post_masks: Tuple[int, ...]
    pre_places: Tuple[Tuple[int, ...], ...]
    initial: int
    conflicts: Tuple[int, ...]
    producers: Tuple[int, ...]

    # -- single markings ------------------------------------------------
    def pack(self, marking: Marking) -> int:
        """Pack a tuple marking; raises on token counts above one."""
        packed = 0
        for i, tokens in enumerate(marking):
            if tokens > 1:
                raise PackedOverflowError(
                    f"place {self.place_names[i]!r} holds {tokens} tokens")
            if tokens:
                packed |= 1 << i
        return packed

    def unpack(self, packed: int) -> Marking:
        """Expand a packed marking back into the tuple form."""
        return tuple((packed >> i) & 1 for i in range(len(self.place_names)))

    def enabled_bits(self, packed: int) -> int:
        """Transition bitmask of everything enabled at one marking."""
        mask = 0
        for t, pre in enumerate(self.pre_masks):
            if packed & pre == pre:
                mask |= 1 << t
        return mask

    def fire_bits(self, transition: int, packed: int) -> int:
        """Fire transition index ``transition`` from a packed marking.

        The caller guarantees enabledness; a firing that would stack two
        tokens raises :class:`PackedOverflowError`.
        """
        cleared = packed & ~self.pre_masks[transition]
        post = self.post_masks[transition]
        if cleared & post:
            raise PackedOverflowError(
                f"firing {self.transition_names[transition]!r} leaves "
                f"the 1-safe regime")
        return cleared | post

    # -- frontier levels ------------------------------------------------
    def level_columns(self, rows: Sequence[int]) -> List[int]:
        """Transpose a level of packed markings into per-place columns."""
        columns = [0] * len(self.place_names)
        for slot, row in enumerate(rows):
            bit = 1 << slot
            remaining = row
            while remaining:
                low = remaining & -remaining
                columns[low.bit_length() - 1] |= bit
                remaining ^= low
        return columns

    def enabled_columns(self, rows: Sequence[int]) -> List[int]:
        """Batch enabled sets: per-transition slot masks over a level.

        Bit *j* of entry *t* is set iff ``rows[j]`` enables transition
        *t* -- each entry is computed with one AND per input place,
        covering the whole level at once.
        """
        columns = self.level_columns(rows)
        full = (1 << len(rows)) - 1
        masks: List[int] = []
        for places in self.pre_places:
            mask = full
            for place in places:
                mask &= columns[place]
                if not mask:
                    break
            masks.append(mask)
        return masks
