"""Petri net kernel, STGs, the .g format, composition and structural analysis."""
