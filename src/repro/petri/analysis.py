"""Structural and behavioural analysis of Petri nets.

These checks are used both to validate benchmark specifications before
synthesis and to characterise the nets produced by handshake expansion
(which are safe but not necessarily free-choice).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from .net import Marking, PetriNet, PetriNetError


def is_marked_graph(net: PetriNet) -> bool:
    """True when every place has at most one producer and one consumer."""
    return all(len(net.preset_of_place(p.name)) <= 1
               and len(net.postset_of_place(p.name)) <= 1
               for p in net.places)


def is_state_machine(net: PetriNet) -> bool:
    """True when every transition has exactly one input and one output place."""
    return all(len(net.preset_of_transition(t.name)) == 1
               and len(net.postset_of_transition(t.name)) == 1
               for t in net.transitions)


def is_free_choice(net: PetriNet) -> bool:
    """True when conflicts are free-choice: shared places imply equal presets."""
    for place in net.places:
        postset = net.postset_of_place(place.name)
        if len(postset) <= 1:
            continue
        presets = [frozenset(net.preset_of_transition(t)) for t in postset]
        if any(pre != {place.name} for pre in presets):
            return False
    return True


def is_safe(net: PetriNet, limit: int = 1_000_000) -> bool:
    """True when no reachable marking puts more than one token on a place."""
    try:
        markings = net.reachable_markings(limit)
    except PetriNetError:
        return False
    return all(max(m, default=0) <= 1 for m in markings)


def bound(net: PetriNet, limit: int = 1_000_000) -> int:
    """The maximum token count over all places in all reachable markings."""
    markings = net.reachable_markings(limit)
    return max((max(m, default=0) for m in markings), default=0)


def deadlock_markings(net: PetriNet, limit: int = 1_000_000) -> List[Marking]:
    """All reachable markings that enable no transition."""
    return [m for m in net.reachable_markings(limit)
            if not net.enabled_transitions(m)]


def is_deadlock_free(net: PetriNet, limit: int = 1_000_000) -> bool:
    return not deadlock_markings(net, limit)


def live_transitions(net: PetriNet, limit: int = 1_000_000) -> Set[str]:
    """Transitions that fire in at least one reachable marking (L1-live)."""
    fired: Set[str] = set()
    for marking in net.reachable_markings(limit):
        fired.update(net.enabled_transitions(marking))
    return fired


def dead_transitions(net: PetriNet, limit: int = 1_000_000) -> Set[str]:
    """Transitions that can never fire."""
    return set(net.transition_names) - live_transitions(net, limit)


def isolated_places(net: PetriNet) -> Set[str]:
    """Places with no incident arcs."""
    return {p.name for p in net.places
            if not net.preset_of_place(p.name) and not net.postset_of_place(p.name)}


def redundant_places(net: PetriNet, limit: int = 100_000) -> Set[str]:
    """Places whose removal leaves the reachable behaviour unchanged.

    Uses a sufficient condition checked behaviourally: a place is redundant
    when, in every reachable marking, it never constrains an otherwise
    enabled transition.  Only meaningful for bounded nets.
    """
    markings = net.reachable_markings(limit)
    redundant: Set[str] = set()
    index = {p: i for i, p in enumerate(net.place_names)}
    for place in net.place_names:
        consumers = net.postset_of_place(place)
        if not consumers:
            if not net.preset_of_place(place):
                redundant.add(place)
            continue
        constrains = False
        for marking in markings:
            for transition in consumers:
                others_ok = all(marking[index[p]] >= w
                                for p, w in net.preset_of_transition(transition).items()
                                if p != place)
                need = net.preset_of_transition(transition)[place]
                if others_ok and marking[index[place]] < need:
                    constrains = True
                    break
            if constrains:
                break
        if not constrains:
            redundant.add(place)
    return redundant


def strongly_connected(net: PetriNet) -> bool:
    """True when the underlying bipartite graph is strongly connected."""
    nodes: List[str] = [p.name for p in net.places] + net.transition_names
    if not nodes:
        return True
    succ: Dict[str, Set[str]] = {n: set() for n in nodes}
    pred: Dict[str, Set[str]] = {n: set() for n in nodes}
    for transition in net.transition_names:
        for place in net.preset_of_transition(transition):
            succ[place].add(transition)
            pred[transition].add(place)
        for place in net.postset_of_transition(transition):
            succ[transition].add(place)
            pred[place].add(transition)

    def reach(start: str, edges: Dict[str, Set[str]]) -> Set[str]:
        seen = {start}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for nxt in edges[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return seen

    start = nodes[0]
    return len(reach(start, succ)) == len(nodes) and len(reach(start, pred)) == len(nodes)
