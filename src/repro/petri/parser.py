"""Reader and writer for the astg-style ``.g`` STG text format.

The format is the one used by petrify / SIS::

    .model lr
    .inputs li ri
    .outputs lo ro
    .graph
    li+ ro+
    ro+ ri+
    p0 li+
    ri+ p0
    .marking { p0 <li+,ro+> }
    .initial_state !li !lo ri ro
    .end

Lines under ``.graph`` list one source node followed by its successor nodes.
Nodes that parse as signal events become transitions; anything else becomes
an explicit place.  Transition-to-transition arcs create implicit places,
which the ``.marking`` section can reference as ``<t1,t2>``.
``.initial_state`` (an extension also accepted by several async tools) lists
signals prefixed with ``!`` for initially-low.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Tuple

from .net import PetriNetError
from .stg import STG, Direction, SignalEvent, SignalKind


class ParseError(Exception):
    """Raised when ``.g`` input is malformed."""

    def __init__(self, message: str, line_no: Optional[int] = None) -> None:
        prefix = f"line {line_no}: " if line_no is not None else ""
        super().__init__(prefix + message)
        self.line_no = line_no


_MARKING_TOKEN = re.compile(r"<[^>]*>|[^\s{}]+")


def _is_event(token: str) -> bool:
    try:
        SignalEvent.parse(token)
        return True
    except ValueError:
        return False


def parse_stg(text: str, name: Optional[str] = None) -> STG:
    """Parse ``.g`` text into an :class:`~repro.petri.stg.STG`."""
    stg = STG(name or "stg")
    graph_lines: List[Tuple[int, List[str]]] = []
    marking_tokens: List[str] = []
    initial_state_tokens: List[str] = []
    in_graph = False
    declared: Dict[str, SignalKind] = {}

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            in_graph = False
            parts = line.split()
            directive, args = parts[0], parts[1:]
            if directive == ".model" or directive == ".name":
                if args:
                    stg.name = args[0]
            elif directive == ".inputs":
                for signal in args:
                    declared[signal] = SignalKind.INPUT
            elif directive == ".outputs":
                for signal in args:
                    declared[signal] = SignalKind.OUTPUT
            elif directive in (".internal", ".internals"):
                for signal in args:
                    declared[signal] = SignalKind.INTERNAL
            elif directive == ".dummy":
                for signal in args:
                    declared[signal] = SignalKind.DUMMY
            elif directive == ".graph":
                in_graph = True
            elif directive == ".marking":
                marking_tokens.extend(_MARKING_TOKEN.findall(" ".join(args)))
            elif directive == ".initial_state":
                initial_state_tokens.extend(args)
            elif directive == ".end":
                break
            elif directive in (".capacity", ".slowenv", ".coords"):
                continue  # tolerated, ignored
            else:
                raise ParseError(f"unknown directive {directive!r}", line_no)
        elif in_graph:
            graph_lines.append((line_no, line.split()))
        else:
            raise ParseError(f"unexpected content outside .graph: {line!r}", line_no)

    for signal, kind in declared.items():
        stg.declare_signal(signal, kind)

    # First pass: create nodes so arcs can distinguish places from transitions.
    def ensure_node(token: str, line_no: int) -> str:
        base = token.split("/", 1)[0]
        if declared.get(base) == SignalKind.DUMMY:
            if not stg.net.has_transition(token):
                stg.add_dummy(token)
            return token
        if _is_event(token):
            event = SignalEvent.parse(token)
            if event.signal not in declared:
                # Undeclared names that look like events are treated as places
                # only when they carry no +/- sign ambiguity; the astg format
                # requires declaration, so reject instead of guessing.
                raise ParseError(f"event {token!r} uses undeclared signal "
                                 f"{event.signal!r}", line_no)
            return stg.add_event(event)
        if not stg.net.has_place(token):
            stg.net.add_place(token)
        return token

    for line_no, tokens in graph_lines:
        for token in tokens:
            ensure_node(token, line_no)
    for line_no, tokens in graph_lines:
        source = tokens[0]
        for target in tokens[1:]:
            try:
                stg.net.add_arc(source, target)
            except PetriNetError as exc:
                raise ParseError(str(exc), line_no) from exc

    marking: Dict[str, int] = {}
    for token in marking_tokens:
        weight = 1
        if "=" in token and not token.startswith("<"):
            token, _, count = token.partition("=")
            weight = int(count)
        if not stg.net.has_place(token):
            raise ParseError(f"marking references unknown place {token!r}")
        marking[token] = marking.get(token, 0) + weight
    if marking:
        stg.net.set_initial(marking)

    for token in initial_state_tokens:
        if token.startswith("!"):
            stg.set_initial_value(token[1:], 0)
        else:
            stg.set_initial_value(token, 1)

    return stg


def read_stg(path: str) -> STG:
    """Parse a ``.g`` file from disk."""
    with open(path) as handle:
        return parse_stg(handle.read())


def write_stg(stg: STG) -> str:
    """Render an STG back to ``.g`` text.

    Implicit places (created for transition-to-transition arcs) are folded
    back into direct arcs; explicit places are emitted as nodes.
    """
    lines = [f".model {stg.name}"]
    for directive, kind in ((".inputs", SignalKind.INPUT),
                            (".outputs", SignalKind.OUTPUT),
                            (".internal", SignalKind.INTERNAL),
                            (".dummy", SignalKind.DUMMY)):
        names = stg.signals_of_kind(kind)
        if names:
            lines.append(f"{directive} {' '.join(names)}")
    lines.append(".graph")

    net = stg.net
    initial = net.marking_dict(net.initial_marking())
    adjacency: Dict[str, List[str]] = {}

    def add_edge(src: str, dst: str) -> None:
        adjacency.setdefault(src, []).append(dst)

    implicit_marked: List[str] = []
    for place in net.places:
        preset = sorted(net.preset_of_place(place.name))
        postset = sorted(net.postset_of_place(place.name))
        foldable = (place.auto and len(preset) == 1 and len(postset) == 1)
        if foldable:
            add_edge(preset[0], postset[0])
            if initial.get(place.name):
                implicit_marked.append(f"<{preset[0]},{postset[0]}>")
        else:
            for transition in preset:
                add_edge(transition, place.name)
            for transition in postset:
                add_edge(place.name, transition)

    for source in list(net.transition_names) + [p.name for p in net.places]:
        if source in adjacency:
            lines.append(f"{source} {' '.join(adjacency[source])}")

    marking_parts = []
    for place, count in initial.items():
        if net.place(place).auto and f"<{','.join(sorted(net.preset_of_place(place)))}" :
            preset = sorted(net.preset_of_place(place))
            postset = sorted(net.postset_of_place(place))
            if len(preset) == 1 and len(postset) == 1:
                continue  # emitted via implicit_marked below
        marking_parts.append(place if count == 1 else f"{place}={count}")
    marking_parts.extend(implicit_marked)
    lines.append(".marking { " + " ".join(sorted(marking_parts)) + " }")

    if stg.initial_values:
        tokens = []
        for signal in stg.signals:
            if signal in stg.initial_values:
                tokens.append(signal if stg.initial_values[signal] else f"!{signal}")
        lines.append(".initial_state " + " ".join(tokens))
    lines.append(".end")
    return "\n".join(lines) + "\n"


def save_stg(stg: STG, path: str) -> None:
    """Write an STG to a ``.g`` file."""
    with open(path, "w") as handle:
        handle.write(write_stg(stg))
