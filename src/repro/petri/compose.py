"""Parallel composition of STGs.

Handshake expansion (Section 4 of the paper) is described as "the parallel
composition of the STG pieces" of the return-to-zero structure and the
functional parts.  This module implements synchronous parallel composition
of labelled nets: shared events synchronise (their transitions are fused),
private events interleave.

Composition here works at the level of *base events* (signal + direction,
ignoring instance indices): each instance of a shared event in one component
synchronises with every instance in the other, producing the product
instances.  For the structures used by the 4-phase refinement this yields
exactly the nets in Fig. 5 of the paper.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Optional, Set, Tuple

from .net import PetriNetError
from .stg import STG, SignalEvent, SignalKind


def _base_key(event: Optional[SignalEvent]) -> Optional[Tuple[str, str]]:
    if event is None:
        return None
    return (event.signal, event.direction.value)


def compose(left: STG, right: STG, name: Optional[str] = None) -> STG:
    """Parallel composition of two STGs, synchronising on shared signals.

    Signals present in both components must be declared with compatible
    kinds (identical, or input in one and output/internal in the other, in
    which case the non-input kind wins -- the usual rule when composing a
    circuit with its environment).
    """
    result = STG(name or f"{left.name}||{right.name}")

    for signal, kind in left.signals.items():
        result.declare_signal(signal, kind)
    for signal, kind in right.signals.items():
        if signal not in result.signals:
            result.declare_signal(signal, kind)
        else:
            existing = result.signals[signal]
            if existing == kind:
                continue
            if SignalKind.INPUT in (existing, kind):
                winner = kind if existing == SignalKind.INPUT else existing
                result.signals[signal] = winner
            else:
                raise PetriNetError(
                    f"signal {signal!r} declared {existing.value} and {kind.value}")

    shared: Set[str] = set(left.signals) & set(right.signals)

    def place_name(side: str, original: str) -> str:
        return f"{side}.{original}"

    for side, stg in (("L", left), ("R", right)):
        for place in stg.net.places:
            result.net.add_place(place_name(side, place.name), auto=False)

    # Transitions: private ones are copied; shared base events are fused
    # pairwise across components.
    fused: Dict[str, List[Tuple[str, Dict[str, int], Dict[str, int]]]] = {}

    def arcs_of(side: str, stg: STG, transition: str) -> Tuple[Dict[str, int], Dict[str, int]]:
        pre = {place_name(side, p): w
               for p, w in stg.net.preset_of_transition(transition).items()}
        post = {place_name(side, p): w
                for p, w in stg.net.postset_of_transition(transition).items()}
        return pre, post

    used_names: Set[str] = set()

    def fresh(base: SignalEvent) -> SignalEvent:
        instance = 0
        while str(base.with_instance(instance)) in used_names:
            instance += 1
        return base.with_instance(instance)

    def add_result_transition(event: Optional[SignalEvent], dummy_name: Optional[str],
                              pre: Dict[str, int], post: Dict[str, int]) -> None:
        if event is None:
            name_ = dummy_name or "dummy"
            i = 0
            while name_ in used_names:
                i += 1
                name_ = f"{dummy_name}/{i}"
            result.net.add_transition(name_, None)
        else:
            # Keep a component's own instance index when it is free:
            # renumbering from declaration order would make the result's
            # transition names depend on arc declaration order, which
            # breaks seed-invariance of multi-instance cells.
            if not (event.instance and str(event) not in used_names):
                event = fresh(event.base)
            name_ = str(event)
            result.net.add_transition(name_, event)
        used_names.add(name_)
        for place, weight in pre.items():
            result.net.add_arc(place, name_, weight)
        for place, weight in post.items():
            result.net.add_arc(name_, place, weight)

    left_by_base: Dict[Tuple[str, str], List[str]] = {}
    right_by_base: Dict[Tuple[str, str], List[str]] = {}
    for stg, table in ((left, left_by_base), (right, right_by_base)):
        for transition in stg.net.transition_names:
            key = _base_key(stg.event_of(transition))
            if key is not None and key[0] in shared:
                table.setdefault(key, []).append(transition)
        for instances in table.values():
            # Fusion products are renumbered in product order; sort the
            # factors by instance index so that order (and hence the
            # fused names) is independent of declaration order.
            instances.sort(key=lambda t, s=stg: s.event_of(t).instance)

    # Private (or dummy) transitions from each side.
    for side, stg in (("L", left), ("R", right)):
        for transition in stg.net.transition_names:
            event = stg.event_of(transition)
            key = _base_key(event)
            if key is not None and key[0] in shared:
                continue
            pre, post = arcs_of(side, stg, transition)
            add_result_transition(event, f"{side}.{transition}" if event is None else None,
                                  pre, post)

    # Fused transitions for shared base events.
    keys = set(left_by_base) | set(right_by_base)
    for key in sorted(keys):
        left_instances = left_by_base.get(key, [])
        right_instances = right_by_base.get(key, [])
        if not left_instances or not right_instances:
            # The event exists on only one side: it stays private.
            side, stg, instances = (("L", left, left_instances) if left_instances
                                    else ("R", right, right_instances))
            for transition in instances:
                pre, post = arcs_of(side, stg, transition)
                add_result_transition(stg.event_of(transition), None, pre, post)
            continue
        for lt, rt in product(left_instances, right_instances):
            lpre, lpost = arcs_of("L", left, lt)
            rpre, rpost = arcs_of("R", right, rt)
            pre = dict(lpre)
            for place, weight in rpre.items():
                pre[place] = max(pre.get(place, 0), weight)
            post = dict(lpost)
            for place, weight in rpost.items():
                post[place] = max(post.get(place, 0), weight)
            event = SignalEvent(key[0], left.event_of(lt).direction)
            add_result_transition(event, None, pre, post)

    marking: Dict[str, int] = {}
    for side, stg in (("L", left), ("R", right)):
        for place, count in stg.net.marking_dict(stg.net.initial_marking()).items():
            marking[place_name(side, place)] = count
    result.net.set_initial(marking)

    for stg in (left, right):
        for signal, value in stg.initial_values.items():
            result.initial_values.setdefault(signal, value)
    return result


def compose_all(components: List[STG], name: Optional[str] = None) -> STG:
    """Left fold of :func:`compose` over a list of components."""
    if not components:
        raise PetriNetError("cannot compose an empty list of STGs")
    current = components[0]
    for component in components[1:]:
        current = compose(current, component)
    if name:
        current.name = name
    return current
