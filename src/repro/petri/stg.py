"""Signal Transition Graphs.

An STG is a Petri net whose transitions are labelled with *signal events*:
rising (``a+``), falling (``a-``) or toggle (``a~``) transitions of circuit
signals, plus unobservable dummy events.  Signals are partitioned into inputs
(driven by the environment) and outputs/internals (to be implemented), which
is the distinction every validity rule in the synthesis flow relies on.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .net import PetriNet, PetriNetError


class SignalKind(Enum):
    """Role of a signal in the specification."""

    INPUT = "input"
    OUTPUT = "output"
    INTERNAL = "internal"
    DUMMY = "dummy"

    @property
    def is_observable(self) -> bool:
        """Inputs and outputs are observable; internal signals are not."""
        return self in (SignalKind.INPUT, SignalKind.OUTPUT)


class Direction(Enum):
    """Direction of a signal event."""

    RISE = "+"
    FALL = "-"
    TOGGLE = "~"

    def opposite(self) -> "Direction":
        """``RISE`` for ``FALL`` and vice versa."""
        if self is Direction.RISE:
            return Direction.FALL
        if self is Direction.FALL:
            return Direction.RISE
        return Direction.TOGGLE


_EVENT_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_\.\[\]]*)([+\-~])(?:/(\d+))?$")


@dataclass(frozen=True)
class SignalEvent:
    """An occurrence of a signal transition, e.g. ``req+`` or ``ack-/2``.

    ``instance`` distinguishes multiple transitions of the same event in one
    STG (the ``/k`` suffix of the astg format); instance 0 is rendered
    without a suffix.
    """

    signal: str
    direction: Direction
    instance: int = 0

    @staticmethod
    def parse(text: str) -> "SignalEvent":
        """Parse ``sig+``, ``sig-``, ``sig~`` with optional ``/k`` suffix."""
        match = _EVENT_RE.match(text.strip())
        if not match:
            raise ValueError(f"not a signal event: {text!r}")
        signal, sign, instance = match.groups()
        return SignalEvent(signal, Direction(sign), int(instance) if instance else 0)

    @property
    def base(self) -> "SignalEvent":
        """The event without its instance index (``a+/2`` -> ``a+``)."""
        return SignalEvent(self.signal, self.direction)

    def with_instance(self, instance: int) -> "SignalEvent":
        """The same event with another instance number."""
        return SignalEvent(self.signal, self.direction, instance)

    def opposite(self) -> "SignalEvent":
        """The complementary event of the same signal (instance reset)."""
        return SignalEvent(self.signal, self.direction.opposite())

    def __lt__(self, other: "SignalEvent") -> bool:
        if not isinstance(other, SignalEvent):
            return NotImplemented
        return ((self.signal, self.direction.value, self.instance)
                < (other.signal, other.direction.value, other.instance))

    def __str__(self) -> str:
        suffix = f"/{self.instance}" if self.instance else ""
        return f"{self.signal}{self.direction.value}{suffix}"


class STG:
    """A Signal Transition Graph.

    Wraps a :class:`~repro.petri.net.PetriNet` whose transition labels are
    :class:`SignalEvent` objects (or ``None`` for dummies) together with a
    signal table mapping each signal name to its :class:`SignalKind`.
    """

    def __init__(self, name: str = "stg") -> None:
        self.net = PetriNet(name)
        self.signals: Dict[str, SignalKind] = {}
        self.initial_values: Dict[str, int] = {}

    @property
    def name(self) -> str:
        """The model name (shared with the underlying net)."""
        return self.net.name

    @name.setter
    def name(self, value: str) -> None:
        self.net.name = value

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------
    def declare_signal(self, name: str, kind: SignalKind) -> None:
        """Register a signal; re-declaring with a different kind is an error."""
        existing = self.signals.get(name)
        if existing is not None and existing != kind:
            raise PetriNetError(f"signal {name!r} already declared as {existing.value}")
        self.signals[name] = kind

    def kind_of(self, signal: str) -> SignalKind:
        """The declared kind of ``signal``; raises ``STGError`` if unknown."""
        try:
            return self.signals[signal]
        except KeyError:
            raise PetriNetError(f"undeclared signal {signal!r}") from None

    def signals_of_kind(self, *kinds: SignalKind) -> List[str]:
        """Signals of the given kinds, in declaration order."""
        return [s for s, k in self.signals.items() if k in kinds]

    @property
    def inputs(self) -> List[str]:
        """Input signals, in declaration order."""
        return self.signals_of_kind(SignalKind.INPUT)

    @property
    def outputs(self) -> List[str]:
        """Output signals, in declaration order."""
        return self.signals_of_kind(SignalKind.OUTPUT)

    @property
    def internals(self) -> List[str]:
        """Internal signals, in declaration order."""
        return self.signals_of_kind(SignalKind.INTERNAL)

    @property
    def non_inputs(self) -> List[str]:
        """Signals the circuit must implement (outputs and internals)."""
        return self.signals_of_kind(SignalKind.OUTPUT, SignalKind.INTERNAL)

    def is_input_event(self, event: SignalEvent) -> bool:
        """Whether ``event`` belongs to an input signal."""
        return self.kind_of(event.signal) == SignalKind.INPUT

    # ------------------------------------------------------------------
    # transitions
    # ------------------------------------------------------------------
    def add_event(self, event: "SignalEvent | str") -> str:
        """Add a transition labelled with ``event``; returns its name.

        The transition name is the textual form of the event.  The signal
        must have been declared.  Adding the same event twice returns the
        existing transition.
        """
        if isinstance(event, str):
            event = SignalEvent.parse(event)
        if event.signal not in self.signals:
            raise PetriNetError(f"undeclared signal {event.signal!r}")
        name = str(event)
        self.net.add_transition(name, event)
        return name

    def add_fresh_event(self, base: "SignalEvent | str") -> str:
        """Add a new instance of ``base``, choosing an unused instance index."""
        if isinstance(base, str):
            base = SignalEvent.parse(base)
        instance = base.instance
        while str(base.with_instance(instance)) in self.net.transition_names:
            instance += 1
        return self.add_event(base.with_instance(instance))

    def add_dummy(self, name: str) -> str:
        """Add an unlabelled (dummy) transition."""
        self.net.add_transition(name, None)
        return name

    def event_of(self, transition: str) -> Optional[SignalEvent]:
        """The signal event labelling a transition (None for dummies)."""
        label = self.net.label_of(transition)
        if label is None:
            return None
        if not isinstance(label, SignalEvent):
            raise PetriNetError(f"transition {transition!r} has a non-signal label")
        return label

    def transitions_of_signal(self, signal: str) -> List[str]:
        """All transition names labelled with events of ``signal``."""
        result = []
        for transition in self.net.transitions:
            if isinstance(transition.label, SignalEvent) and transition.label.signal == signal:
                result.append(transition.name)
        return result

    def transitions_of_event(self, base: "SignalEvent | str") -> List[str]:
        """All transition instances of a base event (any instance index)."""
        if isinstance(base, str):
            base = SignalEvent.parse(base)
        result = []
        for transition in self.net.transitions:
            label = transition.label
            if (isinstance(label, SignalEvent) and label.signal == base.signal
                    and label.direction == base.direction):
                result.append(transition.name)
        return result

    # ------------------------------------------------------------------
    # convenience construction
    # ------------------------------------------------------------------
    def connect(self, source: str, target: str) -> None:
        """Arc between transitions/places, inserting implicit places as needed."""
        self.net.add_arc(source, target)

    def chain(self, *nodes: str) -> None:
        """Connect a sequence of nodes pairwise: ``chain(a, b, c)`` = a->b->c."""
        for src, dst in zip(nodes, nodes[1:]):
            self.connect(src, dst)

    def cycle(self, *nodes: str) -> None:
        """Connect nodes in a cycle (chain plus closing arc)."""
        self.chain(*nodes)
        if len(nodes) > 1:
            self.connect(nodes[-1], nodes[0])

    def mark(self, *places_or_arcs: str) -> None:
        """Put one token on each named place (or implicit ``<t1,t2>`` place)."""
        marking = {p: n for p, n in self.net._initial.items()}
        for name in places_or_arcs:
            if not self.net.has_place(name):
                raise PetriNetError(f"unknown place {name!r}")
            marking[name] = marking.get(name, 0) + 1
        self.net.set_initial(marking)

    def set_initial_value(self, signal: str, value: int) -> None:
        """Record the initial binary value of a signal (0 or 1)."""
        if value not in (0, 1):
            raise PetriNetError("initial value must be 0 or 1")
        if signal not in self.signals:
            raise PetriNetError(f"undeclared signal {signal!r}")
        self.initial_values[signal] = value

    def copy(self, name: Optional[str] = None) -> "STG":
        """A deep copy, optionally renamed."""
        clone = STG(name or self.name)
        clone.net = self.net.copy(name or self.name)
        clone.signals = dict(self.signals)
        clone.initial_values = dict(self.initial_values)
        return clone

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def event_names(self) -> List[str]:
        """Names of all non-dummy transitions."""
        return [t.name for t in self.net.transitions if t.label is not None]

    def __repr__(self) -> str:
        return (f"STG({self.name!r}, signals={len(self.signals)}, "
                f"|T|={len(self.net.transitions)}, |P|={len(self.net.places)})")
