"""repro: synthesis and optimization of partially specified asynchronous systems.

A from-scratch Python reproduction of Kondratyev, Cortadella, Kishinevsky,
Lavagno and Yakovlev, *Automatic synthesis and optimization of partially
specified asynchronous systems*, DAC 1999.

Public API tour
---------------

Specify behaviour partially (channels, partial signals)::

    from repro import PartialSpec, ChannelRole, run_flow

    spec = PartialSpec("lr")
    spec.declare_channel("l", ChannelRole.PASSIVE)
    spec.declare_channel("r", ChannelRole.ACTIVE)
    spec.cycle("l?", "r!", "r?", "l!")
    spec.mark("<l!,l?>")
    result = run_flow(spec)          # expand, reduce, encode, map, time
    print(result.report.area, result.report.cycle_time)

Or drive the stages individually: :func:`repro.hse.expansion.expand`,
:func:`repro.sg.generator.generate_sg`,
:func:`repro.reduction.explore.reduce_concurrency`,
:func:`repro.encoding.insertion.resolve_csc`,
:func:`repro.circuit.synthesize.synthesize_circuit`,
:func:`repro.timing.critical_cycle.critical_cycle`.
"""

from .petri.net import PetriNet, PetriNetError
from .petri.stg import STG, Direction, SignalEvent, SignalKind
from .petri.parser import parse_stg, read_stg, save_stg, write_stg
from .sg.graph import StateGraph, StateGraphError
from .sg.generator import ConsistencyError, generate_sg
from .sg.properties import check_implementability, csc_conflicts
from .hse.spec import ChannelRole, PartialSpec
from .hse.constraints import InterfaceConstraint
from .hse.expansion import expand, expand_four_phase, expand_two_phase
from .reduction.fwdred import forward_reduction
from .reduction.explore import (ExplorationStats, full_reduction,
                                full_reduction_with_stats, reduce_concurrency)
from .encoding.insertion import resolve_csc
from .circuit.library import DEFAULT_LIBRARY, Cell, Library
from .circuit.netlist import Netlist
from .circuit.synthesize import synthesize_circuit
from .timing.delays import TABLE1_DELAYS, DelayModel
from .timing.critical_cycle import critical_cycle
from .flow import (FlowResult, ImplementationReport, implement, implement_stg,
                   reduce_sg, run_flow, run_flow_stg)
from .pipeline import ArtifactStore, FlowConfig, run_pipeline

__version__ = "0.1.0"

__all__ = [
    "PetriNet", "PetriNetError",
    "STG", "Direction", "SignalEvent", "SignalKind",
    "parse_stg", "read_stg", "save_stg", "write_stg",
    "StateGraph", "StateGraphError", "ConsistencyError", "generate_sg",
    "check_implementability", "csc_conflicts",
    "ChannelRole", "PartialSpec", "InterfaceConstraint",
    "expand", "expand_four_phase", "expand_two_phase",
    "forward_reduction", "full_reduction", "full_reduction_with_stats",
    "ExplorationStats", "reduce_concurrency",
    "resolve_csc",
    "DEFAULT_LIBRARY", "Cell", "Library", "Netlist", "synthesize_circuit",
    "TABLE1_DELAYS", "DelayModel", "critical_cycle",
    "FlowResult", "ImplementationReport", "implement", "implement_stg",
    "reduce_sg", "run_flow", "run_flow_stg",
    "ArtifactStore", "FlowConfig", "run_pipeline",
    "__version__",
]
