"""Typed, serializable stage artifacts and their payload codecs.

Every pipeline stage produces a JSON-serializable *payload* that can be
persisted in the :class:`~repro.pipeline.store.ArtifactStore` and decoded
back into the in-memory objects the next stage consumes.  Two invariants
make stage-granular resume sound:

* **Canonical renaming.**  :func:`sg_to_payload` renumbers states by BFS
  from the initial state (successors in sorted label order), so the payload
  of a graph is independent of how its states were spelled (marking tuples,
  strings, prior payload indices) and of hash-seed-dependent iteration.
  Encoding a decoded graph is the identity.

* **Normalize through the wire format.**  The pipeline always feeds a stage
  the *decoded* payload of its input, never the live object the previous
  stage happened to produce in this process.  Cold and warm runs therefore
  start every stage from bit-identical inputs, which is what makes their
  reports byte-identical.

Decoded state graphs use dense integers ``0..n-1`` as states (state ``0``
is initial); all analyses treat states as opaque hashables, so nothing
downstream can tell the difference.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from fractions import Fraction
from typing import Dict, List, Optional

from ..circuit.library import Library
from ..circuit.netlist import Netlist
from ..circuit.synthesize import CircuitImplementation, SignalImplementation
from ..encoding.insertion import InsertionChoice
from ..petri.stg import Direction, SignalEvent, SignalKind
from ..sg.graph import StateGraph
from ..timing.critical_cycle import CycleReport


class ArtifactError(Exception):
    """Raised when an artifact cannot be encoded or decoded."""


# ----------------------------------------------------------------------
# state graphs
# ----------------------------------------------------------------------
def _canonical_state_order(sg: StateGraph) -> List:
    """BFS order from the initial state, successors in sorted label order.

    Unreachable states (none exist in flow-produced graphs) are appended in
    ``repr`` order, which is deterministic for the marking-tuple and string
    states the system uses.
    """
    if sg.initial is None or sg.initial not in sg:
        raise ArtifactError(f"state graph {sg.name!r} has no initial state")
    order: List = [sg.initial]
    index = {sg.initial: 0}
    queue = deque((sg.initial,))
    while queue:
        state = queue.popleft()
        successors = sg.successors(state)
        for label in sorted(successors):
            target = successors[label]
            if target not in index:
                index[target] = len(order)
                order.append(target)
                queue.append(target)
    if len(order) < len(sg):
        for state in sorted((s for s in sg.states if s not in index),
                            key=repr):
            index[state] = len(order)
            order.append(state)
    return order


def sg_to_payload(sg: StateGraph) -> Dict[str, object]:
    """Canonical JSON-ready rendering of a state graph."""
    order = _canonical_state_order(sg)
    index = {state: i for i, state in enumerate(order)}
    codes = sg.codes
    arcs: List[List[object]] = []
    for state in order:
        successors = sg.successors(state)
        for label in sorted(successors):
            arcs.append([index[state], label, index[successors[label]]])
    return {
        "name": sg.name,
        "signals": [[signal, sg.kinds[signal].value] for signal in sg.signals],
        "events": sorted(
            [[label, event.signal, event.direction.value, event.instance]
             for label, event in sg.events.items()]),
        "states": len(order),
        "initial": 0,
        "codes": [list(codes[state]) if state in codes else None
                  for state in order],
        "arcs": arcs,
    }


def sg_from_payload(payload: Dict[str, object]) -> StateGraph:
    """Rebuild a state graph from its payload (states are ints ``0..n-1``)."""
    sg = StateGraph(payload["name"])
    for signal, kind in payload["signals"]:
        sg.declare_signal(signal, SignalKind(kind))
    for label, signal, direction, instance in payload["events"]:
        sg.declare_event(label, SignalEvent(signal, Direction(direction),
                                            instance))
    codes = payload["codes"]
    for state in range(payload["states"]):
        code = codes[state]
        sg.add_state(state, None if code is None else tuple(code))
    sg.initial = payload["initial"]
    for source, label, target in payload["arcs"]:
        sg.add_arc(source, label, target)
    return sg


# ----------------------------------------------------------------------
# netlists and circuits
# ----------------------------------------------------------------------
def netlist_from_payload(payload: Dict[str, object],
                         library: Library) -> Netlist:
    """Rebuild a netlist from :func:`repro.pipeline.hashing.netlist_payload`.

    Gate names, orders and cell bindings are preserved exactly, so the
    rebuilt netlist simulates and renders byte-identically to the original.
    """
    netlist = Netlist(payload["name"], library)
    for net in payload["inputs"]:
        netlist.add_input(net)
    for net in payload["outputs"]:
        netlist.add_output(net)
    for name, cell, inputs, output in payload["gates"]:
        netlist.add_gate(cell, inputs, output=output, name=name)
    for source, target in payload["aliases"]:
        netlist.add_alias(source, target)
    return netlist


def circuit_payload(circuit: CircuitImplementation) -> Dict[str, object]:
    """JSON-ready rendering of a synthesized circuit.

    Minimized covers are carried as rendered equations only; a rebuilt
    :class:`SignalImplementation` has ``cover``/``set_cover``/``reset_cover``
    set to ``None`` (everything reports consume -- style, equation, netlist,
    per-signal area -- survives the round trip).
    """
    from .hashing import netlist_payload
    return {
        "name": circuit.name,
        "area": circuit.area,
        "netlist": netlist_payload(circuit.netlist),
        "signals": [[signal, impl.style, impl.equation,
                     netlist_payload(impl.netlist)]
                    for signal, impl in circuit.signals.items()],
    }


def circuit_from_payload(payload: Dict[str, object],
                         library: Library) -> CircuitImplementation:
    signals = {
        signal: SignalImplementation(
            signal=signal, style=style, cover=None, set_cover=None,
            reset_cover=None,
            netlist=netlist_from_payload(net_payload, library),
            equation=equation)
        for signal, style, equation, net_payload in payload["signals"]}
    return CircuitImplementation(
        name=payload["name"], signals=signals,
        netlist=netlist_from_payload(payload["netlist"], library))


# ----------------------------------------------------------------------
# timing, insertions
# ----------------------------------------------------------------------
def cycle_payload(cycle: Optional[CycleReport]) -> Optional[Dict[str, object]]:
    if cycle is None:
        return None
    from .hashing import fraction_text
    return {
        "period": fraction_text(cycle.period),
        "events": list(cycle.events),
        "input_events": list(cycle.input_events),
        "transient_steps": cycle.transient_steps,
    }


def cycle_from_payload(payload: Optional[Dict[str, object]]
                       ) -> Optional[CycleReport]:
    if payload is None:
        return None
    return CycleReport(period=Fraction(payload["period"]),
                       events=tuple(payload["events"]),
                       input_events=tuple(payload["input_events"]),
                       transient_steps=payload["transient_steps"])


def insertion_payload(choice: InsertionChoice) -> Dict[str, object]:
    return dataclasses.asdict(choice)


def insertion_from_payload(payload: Dict[str, object]) -> InsertionChoice:
    return InsertionChoice(**payload)


# ----------------------------------------------------------------------
# partial specifications (expand-stage keys)
# ----------------------------------------------------------------------
def spec_payload(spec) -> Dict[str, object]:
    """Canonical-ish rendering of a :class:`~repro.hse.spec.PartialSpec`.

    Used only to *key* the expand stage (dataclass ``repr`` handles the
    net's labels); expansion itself always reruns from the live object when
    the key misses.
    """
    net = spec.net
    return {
        "name": spec.name,
        "channels": {name: role.name for name, role in spec.channels.items()},
        "partial_signals": {name: kind.name
                            for name, kind in spec.partial_signals.items()},
        "full_signals": {name: kind.name
                         for name, kind in spec.full_signals.items()},
        "initial_values": dict(spec.initial_values),
        "net": {
            "places": [repr(place) for place in net.places],
            "transitions": [repr(transition)
                            for transition in net.transitions],
            "pre": {t: dict(places) for t, places in net._pre.items()},
            "post": {t: dict(places) for t, places in net._post.items()},
            "initial": net.marking_dict(net.initial_marking()),
        },
    }
