"""The Fig. 4 flow as named stages with content-addressed resume.

``run_pipeline`` evaluates one :class:`~repro.pipeline.config.FlowConfig`
through the stage chain

    expand -> generate -> reduce -> resolve -> synthesize -> timing -> verify

Each stage is keyed by ``digest(stage, schema, config slice, input content
digests)`` and produces a serializable payload (:mod:`.artifacts`).  With
an :class:`~repro.pipeline.store.ArtifactStore`, a stage whose key hits is
served from disk without recomputation, so warm re-runs skip exactly the
stages whose inputs changed: a delays-only config change recomputes timing
(and verification) but reuses expansion, SG generation, reduction, CSC
resolution and synthesis.  Keys bind to *content* digests, so two design
points that reduce to the same state graph share every downstream artifact
even within one cold run.

Determinism: stages always consume the payload-decoded form of their
inputs (never the live object a previous stage produced in this process),
so cold and warm evaluations start every stage from bit-identical inputs
and the final reports are byte-identical -- across runs, hash seeds, and
serial vs parallel sweeps.
"""

from __future__ import annotations

import dataclasses
import time
import weakref
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .. import engine
from ..obs import progress as obs_progress
from ..obs.metrics import registry as obs_registry
from ..obs.trace import Span, span as obs_span
from ..circuit.synthesize import (CircuitImplementation, estimate_circuit_area,
                                  synthesize_circuit)
from ..encoding.insertion import resolve_csc
from ..petri.parser import parse_stg, write_stg
from ..reduction.explore import (ExplorationResult, ExplorationStats,
                                 full_reduction_with_stats, reduce_concurrency)
from ..explore import ExplorationBudget
from ..sg.generator import DEFAULT_MAX_STATES as DEFAULT_SG_MAX_STATES
from ..sg.generator import generate_sg
from ..sg.graph import StateGraph
from ..sg.resynthesis import ResynthesisError, resynthesise_stg
from ..timing.critical_cycle import TimingError, critical_cycle
from .artifacts import (circuit_from_payload, circuit_payload,
                        cycle_from_payload, cycle_payload,
                        insertion_from_payload, insertion_payload,
                        netlist_from_payload, sg_from_payload, sg_to_payload,
                        spec_payload)
from .config import STAGE_ORDER, FlowConfig
from .hashing import digest_payload, graph_digest, text_digest
from .store import ArtifactStore

__all__ = ["PipelineError", "PipelineResult", "ReductionSummary",
           "StageResult", "cached_graph_digest", "run_pipeline",
           "run_reduction"]

#: Worker-side decode memo: payload digest -> decoded state graph.  Sweep
#: points of one spec decode the same initial-SG payload thousands of
#: times; stages never mutate their inputs, so sharing the decoded object
#: is safe.  Registered with the engine so benchmarks can clear it, and
#: bounded (whole-table reset on overflow, like the minimizer memo) so
#: long-lived processes cannot accumulate graphs without end.
_DECODED_SG: Dict[str, StateGraph] = engine.register_cache(
    {}, name="pipeline-decoded-sg")
_DECODED_SG_LIMIT = 512

#: Encode memo for pre-generated state graphs handed to the pipeline
#: (sweep workers cache one SG per spec): graph -> (version, payload).
_SG_PAYLOAD_MEMO: "weakref.WeakKeyDictionary[StateGraph, Tuple[int, Dict]]" \
    = engine.register_cache(weakref.WeakKeyDictionary(),
                            name="pipeline-sg-payload")

#: Digest memo for pre-generated state graphs: graph -> (version, digest).
_GRAPH_DIGEST_MEMO: "weakref.WeakKeyDictionary[StateGraph, Tuple[int, str]]" \
    = engine.register_cache(weakref.WeakKeyDictionary(),
                            name="pipeline-graph-digest")


class PipelineError(Exception):
    """Raised when the pipeline cannot be driven from the given inputs."""


def _cached_sg_payload(sg: StateGraph) -> Dict[str, object]:
    entry = _SG_PAYLOAD_MEMO.get(sg)
    if entry is not None and entry[0] == sg._version:
        return entry[1]
    payload = sg_to_payload(sg)
    _SG_PAYLOAD_MEMO[sg] = (sg._version, payload)
    return payload


def cached_graph_digest(sg: StateGraph) -> str:
    """:func:`~repro.pipeline.hashing.graph_digest`, memoized per version."""
    entry = _GRAPH_DIGEST_MEMO.get(sg)
    if entry is not None and entry[0] == sg._version:
        return entry[1]
    digest = graph_digest(sg)
    _GRAPH_DIGEST_MEMO[sg] = (sg._version, digest)
    return digest


def _decode_sg(payload: Dict[str, object], digest: str) -> StateGraph:
    sg = _DECODED_SG.get(digest)
    if sg is None:
        sg = sg_from_payload(payload)
        if len(_DECODED_SG) >= _DECODED_SG_LIMIT:
            _DECODED_SG.clear()
        _DECODED_SG[digest] = sg
    return sg


@dataclass
class StageResult:
    """One evaluated (or cache-served) stage."""

    stage: str
    payload: object
    digest: str
    key: Optional[str]
    cached: bool
    #: The stage-native object, present only when the stage actually ran in
    #: this process (e.g. the full :class:`ExplorationResult` with its
    #: history, or the synthesized circuit with minimized covers).
    live: object = None


@dataclass(frozen=True)
class ReductionSummary:
    """Store-served stand-in for a live :class:`ExplorationResult`."""

    strategy: str
    initial_cost: Optional[float]
    best_cost: Optional[float]
    stats: Optional[ExplorationStats]

    @property
    def improved(self) -> bool:
        """Whether the search beat the initial cost."""
        return (self.best_cost is not None and self.initial_cost is not None
                and self.best_cost < self.initial_cost)


def run_reduction(config: FlowConfig, sg: StateGraph
                  ) -> Tuple[StateGraph, Optional[ExplorationResult],
                             Optional[ExplorationStats]]:
    """Apply the configured reduction strategy to a live state graph.

    The single implementation behind both :func:`repro.flow.reduce_sg` and
    the pipeline's reduce stage; per-strategy frontier/budget defaults come
    from :data:`repro.pipeline.config.STRATEGY_DEFAULTS`.
    """
    if config.strategy == "none":
        return sg, None, None
    if config.strategy == "full":
        chosen, stats = full_reduction_with_stats(
            sg, keep_conc=config.keep_conc,
            size_frontier=config.effective_frontier(),
            weight=config.weight,
            max_explored=config.effective_max_explored())
        return chosen, None, stats
    exploration = reduce_concurrency(
        sg, keep_conc=config.keep_conc,
        size_frontier=config.effective_frontier(),
        weight=config.weight,
        max_explored=config.effective_max_explored(),
        strategy=config.strategy)
    return exploration.best, exploration, exploration.stats


def _observe_stage(record: Optional[Span], stage: str, key: Optional[str],
                   digest: str, cached: bool, seconds: float) -> None:
    """Fold one stage outcome into the span/metrics/heartbeat sinks.

    Pure observation: everything here reads the stage result, nothing
    feeds back, so traced and untraced runs stay byte-identical.
    """
    if record is not None:
        record.set(digest=digest, cached=cached)
        if key is not None:
            record.set(key=key)
    outcome = "reused" if cached else "computed"
    reg = obs_registry()
    reg.counter(f"repro_stage_{outcome}_total",
                f"Pipeline stages {outcome}.", stage=stage).inc()
    if not cached:
        reg.histogram("repro_stage_seconds",
                      "Wall seconds per computed pipeline stage.",
                      stage=stage).observe(seconds)
    obs_progress.emit("stage", {"stage": stage, "event": outcome,
                                "digest": digest[:12],
                                "seconds": round(seconds, 4)}, force=True)


def _execute(store: Optional[ArtifactStore], stage: str,
             config_slice: Dict[str, object],
             inputs: Callable[[], List[str]],
             compute: Callable[[], Tuple[object, object]]) -> StageResult:
    """Serve a stage from the store or compute-and-persist it.

    ``inputs`` is a thunk producing the input content digests: key
    derivation (and the digesting behind it) only happens when a store is
    actually in play.
    """
    with obs_span("stage:" + stage) as record:
        key = None
        if store is not None:
            key = ArtifactStore.stage_key(stage, config_slice, inputs())
            entry = store.get_entry(key, stage=stage)
            if entry is not None:
                _observe_stage(record, stage, key, entry["digest"],
                               cached=True, seconds=0.0)
                return StageResult(stage, entry["payload"], entry["digest"],
                                   key, cached=True)
        obs_progress.emit("stage", {"stage": stage, "event": "start"},
                          force=True)
        started = time.perf_counter()
        payload, live = compute()
        seconds = time.perf_counter() - started
        digest = digest_payload(payload)
        if store is not None:
            store.put_entry(key, stage, payload, digest=digest)
        _observe_stage(record, stage, key, digest, cached=False,
                       seconds=seconds)
        return StageResult(stage, payload, digest, key, cached=False,
                           live=live)


@dataclass
class PipelineResult:
    """Everything one pipeline evaluation produced, stage by stage.

    ``sg_digests`` carries the content digests of the generate/reduce/
    resolve graph payloads computed during the run, so accessors never
    re-serialize a payload just to name it.
    """

    config: FlowConfig
    name: str
    results: Dict[str, StageResult]
    store: Optional[ArtifactStore] = None
    sg_digests: Dict[str, str] = field(default_factory=dict)
    _decoded: Dict[str, object] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # cache accounting
    # ------------------------------------------------------------------
    def stage_status(self) -> Dict[str, str]:
        """``{stage: "cached" | "computed"}`` in execution order."""
        return {stage: ("cached" if self.results[stage].cached else "computed")
                for stage in STAGE_ORDER if stage in self.results}

    # ------------------------------------------------------------------
    # decoded artifact accessors (memoized per result)
    # ------------------------------------------------------------------
    def _sg(self, stage: str, payload: Dict[str, object]) -> StateGraph:
        """A per-result decode of a graph payload.

        Deliberately *not* served from the process-global ``_DECODED_SG``
        memo: graphs handed to callers are theirs to mutate, and a shared
        object would poison every later evaluation with the same digest.
        """
        key = "sg:" + self.sg_digests[stage]
        if key not in self._decoded:
            self._decoded[key] = sg_from_payload(payload)
        return self._decoded[key]

    def stg_text(self) -> Optional[str]:
        """The expanded STG text, when expansion was part of this run."""
        expand = self.results.get("expand")
        return None if expand is None else expand.payload["stg"]

    def expanded_stg(self):
        """The handshake-expanded STG (live when expansion ran here)."""
        expand = self.results.get("expand")
        if expand is None:
            return None
        return expand.live if expand.live is not None \
            else parse_stg(expand.payload["stg"])

    def initial_sg(self) -> StateGraph:
        """The generated (maximal-concurrency) state graph, decoded."""
        return self._sg("generate", self.results["generate"].payload)

    def reduced_sg(self) -> StateGraph:
        """The state graph after concurrency reduction, decoded."""
        return self._sg("reduce", self.results["reduce"].payload["sg"])

    def resolved_sg(self) -> StateGraph:
        """The CSC-resolved state graph, decoded."""
        return self._sg("resolve", self.results["resolve"].payload["sg"])

    def insertions(self) -> List:
        """The state-signal insertion choices, decoded."""
        return [insertion_from_payload(entry)
                for entry in self.results["resolve"].payload["insertions"]]

    def csc_resolved(self) -> bool:
        """Whether CSC resolution succeeded within budget."""
        return self.results["resolve"].payload["resolved"]

    def exploration(self):
        """The live exploration when this process ran the reduce stage, a
        :class:`ReductionSummary` when the store served it, ``None`` for
        the strategies that do not search (``none``/``full``)."""
        if self.config.strategy not in ("beam", "best-first"):
            return None
        result = self.results["reduce"]
        if result.live is not None:
            return result.live
        return ReductionSummary(strategy=self.config.strategy,
                                initial_cost=result.payload["initial_cost"],
                                best_cost=result.payload["best_cost"],
                                stats=self.reduction_stats())

    def reduction_stats(self) -> Optional[ExplorationStats]:
        """Exploration statistics of the reduce stage, if it searched."""
        stats = self.results["reduce"].payload["stats"]
        return None if stats is None else ExplorationStats(**stats)

    def circuit(self) -> Optional[CircuitImplementation]:
        """The synthesized circuit, decoded (``None`` when CSC failed)."""
        result = self.results["synthesize"]
        if result.live is not None:
            return result.live
        payload = result.payload["circuit"]
        if payload is None:
            return None
        key = "circuit:" + result.digest
        if key not in self._decoded:
            self._decoded[key] = circuit_from_payload(
                payload, self.config.resolved_library())
        return self._decoded[key]

    def area_estimate(self) -> Optional[float]:
        """The optimistic area estimate when CSC stayed unresolved."""
        return self.results["synthesize"].payload["area_estimate"]

    def resynthesised_stg(self):
        """The re-derived STG, when ``resynthesise`` was enabled."""
        text = self.results["synthesize"].payload["stg"]
        return None if text is None else parse_stg(text)

    def cycle(self):
        """The critical-cycle report, decoded (``None`` if timing failed)."""
        return cycle_from_payload(self.results["timing"].payload["cycle"])

    def verification(self):
        """The verification report, when the config asked for one."""
        result = self.results.get("verify")
        if result is None:
            return None
        if result.live is not None:
            return result.live
        from ..verify.certificate import VerificationReport
        return VerificationReport.from_dict(result.payload)


def run_pipeline(config: FlowConfig,
                 spec=None,
                 stg=None,
                 stg_text: Optional[str] = None,
                 initial_sg: Optional[StateGraph] = None,
                 extra_constraints=(),
                 name: Optional[str] = None,
                 store: Optional[ArtifactStore] = None) -> PipelineResult:
    """Evaluate one design point through the staged Fig. 4 flow.

    Exactly one entry point must be given: a :class:`PartialSpec`
    (runs handshake expansion first), an :class:`STG`/``.g`` text (starts
    at SG generation) or a pre-generated ``initial_sg`` (the sweep's entry;
    also how :func:`repro.flow.implement` evaluates an already-reduced
    graph under ``strategy="none"``).
    """
    with obs_span("pipeline", strategy=config.strategy) as record:
        result = _run_stages(config, spec=spec, stg=stg, stg_text=stg_text,
                             initial_sg=initial_sg,
                             extra_constraints=extra_constraints,
                             name=name, store=store)
        if record is not None:
            record.set(name=result.name, stages=result.stage_status())
        return result


def _run_stages(config: FlowConfig,
                spec=None,
                stg=None,
                stg_text: Optional[str] = None,
                initial_sg: Optional[StateGraph] = None,
                extra_constraints=(),
                name: Optional[str] = None,
                store: Optional[ArtifactStore] = None) -> PipelineResult:
    """The stage chain behind :func:`run_pipeline` (span-wrapped there)."""
    results: Dict[str, StageResult] = {}

    # ------------------------------------------------------------ expand
    if spec is not None:
        expand_slice = dict(config.slice_for("expand"))
        if extra_constraints:
            expand_slice["constraints"] = [repr(constraint)
                                           for constraint in extra_constraints]

        def compute_expand():
            from ..hse.expansion import expand
            expanded = expand(spec, phases=config.phases,
                              extra_constraints=extra_constraints)
            return {"stg": write_stg(expanded)}, expanded

        results["expand"] = _execute(
            store, "expand", expand_slice,
            lambda: [digest_payload(spec_payload(spec))], compute_expand)
        stg_text = results["expand"].payload["stg"]
    elif stg is not None and stg_text is None:
        stg_text = write_stg(stg)

    # ---------------------------------------------------------- generate
    generate_slice = config.slice_for("generate")
    if initial_sg is not None:
        sg_given = initial_sg
        results["generate"] = _execute(
            store, "generate", generate_slice,
            lambda: [cached_graph_digest(sg_given)],
            lambda: (_cached_sg_payload(sg_given), None))
    elif stg_text is not None:
        text = stg_text

        def compute_generate():
            budget = ExplorationBudget(
                max_states=(DEFAULT_SG_MAX_STATES
                            if config.sg_max_states is None
                            else config.sg_max_states),
                max_arcs=config.sg_max_arcs)
            return (sg_to_payload(generate_sg(parse_stg(text),
                                              budget=budget,
                                              engine=config.sg_engine)),
                    None)

        results["generate"] = _execute(
            store, "generate", generate_slice,
            lambda: [text_digest(text)], compute_generate)
    else:
        raise PipelineError(
            "run_pipeline needs a spec, an STG (or .g text), or a "
            "pre-generated initial_sg")
    initial_digest = results["generate"].digest

    # ------------------------------------------------------------ reduce
    def compute_reduce():
        decoded = _decode_sg(results["generate"].payload, initial_digest)
        chosen, live, stats = run_reduction(config, decoded)
        if config.strategy == "none":
            sg_payload = results["generate"].payload
        else:
            sg_payload = sg_to_payload(chosen)
        payload = {
            "sg": sg_payload,
            "initial_cost": None if live is None else live.initial_cost,
            "best_cost": None if live is None else live.best_cost,
            "stats": None if stats is None else dataclasses.asdict(stats),
        }
        return payload, live

    results["reduce"] = _execute(store, "reduce", config.slice_for("reduce"),
                                 lambda: [initial_digest], compute_reduce)
    reduced_payload = results["reduce"].payload["sg"]
    reduced_digest = digest_payload(reduced_payload)

    # ----------------------------------------------------------- resolve
    def compute_resolve():
        decoded = _decode_sg(reduced_payload, reduced_digest)
        resolution = resolve_csc(decoded,
                                 max_signals=config.max_csc_signals)
        payload = {
            "sg": sg_to_payload(resolution.sg),
            "insertions": [insertion_payload(choice)
                           for choice in resolution.insertions],
            "resolved": resolution.resolved,
        }
        return payload, None

    results["resolve"] = _execute(store, "resolve",
                                  config.slice_for("resolve"),
                                  lambda: [reduced_digest], compute_resolve)
    resolved_payload = results["resolve"].payload["sg"]
    resolved_digest = digest_payload(resolved_payload)
    resolved_ok = results["resolve"].payload["resolved"]

    # -------------------------------------------------------- synthesize
    def compute_synthesize():
        decoded = _decode_sg(resolved_payload, resolved_digest)
        library = config.resolved_library()
        circuit: Optional[CircuitImplementation] = None
        area_estimate: Optional[float] = None
        if resolved_ok:
            try:
                circuit = synthesize_circuit(decoded,
                                             exact=config.exact_covers,
                                             library=library)
            except ValueError:
                circuit = None  # 2-phase (toggle) SGs have no SOP logic
        else:
            try:
                area_estimate = estimate_circuit_area(decoded, library)
            except ValueError:
                area_estimate = None
        resynthesised: Optional[str] = None
        if config.resynthesise:
            try:
                resynthesised = write_stg(resynthesise_stg(decoded))
            except ResynthesisError:
                resynthesised = None
        payload = {
            "circuit": None if circuit is None else circuit_payload(circuit),
            "area_estimate": area_estimate,
            "stg": resynthesised,
        }
        return payload, circuit

    results["synthesize"] = _execute(store, "synthesize",
                                     config.slice_for("synthesize"),
                                     lambda: [resolved_digest],
                                     compute_synthesize)

    # ------------------------------------------------------------ timing
    def compute_timing():
        decoded = _decode_sg(resolved_payload, resolved_digest)
        try:
            cycle = critical_cycle(decoded, config.delays)
        except TimingError:
            cycle = None
        return {"cycle": cycle_payload(cycle)}, cycle

    results["timing"] = _execute(store, "timing", config.slice_for("timing"),
                                 lambda: [resolved_digest], compute_timing)

    # ------------------------------------------------------------ verify
    label = name or resolved_payload["name"]
    if config.verify:
        from ..verify.certificate import skipped_report, verify_netlist
        with obs_span("stage:verify") as record:
            started = time.perf_counter()
            circuit_section = results["synthesize"].payload["circuit"]
            if circuit_section is None:
                report = skipped_report(
                    label, "no synthesized circuit (unresolved CSC or "
                    "toggle specification)", model=config.verify_model)
                cached = False
            else:
                netlist = netlist_from_payload(circuit_section["netlist"],
                                               config.resolved_library())
                decoded = _decode_sg(resolved_payload, resolved_digest)
                report, cached = verify_netlist(
                    netlist, decoded, model=config.verify_model,
                    max_states=config.verify_max_states, name=label,
                    store=store)
            payload = report.to_dict()
            digest = digest_payload(payload)
            results["verify"] = StageResult(
                "verify", payload, digest, None,
                cached=cached, live=report)
            _observe_stage(record, "verify", None, digest, cached=cached,
                           seconds=time.perf_counter() - started)

    return PipelineResult(config=config, name=label, results=results,
                          store=store,
                          sg_digests={"generate": initial_digest,
                                      "reduce": reduced_digest,
                                      "resolve": resolved_digest})
