"""Process-safe content-addressed artifact store.

One directory of ``<key>.json`` entries serves every cache in the system:
per-stage pipeline artifacts, sweep point rows and verification
certificates.  Keys are SHA-256 digests (:mod:`repro.pipeline.hashing`)
over ``(stage, schema version, config slice, input digests)``, so the same
content is never computed twice -- across re-runs, overlapping grids,
worker processes and even different design points that happen to share an
intermediate result.

Writes go through a unique temporary file followed by :func:`os.replace`,
which is atomic on POSIX and Windows; concurrent runs over the same store
directory at worst recompute an artifact and overwrite it with identical
bytes.  Entries with an unknown schema version, a different stage name or
unreadable JSON are treated as absent (and recomputed), never as errors,
so stores survive upgrades and corruption gracefully.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from .hashing import digest_payload

__all__ = ["STORE_SCHEMA", "ArtifactStore"]

#: Bump when the entry layout or key derivation changes; old entries are
#: simply never looked up again (``repro cache gc`` reclaims the bytes).
STORE_SCHEMA = 1


class ArtifactStore:
    """A directory of ``<key>.json`` artifacts, one per completed stage."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # Lazy payload-digest -> key index for entry_by_digest; keys already
        # scanned are skipped on the next miss.  The lock keeps concurrent
        # lookups (the serving layer calls this from executor threads) from
        # observing a half-built index and answering a false miss.
        self._digest_index: Dict[str, str] = {}
        self._indexed: set = set()
        self._index_lock = threading.Lock()

    # ------------------------------------------------------------------
    # keys and paths
    # ------------------------------------------------------------------
    @staticmethod
    def stage_key(stage: str, config_slice: Dict[str, object],
                  inputs: List[str]) -> str:
        """Content-addressed key for one stage evaluation."""
        return digest_payload({"stage": stage, "schema": STORE_SCHEMA,
                               "config": config_slice, "inputs": inputs})

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # ------------------------------------------------------------------
    # entries
    # ------------------------------------------------------------------
    def get_entry(self, key: str,
                  stage: Optional[str] = None) -> Optional[Dict[str, object]]:
        """The stored entry, or ``None`` when absent, corrupt or outdated.

        ``stage`` additionally requires the entry to belong to that stage
        (a safety net against digest collisions across key derivations).
        """
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(entry, dict) or entry.get("schema") != STORE_SCHEMA:
            return None
        if "payload" not in entry or "stage" not in entry:
            return None
        if stage is not None and entry["stage"] != stage:
            return None
        return entry

    def put_entry(self, key: str, stage: str, payload,
                  digest: Optional[str] = None) -> Dict[str, object]:
        """Atomically persist an artifact (last writer wins, never torn)."""
        entry = {
            "schema": STORE_SCHEMA,
            "stage": stage,
            "digest": digest if digest is not None else digest_payload(payload),
            "payload": payload,
        }
        text = json.dumps(entry, indent=2, sort_keys=True) + "\n"
        descriptor, temp_name = tempfile.mkstemp(
            prefix=f".{key[:16]}-", suffix=".tmp", dir=self.root)
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(temp_name, self._path(key))
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        with self._index_lock:
            self._digest_index[entry["digest"]] = key
            self._indexed.add(key)
        return entry

    # ------------------------------------------------------------------
    # content lookup (the ``GET /artifacts/<digest>`` surface)
    # ------------------------------------------------------------------
    def entry_by_digest(self, digest: str) -> Optional[Dict[str, object]]:
        """The entry whose *payload digest* is ``digest``, or ``None``.

        Stage keys bind to how content was produced; the payload digest
        names the content itself, so this is how a client resolves an
        artifact reference (e.g. from a job result) without knowing which
        stage evaluation wrote it.  Backed by a lazy in-memory index over
        the directory: only keys not seen before are scanned on a miss,
        and entries written through this handle index themselves.
        """
        with self._index_lock:
            key = self._digest_index.get(digest)
            if key is not None:
                entry = self.get_entry(key)
                if entry is not None and entry.get("digest") == digest:
                    return entry
                # The indexed key vanished (external gc/clear): the lazy
                # index is no longer trustworthy -- drop it and rescan
                # everything (another surviving key may hold the digest).
                self._digest_index.clear()
                self._indexed.clear()
            found = None
            for key in self.keys():
                if key in self._indexed:
                    continue
                self._indexed.add(key)
                entry = self.get_entry(key)
                if entry is None:
                    continue
                self._digest_index[entry["digest"]] = key
                if entry["digest"] == digest and found is None:
                    found = entry
            return found

    # ------------------------------------------------------------------
    # maintenance (the ``repro cache`` surface)
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Entry count, total bytes and per-stage entry counts."""
        per_stage: Dict[str, int] = {}
        total_bytes = 0
        entries = 0
        for path in sorted(self.root.glob("*.json")):
            entries += 1
            try:
                total_bytes += path.stat().st_size
            except OSError:
                continue
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    entry = json.load(handle)
                stage = entry.get("stage", "unknown") \
                    if isinstance(entry, dict) else "unknown"
                if isinstance(entry, dict) \
                        and entry.get("schema") != STORE_SCHEMA:
                    stage = f"outdated:{stage}"
            except (OSError, json.JSONDecodeError):
                stage = "corrupt"
            per_stage[stage] = per_stage.get(stage, 0) + 1
        return {"root": str(self.root), "entries": entries,
                "bytes": total_bytes,
                "stages": dict(sorted(per_stage.items()))}

    def gc(self, max_bytes: int) -> Dict[str, int]:
        """Delete oldest entries (by mtime) until the store fits the budget."""
        files = []
        total = 0
        for path in self.root.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            files.append((stat.st_mtime, path.name, path, stat.st_size))
            total += stat.st_size
        deleted = freed = 0
        for _, __, path, size in sorted(files):
            if total - freed <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            deleted += 1
            freed += size
        return {"deleted": deleted, "freed_bytes": freed,
                "remaining_bytes": total - freed}

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    # ------------------------------------------------------------------
    # iteration
    # ------------------------------------------------------------------
    def keys(self) -> List[str]:
        """Every stored key, sorted."""
        return sorted(path.stem for path in self.root.glob("*.json"))

    def __len__(self) -> int:
        return len(self.keys())

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())
