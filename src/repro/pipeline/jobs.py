"""Job-oriented pipeline entry point: digests out, not objects.

The classic entry points (:mod:`repro.flow`) return live in-memory reports
-- state graphs, circuits, exploration traces.  A long-running service
cannot hand those across process boundaries, and it does not need to: with
an :class:`~repro.pipeline.store.ArtifactStore` every stage payload is
already persisted under a content digest.  :func:`run_synth_job` evaluates
one design point and returns a **pure-JSON job payload**: the per-stage
artifact digests (resolvable through ``GET /artifacts/<digest>`` or
:meth:`ArtifactStore.entry_by_digest`), a flat summary row of the
reproducible quantities Tables 1-2 report, and the config identity.

:func:`summary_row` is the single home for deriving that row from a
:class:`~repro.pipeline.stages.PipelineResult`; the sweep runner builds its
report rows from the same function, so the service, the CLI sweep and the
benchmarks can never drift on what a "row" means.

Everything returned here is deterministic: no timings, no cache
provenance, containers in fixed order -- two evaluations of the same job
(cold or warm, serial or across a worker pool) render byte-identical JSON.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Optional

from .config import STAGE_ORDER, FlowConfig
from .stages import PipelineResult, run_pipeline
from .store import ArtifactStore

__all__ = ["run_synth_job", "run_synth_job_with_status", "summary_row",
           "synth_job_payload"]


def summary_row(result: PipelineResult) -> Dict[str, object]:
    """The reproducible summary quantities of one pipeline evaluation.

    Exactly the stage-derived columns of a sweep report row (states before/
    after reduction, CSC accounting, area, critical cycle, exploration
    stats, verification verdict) -- and nothing run-dependent: no wall
    times, no cache hit/miss provenance.  Byte-identical between cold and
    warm runs and between serial and parallel execution.
    """
    reduce_payload = result.results["reduce"].payload
    resolve_payload = result.results["resolve"].payload
    synth_payload = result.results["synthesize"].payload
    cycle = result.results["timing"].payload["cycle"]
    verify_result = result.results.get("verify")
    verification = None if verify_result is None else verify_result.payload
    stats = reduce_payload["stats"]
    circuit = synth_payload["circuit"]
    area = (circuit["area"] if circuit is not None
            else synth_payload["area_estimate"])
    return {
        "states_max": result.results["generate"].payload["states"],
        "states": reduce_payload["sg"]["states"],
        "csc_signals": len(resolve_payload["insertions"]),
        "csc_resolved": resolve_payload["resolved"],
        "area": None if area is None else float(area),
        "cycle_time": (None if cycle is None
                       else float(Fraction(cycle["period"]))),
        "input_events": (None if cycle is None
                         else len(cycle["input_events"])),
        "explored": None if stats is None else stats["explored"],
        "expanded": None if stats is None else stats["expanded"],
        "levels": None if stats is None else stats["levels"],
        "capped": None if stats is None else stats["capped"],
        "verdict": None if verification is None else verification["verdict"],
        "verify_states": (None if verification is None
                          else verification["product_states"]),
        "verify_arcs": (None if verification is None
                        else verification["product_arcs"]),
    }


def synth_job_payload(result: PipelineResult) -> Dict[str, object]:
    """The deterministic JSON payload of one completed synthesis job.

    ``artifacts`` maps each evaluated stage to the content digest of its
    payload; with a shared store a client can fetch the full artifact
    (canonical state graphs, the netlist, the certificate) by digest
    without the service ever serializing a live object.  ``equations``
    duplicates the synthesized logic inline because it is the one artifact
    nearly every caller wants immediately.
    """
    circuit = result.results["synthesize"].payload["circuit"]
    equations = (None if circuit is None
                 else [entry[2] for entry in circuit["signals"]])
    return {
        "name": result.name,
        "config": result.config.to_payload(),
        "config_digest": result.config.digest(),
        "artifacts": {stage: result.results[stage].digest
                      for stage in STAGE_ORDER if stage in result.results},
        "summary": summary_row(result),
        "equations": equations,
    }


def run_synth_job(config: FlowConfig,
                  stg_text: str,
                  name: Optional[str] = None,
                  store: Optional[ArtifactStore] = None
                  ) -> Dict[str, object]:
    """Evaluate one design point from raw ``.g`` text; return job JSON.

    Callers that also need the run-dependent cache provenance use
    :func:`run_synth_job_with_status` instead.
    """
    payload, _ = run_synth_job_with_status(config, stg_text, name=name,
                                           store=store)
    return payload


def run_synth_job_with_status(config: FlowConfig,
                              stg_text: str,
                              name: Optional[str] = None,
                              store: Optional[ArtifactStore] = None):
    """Like :func:`run_synth_job`, plus the per-stage cached/computed map.

    The stage-status map is run-dependent (it reflects what this
    evaluation found in the store) and therefore deliberately **not** part
    of the job payload; services report it next to the result, never
    inside it.
    """
    result = run_pipeline(config, stg_text=stg_text, name=name, store=store)
    return synth_job_payload(result), result.stage_status()
