"""The one home for canonical renderings and content digests.

Every cache key in the system -- sweep rows, verification certificates and
the per-stage pipeline artifacts -- is the SHA-256 of a canonical JSON
rendering produced here.  Canonicalization matters: state-graph signatures
contain frozensets whose iteration order depends on ``PYTHONHASHSEED``, so
:func:`canonical` renders every container in sorted canonical form before
hashing.  The same digest therefore names the same content across
processes, runs and seeds, which is what makes warm stores safe to share
between workers and byte-identical to cold runs.

Before the pipeline existed these helpers were duplicated between
``repro.sweep.store`` and ``repro.verify.certificate``; both modules now
re-export from here.
"""

from __future__ import annotations

import hashlib
import json
from enum import Enum
from fractions import Fraction
from typing import Dict

from ..circuit.netlist import Netlist
from ..sg.graph import StateGraph


def canonical(obj) -> object:
    """A JSON-serializable rendering that is stable across hash seeds.

    Sets and frozensets become sorted lists (sorted by their members'
    canonical JSON text, so mixed element types cannot raise), tuples become
    lists, enums their names, fractions exact strings; anything else
    non-primitive falls back to ``repr``.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, Fraction):
        return f"{obj.numerator}/{obj.denominator}"
    if isinstance(obj, Enum):
        return f"{type(obj).__name__}.{obj.name}"
    if isinstance(obj, dict):
        rendered = {json.dumps(canonical(key), sort_keys=True): canonical(value)
                    for key, value in obj.items()}
        return {key: rendered[key] for key in sorted(rendered)}
    if isinstance(obj, (set, frozenset)):
        members = [canonical(member) for member in obj]
        return sorted(members, key=lambda m: json.dumps(m, sort_keys=True))
    if isinstance(obj, (list, tuple)):
        return [canonical(member) for member in obj]
    return repr(obj)


def fraction_text(value) -> str:
    """Canonical exact-rational text (``"2"``, ``"3/2"``) of a delay value.

    Non-Fraction numerics are normalized via ``limit_denominator(1000)``,
    the same rule :meth:`DelayModel.by_kind` applies, so ``0.1`` renders as
    ``"1/10"`` no matter how it was spelled.
    """
    fraction = value if isinstance(value, Fraction) \
        else Fraction(value).limit_denominator(1000)
    return (str(fraction.numerator) if fraction.denominator == 1
            else f"{fraction.numerator}/{fraction.denominator}")


def digest_payload(obj) -> str:
    """SHA-256 hex digest of the canonical JSON rendering of ``obj``."""
    text = json.dumps(canonical(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def graph_digest(sg: StateGraph) -> str:
    """Content digest of an SG: arcs, initial state, signals, codes."""
    arcs, initial, signals, codes = sg.signature()
    return digest_payload({
        "arcs": arcs,
        "initial": initial,
        "signals": signals,
        "codes": codes,
    })


def netlist_payload(netlist: Netlist) -> Dict[str, object]:
    """Canonical structure of a netlist (list orders are deterministic)."""
    return {
        "name": netlist.name,
        "inputs": list(netlist.primary_inputs),
        "outputs": list(netlist.primary_outputs),
        "gates": [[gate.name, gate.cell.name, list(gate.inputs), gate.output]
                  for gate in netlist.gates],
        "aliases": [[alias.source, alias.target]
                    for alias in netlist.aliases],
    }


def netlist_digest(netlist: Netlist) -> str:
    """Content digest of a netlist's structure."""
    return digest_payload(netlist_payload(netlist))


def text_digest(text: str) -> str:
    """Digest of a text artifact (e.g. a ``.g`` rendering of an STG)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
