"""The staged Fig. 4 pipeline: one config, typed artifacts, unified store.

This package is the spine the whole system runs on:

* :mod:`.config` -- :class:`FlowConfig`, the single source of truth for
  every design-point knob (and the per-strategy search defaults);
* :mod:`.hashing` -- the one home for canonical renderings and content
  digests (graph, netlist, config);
* :mod:`.artifacts` -- serializable stage artifacts and their codecs;
* :mod:`.store` -- the process-safe content-addressed
  :class:`ArtifactStore` shared by pipeline stages, sweep rows and
  verification certificates;
* :mod:`.stages` -- :func:`run_pipeline`, the staged evaluation with
  stage-granular warm-store resume.

``repro.flow`` keeps the familiar ``run_flow``/``run_flow_stg``/
``implement`` entry points as thin wrappers over :func:`run_pipeline`.
"""

from .config import (DEFAULT_VERIFY_MAX_STATES, STAGE_ORDER,
                     STRATEGY_DEFAULTS, STRATEGIES, FlowConfig,
                     delays_from_payload, delays_payload, library_name,
                     register_library, resolve_library)
from .hashing import (canonical, digest_payload, graph_digest,
                      netlist_digest, netlist_payload, text_digest)
from .jobs import (run_synth_job, run_synth_job_with_status, summary_row,
                   synth_job_payload)
from .stages import (PipelineError, PipelineResult, ReductionSummary,
                     StageResult, cached_graph_digest, run_pipeline,
                     run_reduction)
from .store import STORE_SCHEMA, ArtifactStore

__all__ = [
    "DEFAULT_VERIFY_MAX_STATES", "STAGE_ORDER", "STRATEGY_DEFAULTS",
    "STRATEGIES", "FlowConfig", "delays_from_payload", "delays_payload",
    "library_name", "register_library", "resolve_library",
    "canonical", "digest_payload", "graph_digest", "netlist_digest",
    "netlist_payload", "text_digest",
    "run_synth_job", "run_synth_job_with_status", "summary_row",
    "synth_job_payload",
    "PipelineError", "PipelineResult", "ReductionSummary", "StageResult",
    "cached_graph_digest", "run_pipeline", "run_reduction",
    "STORE_SCHEMA", "ArtifactStore",
]
