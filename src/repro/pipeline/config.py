"""The single source of truth for every design-point knob.

:class:`FlowConfig` is a frozen dataclass naming one point of the design
space the Fig. 4 flow can evaluate: reduction strategy and search budget,
CSC insertion budget, delay model, library, synthesis options and the
verification configuration.  ``run_flow``/``run_flow_stg``/``implement``,
the sweep grid and the CLI all construct one of these instead of
re-declaring the same keyword sprawl, so the knobs cannot drift apart.

The per-strategy exploration defaults that used to be duplicated between
``flow.reduce_sg`` and ``sweep.grid.make_point`` live here too
(:data:`STRATEGY_DEFAULTS`); both call sites now resolve them through
:meth:`FlowConfig.effective_frontier` / :meth:`effective_max_explored`.

A config serializes to deterministic JSON (:meth:`to_json` /
:meth:`from_json`) and digests canonically (:meth:`digest`), and each
pipeline stage keys its artifacts on only the *slice* of the config it
depends on (:meth:`slice_for`): changing the delay model invalidates the
timing and verification artifacts but none of the expansion, reduction or
synthesis ones.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, Optional, Tuple

from ..circuit.library import DEFAULT_LIBRARY, Library
from ..timing.delays import TABLE1_DELAYS, DelayModel
from .hashing import digest_payload, fraction_text

__all__ = [
    "CHECK_ENGINES", "DEFAULT_VERIFY_MAX_STATES", "SG_ENGINES",
    "STAGE_ORDER", "STRATEGIES", "STRATEGY_DEFAULTS", "VERIFY_MODELS",
    "FlowConfig", "canonical_keep", "delays_from_payload", "delays_payload",
    "library_name", "register_library", "resolve_library",
]

KeepPairs = Tuple[Tuple[str, str], ...]

#: The reduction strategies the flow understands: ``none`` keeps maximal
#: concurrency, ``beam``/``best-first`` run the Fig. 9 search, ``full``
#: drives concurrency as low as validity allows.
STRATEGIES = ("none", "beam", "best-first", "full")

#: Per-strategy ``(size_frontier, max_explored)`` defaults -- the numbers
#: the paper's searches use (4/10k) and the exhaustive variant (6/20k).
STRATEGY_DEFAULTS: Dict[str, Tuple[Optional[int], Optional[int]]] = {
    "none": (None, None),
    "beam": (4, 10_000),
    "best-first": (4, 10_000),
    "full": (6, 20_000),
}

#: Default cap on explored product states during verification (mirrors
#: :data:`repro.verify.conformance.DEFAULT_MAX_STATES` without importing
#: the verify subsystem at config time).
DEFAULT_VERIFY_MAX_STATES = 1_000_000

VERIFY_MODELS = ("atomic", "structural")

#: Marking-exploration cores for SG generation: ``auto`` tries the packed
#: engine and falls back to tuples, the others force one core.  The
#: symbolic engine never materializes a state graph, so it is not an SG
#: engine; see :data:`CHECK_ENGINES`.
SG_ENGINES = ("auto", "packed", "tuples")

#: Engines for coding (consistency/USC/CSC) checks.  ``symbolic`` runs
#: the BDD path (:mod:`repro.symbolic`), which never enumerates states.
CHECK_ENGINES = ("auto", "packed", "tuples", "symbolic")

#: Named libraries a config can reference.  Library objects are not
#: serializable, so configs carry the *name*; custom libraries register
#: here (:func:`register_library`) before appearing in a config.
_LIBRARIES: Dict[str, Library] = {"default": DEFAULT_LIBRARY}

#: The stages of the Fig. 4 pipeline, in execution order.
STAGE_ORDER = ("expand", "generate", "reduce", "resolve", "synthesize",
               "timing", "verify")


def _library_payload(library: Library) -> list:
    return sorted([cell.name, cell.fanin, cell.area, cell.delay,
                   cell.sequential] for cell in library.cells.values())


def register_library(library: Library, name: Optional[str] = None) -> str:
    """Register a library under ``name`` (default: its own name).

    Config digests (and therefore artifact-store keys) carry the library by
    *name*, so one name must always mean one cell set: re-registering a
    name with different cells raises instead of silently rebinding (which
    would let a warm store serve circuits synthesized for another library).
    """
    key = name or library.name
    existing = _LIBRARIES.get(key)
    if existing is not None and existing is not library \
            and _library_payload(existing) != _library_payload(library):
        raise ValueError(
            f"library name {key!r} is already registered with different "
            "cells; pick another name so store keys stay unambiguous")
    _LIBRARIES[key] = library
    return key


def resolve_library(name: str) -> Library:
    """The registered library for ``name``; raises ``KeyError`` if unknown."""
    try:
        return _LIBRARIES[name]
    except KeyError:
        raise KeyError(f"no registered library {name!r}; "
                       f"available: {sorted(_LIBRARIES)}") from None


def library_name(library: Library) -> str:
    """Name a library object for a config, registering it if needed.

    An unregistered library whose name collides with a different
    registered cell set gets a content-digest suffix, so distinct
    libraries can never alias one store key.
    """
    for name, registered in _LIBRARIES.items():
        if registered is library:
            return name
    try:
        return register_library(library)
    except ValueError:
        suffix = digest_payload(_library_payload(library))[:12]
        return register_library(library, f"{library.name}-{suffix}")


def canonical_keep(keep: Iterable[Tuple[str, str]]) -> KeepPairs:
    """Order-independent normal form of Keep_Conc pairs."""
    return tuple(sorted(tuple(sorted(pair)) for pair in keep))


def delays_payload(delays: DelayModel) -> Dict[str, object]:
    """Deterministic JSON rendering of a :class:`DelayModel`."""
    return {
        "input": fraction_text(delays.input_delay),
        "output": fraction_text(delays.output_delay),
        "internal": fraction_text(delays.internal_delay),
        "overrides": [[signal, fraction_text(delay)]
                      for signal, delay in delays.overrides],
    }


def delays_from_payload(payload: Dict[str, object]) -> DelayModel:
    """Rebuild a :class:`DelayModel` from :func:`delays_payload` output."""
    return DelayModel(
        Fraction(payload["input"]), Fraction(payload["output"]),
        Fraction(payload["internal"]),
        tuple((signal, Fraction(text))
              for signal, text in payload.get("overrides", [])))


@dataclass(frozen=True)
class FlowConfig:
    """One design point of the Fig. 4 flow, as a frozen value object."""

    strategy: str = "best-first"
    weight: float = 0.5
    size_frontier: Optional[int] = None
    keep_conc: KeepPairs = ()
    max_explored: Optional[int] = None
    max_csc_signals: int = 4
    delays: DelayModel = TABLE1_DELAYS
    library: str = "default"
    exact_covers: bool = True
    resynthesise: bool = False
    phases: int = 4
    verify: bool = False
    verify_model: str = "atomic"
    verify_max_states: int = DEFAULT_VERIFY_MAX_STATES
    #: Optional state-graph generation budget (states / traversed arcs);
    #: ``None`` keeps the generator's historical default state cap.
    sg_max_states: Optional[int] = None
    sg_max_arcs: Optional[int] = None
    #: Marking-exploration core for SG generation (:data:`SG_ENGINES`)
    #: and engine for coding checks run on this config's behalf
    #: (:data:`CHECK_ENGINES`).  The defaults reproduce the historical
    #: behaviour byte for byte.
    sg_engine: str = "auto"
    check_engine: str = "auto"

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {self.strategy!r}; "
                             f"expected one of {STRATEGIES}")
        if self.verify_model not in VERIFY_MODELS:
            raise ValueError(f"unknown verify model {self.verify_model!r}; "
                             f"expected one of {VERIFY_MODELS}")
        if self.sg_engine not in SG_ENGINES:
            raise ValueError(f"unknown SG engine {self.sg_engine!r}; "
                             f"expected one of {SG_ENGINES}")
        if self.check_engine not in CHECK_ENGINES:
            raise ValueError(f"unknown check engine {self.check_engine!r}; "
                             f"expected one of {CHECK_ENGINES}")

    @staticmethod
    def create(strategy: str = "best-first",
               weight: float = 0.5,
               size_frontier: Optional[int] = None,
               keep_conc: Iterable[Tuple[str, str]] = (),
               max_explored: Optional[int] = None,
               max_csc_signals: int = 4,
               delays: DelayModel = TABLE1_DELAYS,
               library=DEFAULT_LIBRARY,
               exact_covers: bool = True,
               resynthesise: bool = False,
               phases: int = 4,
               verify: bool = False,
               verify_model: str = "atomic",
               verify_max_states: Optional[int] = None,
               sg_max_states: Optional[int] = None,
               sg_max_arcs: Optional[int] = None,
               sg_engine: str = "auto",
               check_engine: str = "auto") -> "FlowConfig":
        """Build a config from flow-style arguments, normalizing as it goes.

        Accepts a :class:`Library` object or name for ``library`` and
        canonicalizes ``keep_conc`` pair order so that two spellings of the
        same design point digest identically.
        """
        if isinstance(library, Library):
            library = library_name(library)
        else:
            resolve_library(library)  # fail fast on unknown names
        return FlowConfig(
            strategy=strategy,
            weight=float(weight),
            size_frontier=size_frontier,
            keep_conc=canonical_keep(keep_conc),
            max_explored=max_explored,
            max_csc_signals=max_csc_signals,
            delays=delays,
            library=library,
            exact_covers=bool(exact_covers),
            resynthesise=bool(resynthesise),
            phases=phases,
            verify=bool(verify),
            verify_model=verify_model,
            verify_max_states=(DEFAULT_VERIFY_MAX_STATES
                               if verify_max_states is None
                               else int(verify_max_states)),
            sg_max_states=(None if sg_max_states is None
                           else int(sg_max_states)),
            sg_max_arcs=(None if sg_max_arcs is None
                         else int(sg_max_arcs)),
            sg_engine=sg_engine,
            check_engine=check_engine)

    def replace(self, **changes) -> "FlowConfig":
        """A copy with the given fields changed (keep_conc canonicalized)."""
        if "keep_conc" in changes:
            changes["keep_conc"] = canonical_keep(changes["keep_conc"])
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # per-strategy defaults (the single home; flow and sweep both use it)
    # ------------------------------------------------------------------
    def effective_frontier(self) -> Optional[int]:
        """The beam width actually used by this strategy."""
        default = STRATEGY_DEFAULTS[self.strategy][0]
        return default if self.size_frontier is None else self.size_frontier

    def effective_max_explored(self) -> Optional[int]:
        """The exploration budget actually used by this strategy."""
        default = STRATEGY_DEFAULTS[self.strategy][1]
        return default if self.max_explored is None else self.max_explored

    def resolved_library(self) -> Library:
        """The registered :class:`Library` object this config names."""
        return resolve_library(self.library)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        """Deterministic JSON-ready rendering of the whole config."""
        return {
            "strategy": self.strategy,
            "weight": self.weight,
            "size_frontier": self.size_frontier,
            "keep_conc": [list(pair) for pair in self.keep_conc],
            "max_explored": self.max_explored,
            "max_csc_signals": self.max_csc_signals,
            "delays": delays_payload(self.delays),
            "library": self.library,
            "exact_covers": self.exact_covers,
            "resynthesise": self.resynthesise,
            "phases": self.phases,
            "verify": self.verify,
            "verify_model": self.verify_model,
            "verify_max_states": self.verify_max_states,
            "sg_max_states": self.sg_max_states,
            "sg_max_arcs": self.sg_max_arcs,
            "sg_engine": self.sg_engine,
            "check_engine": self.check_engine,
        }

    @staticmethod
    def from_payload(payload: Dict[str, object]) -> "FlowConfig":
        """Rebuild a config from :meth:`to_payload` output."""
        return FlowConfig(
            strategy=payload["strategy"],
            weight=float(payload["weight"]),
            size_frontier=payload["size_frontier"],
            keep_conc=tuple(tuple(pair) for pair in payload["keep_conc"]),
            max_explored=payload["max_explored"],
            max_csc_signals=payload["max_csc_signals"],
            delays=delays_from_payload(payload["delays"]),
            library=payload["library"],
            exact_covers=payload["exact_covers"],
            resynthesise=payload["resynthesise"],
            phases=payload["phases"],
            verify=payload["verify"],
            verify_model=payload["verify_model"],
            verify_max_states=payload["verify_max_states"],
            # Absent in payloads serialized before the exploration-core
            # budgets existed; missing means "generator default".
            sg_max_states=payload.get("sg_max_states"),
            sg_max_arcs=payload.get("sg_max_arcs"),
            # Absent before the engine knobs existed; missing means the
            # historical auto behaviour.
            sg_engine=payload.get("sg_engine", "auto"),
            check_engine=payload.get("check_engine", "auto"))

    def to_json(self) -> str:
        """The payload as deterministic, sorted JSON text."""
        return json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"

    @staticmethod
    def from_json(text: str) -> "FlowConfig":
        """Parse a config from :meth:`to_json` text."""
        return FlowConfig.from_payload(json.loads(text))

    def digest(self) -> str:
        """Canonical content digest of the whole config."""
        return digest_payload({"flow-config": self.to_payload()})

    # ------------------------------------------------------------------
    # stage slices: the knobs each pipeline stage depends on
    # ------------------------------------------------------------------
    def slice_for(self, stage: str) -> Dict[str, object]:
        """The sub-configuration that stage ``stage``'s result depends on.

        Stage cache keys bind to this slice (plus input digests), which is
        what gives the store *stage-granular* resume: a knob change only
        invalidates the stages whose slice mentions it.  The ``verify``
        slice is informational: the verify stage binds the same two knobs
        through the certificate key
        (:func:`repro.verify.certificate.verification_key`), which is
        content-addressed on the netlist so identical circuits reached
        through different strategies share one certificate.
        """
        if stage == "expand":
            return {"phases": self.phases}
        if stage == "generate":
            # Default budgets and engine key exactly like the pre-budget
            # era, so a warm store keeps serving every artifact it
            # already holds.
            slice_: Dict[str, object] = {}
            if self.sg_max_states is not None or self.sg_max_arcs is not None:
                slice_ = {"max_states": self.sg_max_states,
                          "max_arcs": self.sg_max_arcs}
            if self.sg_engine != "auto":
                slice_["engine"] = self.sg_engine
            return slice_
        if stage == "reduce":
            if self.strategy == "none":
                return {"strategy": "none"}
            slice_: Dict[str, object] = {
                "strategy": self.strategy,
                "weight": self.weight,
                "keep_conc": [list(pair) for pair in self.keep_conc],
                "max_explored": self.effective_max_explored(),
            }
            if self.strategy != "best-first":  # best-first has no beam
                slice_["size_frontier"] = self.effective_frontier()
            return slice_
        if stage == "resolve":
            return {"max_csc_signals": self.max_csc_signals}
        if stage == "synthesize":
            return {"library": self.library,
                    "exact_covers": self.exact_covers,
                    "resynthesise": self.resynthesise}
        if stage == "timing":
            return {"delays": delays_payload(self.delays)}
        if stage == "verify":
            return {"model": self.verify_model,
                    "max_states": self.verify_max_states}
        raise KeyError(f"unknown stage {stage!r}; "
                       f"expected one of {STAGE_ORDER}")
