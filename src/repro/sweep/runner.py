"""Sharded execution of a sweep grid over ``multiprocessing``.

The parent process resolves store hits, partitions the remaining points
into deterministic spec-coherent chunks, and hands chunks to a worker pool
(``jobs=1`` runs the very same chunk function in-process).  Workers cache
the generated state graph per spec -- and, through the process-global
engine memos, everything downstream of it -- so a chunk of same-spec points
shares work the way a serial run does.  Results come back tagged with their
grid index and are merged in grid order, which makes parallel output
byte-identical to serial output regardless of scheduling; all wall-clock
numbers live on the :class:`SweepOutcome`, never in the rows.
"""

from __future__ import annotations

import math
import multiprocessing
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import engine
from ..flow import FlowResult, run_flow_stg
from ..sg.generator import generate_sg
from ..sg.graph import StateGraph
from .grid import SweepGrid, SweepPoint, spec_registry
from .store import ResultStore, graph_digest

#: Worker-side cache: spec name -> generated state graph.  Module-global so
#: it survives across chunks dispatched to the same worker process (and is
#: inherited for free under the ``fork`` start method).  Registered with the
#: engine so ``engine.clear_caches()`` resets it like every other pure memo
#: (the benchmarks rely on that for honest cold-phase timings).
_SG_CACHE: Dict[str, StateGraph] = engine.register_cache({})


def _spec_sg(spec: str) -> StateGraph:
    sg = _SG_CACHE.get(spec)
    if sg is None:
        factory = spec_registry()[spec]
        sg = generate_sg(factory())
        _SG_CACHE[spec] = sg
    return sg


def _number(value) -> Optional[float]:
    return None if value is None else float(value)


def evaluate_point(point: SweepPoint) -> Dict[str, object]:
    """Run one design point through the flow; returns a deterministic row.

    Rows contain only reproducible quantities (no timings, no cache
    provenance): everything here must be byte-identical between serial and
    parallel runs and between cold and warm store reads.
    """
    initial_sg = _spec_sg(point.spec)
    flow: FlowResult = run_flow_stg(
        None, strategy=point.strategy, keep_conc=point.keep,
        size_frontier=point.frontier,
        weight=0.5 if point.weight is None else point.weight,
        max_explored=point.max_explored,
        name=point.label(), initial_sg=initial_sg,
        verify=point.verify)
    report = flow.report
    stats = flow.reduction_stats or (
        flow.exploration.stats if flow.exploration is not None else None)
    verification = report.verification
    return {
        "spec": point.spec,
        "variant": point.variant,
        "strategy": point.strategy,
        "weight": point.weight,
        "frontier": point.frontier,
        "keep": ";".join(",".join(pair) for pair in point.keep),
        "states_max": len(flow.initial_sg),
        "states": len(report.sg),
        "csc_signals": report.csc_signal_count,
        "csc_resolved": report.csc_resolved,
        "area": _number(report.area),
        "cycle_time": _number(report.cycle_time),
        "input_events": report.input_event_count,
        "explored": None if stats is None else stats.explored,
        "expanded": None if stats is None else stats.expanded,
        "levels": None if stats is None else stats.levels,
        "capped": None if stats is None else stats.capped,
        "verdict": None if verification is None else verification.verdict,
        "verify_states": (None if verification is None
                          else verification.product_states),
        "verify_arcs": (None if verification is None
                        else verification.product_arcs),
    }


def _run_chunk(chunk: List[Tuple[int, SweepPoint]]
               ) -> List[Tuple[int, Dict[str, object]]]:
    """Evaluate one chunk of (grid index, point) work items."""
    return [(index, evaluate_point(point)) for index, point in chunk]


def make_chunks(items: Sequence[Tuple[int, SweepPoint]],
                jobs: int,
                chunk_size: Optional[int] = None
                ) -> List[List[Tuple[int, SweepPoint]]]:
    """Deterministic spec-coherent partitioning of pending work.

    Points of one spec land in contiguous chunks (so a worker's SG and memo
    caches get reuse), but each spec's run is split into at most ``jobs``
    pieces (so one heavyweight spec cannot serialize the whole sweep).
    Chunks are ordered heaviest-spec-first as a cheap longest-processing-time
    heuristic for the pool's dynamic scheduling; "heavy" means the SG size
    when the parent happens to have it cached (store runs compute digests),
    else the group's point count.  Ordering only shapes scheduling -- rows
    are merged by grid index, so it never affects results.
    """
    groups: Dict[str, List[Tuple[int, SweepPoint]]] = {}
    for item in items:
        groups.setdefault(item[1].spec, []).append(item)

    def weight(group: List[Tuple[int, SweepPoint]]) -> tuple:
        spec = group[0][1].spec
        cached = _SG_CACHE.get(spec)
        return (-(len(cached) if cached is not None else 0),
                -len(group), spec)

    sized = sorted(groups.values(), key=weight)
    chunks: List[List[Tuple[int, SweepPoint]]] = []
    for group in sized:
        size = chunk_size or max(1, math.ceil(len(group) / max(1, jobs)))
        for start in range(0, len(group), size):
            chunks.append(group[start:start + size])
    return chunks


@dataclass
class SweepOutcome:
    """Everything one sweep run produced, rows in grid order."""

    points: List[SweepPoint]
    rows: List[Dict[str, object]]
    computed: int
    cached: int
    jobs: int
    seconds: float

    @property
    def points_per_second(self) -> float:
        return len(self.points) / self.seconds if self.seconds > 0 else 0.0


def run_sweep(grid: SweepGrid,
              jobs: int = 1,
              store: Optional[ResultStore] = None,
              chunk_size: Optional[int] = None) -> SweepOutcome:
    """Evaluate every point of ``grid``; returns rows in grid order.

    With a ``store``, completed points are read back instead of recomputed
    and fresh results are persisted, so a warm re-run (or an overlapping
    grid) does zero exploration.  ``jobs > 1`` shards the pending points
    over a process pool; the merged rows are byte-identical to ``jobs=1``.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    started = time.perf_counter()
    points = grid.points
    rows: List[Optional[Dict[str, object]]] = [None] * len(points)
    keys: List[Optional[str]] = [None] * len(points)
    pending: List[Tuple[int, SweepPoint]] = []
    cached = 0

    if store is not None:
        digests: Dict[str, str] = {}
        for index, point in enumerate(points):
            digest = digests.get(point.spec)
            if digest is None:
                digest = graph_digest(_spec_sg(point.spec))
                digests[point.spec] = digest
            keys[index] = store.key(point.config(), digest)
            entry = store.get(keys[index])
            if entry is not None:
                # The display name is not part of the key: re-label the
                # stored row so overlapping grids that spell the same
                # config with another variant name stay byte-identical.
                row = dict(entry["row"])
                row["variant"] = point.variant
                rows[index] = row
                cached += 1
            else:
                pending.append((index, point))
    else:
        pending = list(enumerate(points))

    def merge(chunk_result: List[Tuple[int, Dict[str, object]]]) -> None:
        # Persist as results arrive, not after the whole sweep: an
        # interrupted run keeps every point completed so far.
        for index, row in chunk_result:
            rows[index] = row
            if store is not None:
                store.put(keys[index], {
                    "config": points[index].config(),
                    "variant": points[index].variant,
                    "row": row,
                })

    if pending:
        chunks = make_chunks(pending, jobs, chunk_size)
        if jobs == 1 or len(chunks) == 1:
            for chunk in chunks:
                merge(_run_chunk(chunk))
        else:
            with multiprocessing.Pool(processes=min(jobs, len(chunks))) as pool:
                for chunk_result in pool.imap_unordered(_run_chunk, chunks):
                    merge(chunk_result)

    assert all(row is not None for row in rows)
    return SweepOutcome(points=points, rows=rows, computed=len(pending),
                        cached=cached, jobs=jobs,
                        seconds=time.perf_counter() - started)
