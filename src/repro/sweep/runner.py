"""Sharded execution of a sweep grid over ``multiprocessing``.

The parent process resolves store hits, partitions the remaining points
into deterministic spec-coherent chunks, and hands chunks to a worker pool
(``jobs=1`` runs the very same chunk function in-process).  Workers cache
the generated state graph per spec -- and, through the process-global
engine memos, everything downstream of it -- so a chunk of same-spec points
shares work the way a serial run does.  Each point is evaluated through
the staged pipeline (:func:`repro.pipeline.run_pipeline`); with a store,
workers share the same artifact directory, so stages whose content-derived
keys coincide (across points, strategies and even concurrent runs) are
computed once and served from disk everywhere else.  Results come back
tagged with their grid index and are merged in grid order, which makes
parallel output byte-identical to serial output regardless of scheduling;
all wall-clock numbers and cache accounting live on the
:class:`SweepOutcome`, never in the rows.
"""

from __future__ import annotations

import math
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import engine
from ..pipeline.config import STAGE_ORDER
from ..pipeline.jobs import summary_row
from ..pipeline.stages import cached_graph_digest, run_pipeline
from ..sg.generator import generate_sg
from ..sg.graph import StateGraph
from .grid import SweepGrid, SweepPoint, spec_registry
from .store import ArtifactStore, ResultStore

__all__ = ["SweepOutcome", "evaluate_point", "evaluate_with_status",
           "make_chunks", "run_sweep"]

#: Worker-side cache: spec name -> generated state graph.  Module-global so
#: it survives across chunks dispatched to the same worker process (and is
#: inherited for free under the ``fork`` start method).  Registered with the
#: engine so ``engine.clear_caches()`` resets it like every other pure memo
#: (the benchmarks rely on that for honest cold-phase timings).
_SG_CACHE: Dict[str, StateGraph] = engine.register_cache(
    {}, name="sweep-spec-sg")

#: Artifact-store root the worker pool shares: set in-process by
#: :func:`run_sweep` and in each pool worker by :func:`_init_worker` (a
#: ``Pool`` initializer, so it reaches workers under every start method,
#: ``spawn`` included).  Workers rebuild their own handle lazily (the
#: store is directory-backed, so handles are cheap and process-safe).
_ARTIFACT_ROOT: Optional[str] = None
_WORKER_STORE: Optional[ArtifactStore] = None


def _init_worker(artifact_root: Optional[str]) -> None:
    global _ARTIFACT_ROOT
    _ARTIFACT_ROOT = artifact_root


def _spec_sg(spec: str) -> StateGraph:
    sg = _SG_CACHE.get(spec)
    if sg is None:
        factory = spec_registry()[spec]
        sg = generate_sg(factory())
        _SG_CACHE[spec] = sg
    return sg


def _worker_store() -> Optional[ArtifactStore]:
    global _WORKER_STORE
    if _ARTIFACT_ROOT is None:
        return None
    if _WORKER_STORE is None or str(_WORKER_STORE.root) != _ARTIFACT_ROOT:
        _WORKER_STORE = ArtifactStore(_ARTIFACT_ROOT)
    return _WORKER_STORE


def evaluate_with_status(point: SweepPoint,
                         store: Optional[ArtifactStore]
                         ) -> Tuple[Dict[str, object], Dict[str, str]]:
    """Run one design point through the pipeline.

    Returns ``(row, stage_status)``.  Rows contain only reproducible
    quantities (no timings, no cache provenance): the point's identity
    columns plus :func:`repro.pipeline.jobs.summary_row` -- everything here
    must be byte-identical between serial and parallel runs and between
    cold and warm store reads.  The stage status feeds the outcome's cache
    accounting only.  The serving layer evaluates sweep-point tasks through
    this same function, so service rows can never drift from CLI rows.
    """
    initial_sg = _spec_sg(point.spec)
    result = run_pipeline(point.flow_config(), initial_sg=initial_sg,
                          name=point.label(), store=store)
    row = {
        "spec": point.spec,
        "variant": point.variant,
        "strategy": point.strategy,
        "weight": point.weight,
        "frontier": point.frontier,
        "keep": ";".join(",".join(pair) for pair in point.keep),
    }
    row.update(summary_row(result))
    row["verify_max_states"] = point.verify_max_states
    return row, result.stage_status()


def evaluate_point(point: SweepPoint) -> Dict[str, object]:
    """Run one design point through the flow; returns a deterministic row."""
    row, _ = evaluate_with_status(point, _worker_store())
    return row


def _run_chunk(chunk: List[Tuple[int, SweepPoint]]
               ) -> List[Tuple[int, Dict[str, object], Dict[str, str]]]:
    """Evaluate one chunk of (grid index, point) work items."""
    store = _worker_store()
    return [(index, *evaluate_with_status(point, store))
            for index, point in chunk]


def make_chunks(items: Sequence[Tuple[int, object]],
                jobs: int,
                chunk_size: Optional[int] = None,
                group_key: Optional[Callable[[object], str]] = None
                ) -> List[List[Tuple[int, object]]]:
    """Deterministic spec-coherent partitioning of pending work.

    Points of one spec land in contiguous chunks (so a worker's SG and memo
    caches get reuse), but each spec's run is split into at most ``jobs``
    pieces (so one heavyweight spec cannot serialize the whole sweep).
    Chunks are ordered heaviest-spec-first as a cheap longest-processing-time
    heuristic for the pool's dynamic scheduling; "heavy" means the SG size
    when the parent happens to have it cached (store runs compute digests),
    else the group's point count.  Ordering only shapes scheduling -- rows
    are merged by grid index, so it never affects results.

    ``group_key`` generalizes the grouping beyond grid points (default: the
    point's ``spec``); the serving layer batches heterogeneous queued tasks
    through the same partitioner by keying synthesis tasks on their spec
    text digest.
    """
    if group_key is None:
        group_key = lambda work: work.spec  # noqa: E731 - default accessor
    groups: Dict[str, List[Tuple[int, object]]] = {}
    for item in items:
        groups.setdefault(group_key(item[1]), []).append(item)

    def weight(group: List[Tuple[int, object]]) -> tuple:
        spec = group_key(group[0][1])
        cached = _SG_CACHE.get(spec)
        return (-(len(cached) if cached is not None else 0),
                -len(group), spec)

    sized = sorted(groups.values(), key=weight)
    chunks: List[List[Tuple[int, SweepPoint]]] = []
    for group in sized:
        size = chunk_size or max(1, math.ceil(len(group) / max(1, jobs)))
        for start in range(0, len(group), size):
            chunks.append(group[start:start + size])
    return chunks


@dataclass
class SweepOutcome:
    """Everything one sweep run produced, rows in grid order.

    ``stage_computed``/``stage_reused`` count pipeline-stage evaluations
    across all computed points; store-served rows never touch the stages,
    and without a store nothing is ever reused.
    """

    points: List[SweepPoint]
    rows: List[Dict[str, object]]
    computed: int
    cached: int
    jobs: int
    seconds: float
    stage_computed: Dict[str, int] = field(default_factory=dict)
    stage_reused: Dict[str, int] = field(default_factory=dict)

    @property
    def points_per_second(self) -> float:
        """Sweep throughput over this run's wall-clock time."""
        return len(self.points) / self.seconds if self.seconds > 0 else 0.0

    def stage_summary(self) -> str:
        """Deterministic one-line stage-cache accounting for CLI/CI use."""
        def render(counts: Dict[str, int]) -> str:
            parts = [f"{stage}={counts[stage]}" for stage in STAGE_ORDER
                     if counts.get(stage)]
            return ",".join(parts)

        computed = sum(self.stage_computed.values())
        reused = sum(self.stage_reused.values())
        text = f"stages: {computed} computed"
        if computed:
            text += f" ({render(self.stage_computed)})"
        text += f", {reused} reused"
        if reused:
            text += f" ({render(self.stage_reused)})"
        return text


def run_sweep(grid: SweepGrid,
              jobs: int = 1,
              store: Optional[ResultStore] = None,
              chunk_size: Optional[int] = None) -> SweepOutcome:
    """Evaluate every point of ``grid``; returns rows in grid order.

    With a ``store``, completed points are read back instead of recomputed,
    fresh results are persisted, and every pipeline stage evaluated along
    the way lands in the same store -- so a warm re-run (or an overlapping
    grid) does zero exploration, and a re-run with changed downstream knobs
    (e.g. another delay model) recomputes only the invalidated stages.
    ``jobs > 1`` shards the pending points over a process pool; the merged
    rows are byte-identical to ``jobs=1``.
    """
    global _ARTIFACT_ROOT
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    started = time.perf_counter()
    points = grid.points
    rows: List[Optional[Dict[str, object]]] = [None] * len(points)
    keys: List[Optional[str]] = [None] * len(points)
    pending: List[Tuple[int, SweepPoint]] = []
    cached = 0
    stage_computed: Dict[str, int] = {}
    stage_reused: Dict[str, int] = {}

    if store is not None:
        digests: Dict[str, str] = {}
        for index, point in enumerate(points):
            digest = digests.get(point.spec)
            if digest is None:
                digest = cached_graph_digest(_spec_sg(point.spec))
                digests[point.spec] = digest
            keys[index] = store.key(point.config(), digest)
            entry = store.get(keys[index])
            if entry is not None:
                # The display name is not part of the key: re-label the
                # stored row so overlapping grids that spell the same
                # config with another variant name stay byte-identical.
                row = dict(entry["row"])
                row["variant"] = point.variant
                rows[index] = row
                cached += 1
            else:
                pending.append((index, point))
    else:
        pending = list(enumerate(points))

    def merge(chunk_result) -> None:
        # Persist as results arrive, not after the whole sweep: an
        # interrupted run keeps every point completed so far.
        for index, row, status in chunk_result:
            rows[index] = row
            for stage, state in status.items():
                counts = (stage_reused if state == "cached"
                          else stage_computed)
                counts[stage] = counts.get(stage, 0) + 1
            if store is not None:
                store.put(keys[index], {
                    "config": points[index].config(),
                    "variant": points[index].variant,
                    "row": row,
                })

    previous_root = _ARTIFACT_ROOT
    _ARTIFACT_ROOT = None if store is None else str(store.root)
    try:
        if pending:
            chunks = make_chunks(pending, jobs, chunk_size)
            if jobs == 1 or len(chunks) == 1:
                for chunk in chunks:
                    merge(_run_chunk(chunk))
            else:
                with multiprocessing.Pool(
                        processes=min(jobs, len(chunks)),
                        initializer=_init_worker,
                        initargs=(_ARTIFACT_ROOT,)) as pool:
                    for chunk_result in pool.imap_unordered(_run_chunk,
                                                            chunks):
                        merge(chunk_result)
    finally:
        _ARTIFACT_ROOT = previous_root

    assert all(row is not None for row in rows)
    return SweepOutcome(points=points, rows=rows, computed=len(pending),
                        cached=cached, jobs=jobs,
                        seconds=time.perf_counter() - started,
                        stage_computed=stage_computed,
                        stage_reused=stage_reused)
