"""Deterministic reporters for sweep results (JSON, CSV, markdown).

Rows are plain dicts with a fixed column set; every format renders them in
grid order with stable key ordering and no timestamps, so two runs that
explored the same grid produce byte-identical files -- the property the
serial-vs-parallel and cold-vs-warm checks assert on.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Sequence

__all__ = ["COLUMNS", "FORMATS", "render", "to_csv", "to_json",
           "to_markdown"]

#: Column order of the tabular formats (and the JSON "columns" header).
COLUMNS = (
    "spec", "variant", "strategy", "weight", "frontier", "keep",
    "states_max", "states", "csc_signals", "csc_resolved",
    "area", "cycle_time", "input_events",
    "explored", "expanded", "levels", "capped",
    "verdict", "verify_states", "verify_arcs", "verify_max_states",
)

FORMATS = ("json", "csv", "md")


def to_json(rows: Sequence[Dict[str, object]]) -> str:
    """Rows as a JSON document with a fixed ``columns`` header."""
    payload = {"columns": list(COLUMNS), "rows": list(rows)}
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def to_csv(rows: Sequence[Dict[str, object]]) -> str:
    """Rows as CSV in :data:`COLUMNS` order (empty cells for ``None``)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(COLUMNS)
    for row in rows:
        writer.writerow(["" if row.get(column) is None else row.get(column)
                         for column in COLUMNS])
    return buffer.getvalue()


def _cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def to_markdown(rows: Sequence[Dict[str, object]]) -> str:
    """Rows as an aligned markdown table (``-`` for ``None``)."""
    table: List[List[str]] = [list(COLUMNS)]
    for row in rows:
        table.append([_cell(row.get(column)) for column in COLUMNS])
    widths = [max(len(line[i]) for line in table) for i in range(len(COLUMNS))]
    lines = []
    for line_number, line in enumerate(table):
        lines.append("| " + " | ".join(
            cell.ljust(width) for cell, width in zip(line, widths)) + " |")
        if line_number == 0:
            lines.append("|" + "|".join("-" * (width + 2)
                                        for width in widths) + "|")
    return "\n".join(lines) + "\n"


def render(rows: Sequence[Dict[str, object]], fmt: str = "md") -> str:
    """Render rows in one of :data:`FORMATS`."""
    if fmt == "json":
        return to_json(rows)
    if fmt == "csv":
        return to_csv(rows)
    if fmt == "md":
        return to_markdown(rows)
    raise ValueError(f"unknown format {fmt!r}; expected one of {FORMATS}")
