"""Declarative design-space grids (the Tables 1-2 rows, for every spec).

A :class:`SweepPoint` names one design point -- ``(spec, strategy, W,
frontier, keep_conc, delays, verify)`` -- in normalized form, so that two
spellings of the same point (e.g. ``none`` at different weights, or
Keep_Conc pairs listed in a different order) collapse to one grid entry.
Every point compiles to a frozen :class:`~repro.pipeline.FlowConfig`
(:meth:`SweepPoint.flow_config`), the single source of truth the staged
pipeline evaluates; per-strategy frontier/budget defaults therefore come
from :data:`repro.pipeline.STRATEGY_DEFAULTS` and cannot drift from the
flow.  :func:`tables_grid` builds the full grid the paper's Tables 1 and 2
sample: maximal concurrency, the searched reductions at several weights
``W``, full reduction, and the named ``x || y`` Keep_Conc variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..flow import STRATEGIES
from ..petri.stg import STG
from ..pipeline.config import STRATEGY_DEFAULTS, FlowConfig, canonical_keep
from ..pipeline.hashing import fraction_text
from ..specs import suite
from ..specs.fig1 import fig1_stg
from ..specs.lr import TABLE1_KEEP_CONC, lr_expanded
from ..specs.mmu import TABLE2_KEEP_CONC, keep_conc_for, mmu_expanded
from ..specs.par import par_expanded
from ..timing.delays import DelayModel

__all__ = [
    "TABLE1_DELAY_AXIS", "SweepGrid", "SweepPoint", "canonical_delays",
    "keep_variants", "make_point", "spec_registry", "tables_grid",
]

KeepPairs = Tuple[Tuple[str, str], ...]

#: The Table 1 per-kind delays (input, output, internal) in canonical text.
TABLE1_DELAY_AXIS = ("2", "1", "1")


def spec_registry() -> Dict[str, Callable[[], STG]]:
    """Every spec the sweep can run, by name: paper specs + the STG suite."""
    registry: Dict[str, Callable[[], STG]] = {
        "fig1": fig1_stg,
        "lr": lr_expanded,
        "mmu": mmu_expanded,
        "par": par_expanded,
    }
    registry.update(suite.sweep_sources())
    return dict(sorted(registry.items()))


def keep_variants(spec: str) -> Dict[str, List[Tuple[str, str]]]:
    """The named Keep_Conc rows of Tables 1-2 for ``spec`` (else empty)."""
    if spec == "lr":
        return dict(TABLE1_KEEP_CONC)
    if spec == "mmu":
        return {name: keep_conc_for(channels)
                for name, channels in TABLE2_KEEP_CONC.items()}
    return {}


def canonical_delays(delays) -> Tuple[str, str, str]:
    """Normalize a delay axis to canonical (input, output, internal) text.

    Accepts ``None`` (the Table 1 model), a 3-sequence of numbers/strings,
    or a :class:`DelayModel` without overrides (per-signal overrides are a
    flow-level feature, not a sweep axis).  ``fraction_text`` normalizes
    every spelling the way :meth:`DelayModel.by_kind` does, so ``0.1`` and
    ``Fraction(1, 10)`` name the same axis.
    """
    if delays is None:
        return TABLE1_DELAY_AXIS
    if isinstance(delays, DelayModel):
        if delays.overrides:
            raise ValueError("sweep delay axes cannot carry per-signal "
                             "overrides; use the flow API instead")
        delays = (delays.input_delay, delays.output_delay,
                  delays.internal_delay)
    input_delay, output_delay, internal_delay = delays
    return (fraction_text(input_delay), fraction_text(output_delay),
            fraction_text(internal_delay))


@dataclass(frozen=True)
class SweepPoint:
    """One normalized design point of the grid.

    ``weight`` and ``frontier`` are ``None`` when the strategy ignores them
    (``none`` ignores both, ``best-first`` has no frontier), so equal points
    compare equal no matter how they were spelled.  ``delays`` is the
    canonical (input, output, internal) delay text; ``verify`` runs the
    gate-level verification subsystem on the synthesized implementation
    (:mod:`repro.verify`) with an optional ``verify_max_states`` product
    state cap and adds its verdict to the row.  ``variant`` is a display
    name for Keep_Conc rows ("li || ri"); it is not part of the identity.
    """

    spec: str
    strategy: str
    weight: Optional[float] = 0.5
    frontier: Optional[int] = None
    keep: KeepPairs = ()
    max_explored: Optional[int] = None
    delays: Tuple[str, str, str] = TABLE1_DELAY_AXIS
    verify: bool = False
    verify_max_states: Optional[int] = None
    variant: str = ""

    def key(self) -> tuple:
        """Hashable identity (everything but the display name)."""
        return (self.spec, self.strategy, self.weight, self.frontier,
                self.keep, self.max_explored, self.delays, self.verify,
                self.verify_max_states)

    def config(self) -> Dict[str, object]:
        """JSON-ready configuration for store keys and reports."""
        return {
            "spec": self.spec,
            "strategy": self.strategy,
            "weight": self.weight,
            "frontier": self.frontier,
            "keep": [list(pair) for pair in self.keep],
            "max_explored": self.max_explored,
            "delays": list(self.delays),
            "verify": self.verify,
            "verify_max_states": self.verify_max_states,
        }

    def delay_model(self) -> DelayModel:
        """The :class:`DelayModel` of this point's delay axis."""
        input_delay, output_delay, internal_delay = self.delays
        return DelayModel.by_kind(Fraction(input_delay),
                                  Fraction(output_delay),
                                  Fraction(internal_delay))

    def flow_config(self) -> FlowConfig:
        """The :class:`FlowConfig` the pipeline evaluates for this point."""
        return FlowConfig.create(
            strategy=self.strategy,
            weight=0.5 if self.weight is None else self.weight,
            size_frontier=self.frontier,
            keep_conc=self.keep,
            max_explored=self.max_explored,
            delays=self.delay_model(),
            verify=self.verify,
            verify_max_states=self.verify_max_states)

    def label(self) -> str:
        """Human-readable point name, e.g. ``lr/best-first/W=0.5``."""
        parts = [self.spec, self.variant or self.strategy]
        if self.weight is not None and not self.variant:
            parts.append(f"W={self.weight:g}")
        return "/".join(parts)


def make_point(spec: str,
               strategy: str,
               weight: float = 0.5,
               frontier: Optional[int] = None,
               keep: Iterable[Tuple[str, str]] = (),
               max_explored: Optional[int] = None,
               delays=None,
               verify: bool = False,
               verify_max_states: Optional[int] = None,
               variant: str = "") -> SweepPoint:
    """Build a normalized :class:`SweepPoint`; validates the strategy."""
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; "
                         f"expected one of {STRATEGIES}")
    norm_weight: Optional[float] = float(weight)
    norm_frontier = frontier
    norm_keep = canonical_keep(keep)
    if strategy == "none":
        norm_weight = None
        norm_frontier = None
        norm_keep = ()          # nothing is reduced, nothing to preserve
        max_explored = None
        variant = ""
    elif strategy == "best-first":
        norm_frontier = None    # no beam, no frontier width
    else:                       # beam / full: default width per strategy
        default_frontier = STRATEGY_DEFAULTS[strategy][0]
        norm_frontier = default_frontier if frontier is None else int(frontier)
    if not verify:
        verify_max_states = None  # cap is meaningless without verification
    return SweepPoint(spec=spec, strategy=strategy, weight=norm_weight,
                      frontier=norm_frontier, keep=norm_keep,
                      max_explored=max_explored,
                      delays=canonical_delays(delays), verify=bool(verify),
                      verify_max_states=verify_max_states, variant=variant)


class SweepGrid:
    """An ordered, de-duplicated collection of sweep points."""

    def __init__(self, points: Iterable[SweepPoint] = ()) -> None:
        self._points: Dict[tuple, SweepPoint] = {}
        for point in points:
            self.add(point)

    def add(self, point: SweepPoint) -> None:
        """Insert a point; an identical configuration is merged (first wins)."""
        self._points.setdefault(point.key(), point)

    def extend(self, points: Iterable[SweepPoint]) -> None:
        """Add every point (duplicates merged)."""
        for point in points:
            self.add(point)

    @property
    def points(self) -> List[SweepPoint]:
        """The de-duplicated points, in insertion order."""
        return list(self._points.values())

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points.values())

    def __contains__(self, point: SweepPoint) -> bool:
        return point.key() in self._points


def tables_grid(specs: Optional[Sequence[str]] = None,
                strategies: Sequence[str] = STRATEGIES,
                weights: Sequence[float] = (0.0, 0.5, 1.0),
                frontier: Optional[int] = None,
                include_keep_variants: bool = True,
                max_explored: Optional[int] = None,
                delays=None,
                verify: bool = False,
                verify_max_states: Optional[int] = None) -> SweepGrid:
    """The full Tables 1-2 style grid over the given specs.

    Per spec: one ``none`` point, one ``beam`` and one ``best-first`` point
    per weight ``W``, one ``full`` point, and (when enabled and the spec has
    them) every named Keep_Conc variant as a ``full`` reduction -- exactly
    the rows the paper reports.  ``delays`` overrides the Table 1 delay
    model for every point; ``verify=True`` additionally runs the gate-level
    verification subsystem (capped at ``verify_max_states`` product states)
    on every point.
    """
    registry = spec_registry()
    if specs is None:
        specs = list(registry)
    else:
        unknown = sorted(set(specs) - set(registry))
        if unknown:
            raise KeyError(f"unknown spec(s) {unknown}; "
                           f"available: {sorted(registry)}")
    grid = SweepGrid()
    for spec in specs:
        for strategy in strategies:
            if strategy in ("beam", "best-first"):
                for weight in weights:
                    grid.add(make_point(spec, strategy, weight=weight,
                                        frontier=frontier,
                                        max_explored=max_explored,
                                        delays=delays, verify=verify,
                                        verify_max_states=verify_max_states))
            else:
                grid.add(make_point(spec, strategy, frontier=frontier,
                                    max_explored=max_explored,
                                    delays=delays, verify=verify,
                                    verify_max_states=verify_max_states))
        if include_keep_variants and "full" in strategies:
            for variant, pairs in keep_variants(spec).items():
                grid.add(make_point(spec, "full", keep=pairs,
                                    frontier=frontier,
                                    max_explored=max_explored,
                                    delays=delays, verify=verify,
                                    verify_max_states=verify_max_states,
                                    variant=variant))
    return grid
