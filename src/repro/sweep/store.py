"""Process-safe on-disk result store for sweep points.

Each completed design point is a single JSON file named by the SHA-256 of
its canonical key -- ``(spec, configuration, graph digest)`` -- so re-runs
and overlapping grids skip work that is already done, and a changed spec
(different state graph) can never serve a stale row.  Writes go through a
unique temporary file followed by :func:`os.replace`, which is atomic on
POSIX and Windows; concurrent sweeps over the same store directory at worst
recompute a point and overwrite it with the identical row.

Canonicalization matters: state-graph signatures contain frozensets whose
iteration order depends on ``PYTHONHASHSEED``, so :func:`graph_digest`
renders every container in sorted canonical form before hashing.  The same
digest therefore names the same graph across processes, runs and seeds.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from enum import Enum
from fractions import Fraction
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from ..sg.graph import StateGraph

#: Bump when the row layout or key derivation changes; old entries are
#: simply never looked up again.  Version 2: the point configuration grew a
#: ``verify`` axis and rows grew verification columns.
STORE_VERSION = 2


def canonical(obj) -> object:
    """A JSON-serializable rendering that is stable across hash seeds.

    Sets and frozensets become sorted lists (sorted by their members'
    canonical JSON text, so mixed element types cannot raise), tuples become
    lists, enums their names, fractions exact strings; anything else
    non-primitive falls back to ``repr``.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, Fraction):
        return f"{obj.numerator}/{obj.denominator}"
    if isinstance(obj, Enum):
        return f"{type(obj).__name__}.{obj.name}"
    if isinstance(obj, dict):
        rendered = {json.dumps(canonical(key), sort_keys=True): canonical(value)
                    for key, value in obj.items()}
        return {key: rendered[key] for key in sorted(rendered)}
    if isinstance(obj, (set, frozenset)):
        members = [canonical(member) for member in obj]
        return sorted(members, key=lambda m: json.dumps(m, sort_keys=True))
    if isinstance(obj, (list, tuple)):
        return [canonical(member) for member in obj]
    return repr(obj)


def _digest(obj) -> str:
    text = json.dumps(canonical(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def graph_digest(sg: StateGraph) -> str:
    """Content digest of an SG: arcs, initial state, signals, codes."""
    arcs, initial, signals, codes = sg.signature()
    return _digest({
        "arcs": arcs,
        "initial": initial,
        "signals": signals,
        "codes": codes,
    })


class ResultStore:
    """A directory of ``<key>.json`` rows, one per completed sweep point."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def key(self, config: Dict[str, object], graph: str) -> str:
        """Store key for a point configuration evaluated on graph ``graph``."""
        return _digest({"version": STORE_VERSION, "config": config,
                        "graph": graph})

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The stored entry, or ``None`` when absent or unreadable."""
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(entry, dict) or "row" not in entry:
            return None
        return entry

    def put(self, key: str, entry: Dict[str, object]) -> None:
        """Atomically persist an entry (last writer wins, never torn)."""
        payload = json.dumps(entry, indent=2, sort_keys=True) + "\n"
        descriptor, temp_name = tempfile.mkstemp(
            prefix=f".{key[:16]}-", suffix=".tmp", dir=self.root)
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(temp_name, self._path(key))
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def keys(self) -> List[str]:
        return sorted(path.stem for path in self.root.glob("*.json"))

    def __len__(self) -> int:
        return len(self.keys())

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())
