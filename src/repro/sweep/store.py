"""Sweep-row view of the unified content-addressed artifact store.

Historically this module owned its own store and the canonical-digest
logic; both now live in :mod:`repro.pipeline` (:class:`ArtifactStore`,
:mod:`repro.pipeline.hashing`) and are shared with the per-stage pipeline
artifacts and the verification certificates.  :class:`ResultStore` remains
as the sweep-facing view: the same directory, with completed design-point
rows stored as ``sweep-point`` entries next to the stage artifacts they
were computed from.

Keys bind to ``(spec, configuration, graph digest)``, so re-runs and
overlapping grids skip work that is already done, and a changed spec
(different state graph) can never serve a stale row.  ``canonical`` and
``graph_digest`` are re-exported for compatibility.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..pipeline.hashing import canonical, digest_payload, graph_digest
from ..pipeline.store import STORE_SCHEMA, ArtifactStore

#: Bump when the row layout or key derivation changes; old entries are
#: simply never looked up again.  Version 3: rows ride the staged pipeline
#: (FlowConfig-backed points with delay-model and verify_max_states axes)
#: and live in the unified artifact store.
STORE_VERSION = 3

#: Backwards-compatible alias for the digest helper this module used to own.
_digest = digest_payload

__all__ = ["STORE_SCHEMA", "STORE_VERSION", "ArtifactStore", "ResultStore",
           "canonical", "graph_digest"]


class ResultStore(ArtifactStore):
    """An :class:`ArtifactStore` addressed by sweep-point configuration."""

    def key(self, config: Dict[str, object], graph: str) -> str:
        """Store key for a point configuration evaluated on graph ``graph``."""
        return digest_payload({"version": STORE_VERSION, "config": config,
                               "graph": graph})

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The stored row entry, or ``None`` when absent or unreadable."""
        entry = self.get_entry(key, stage="sweep-point")
        if entry is None:
            return None
        payload = entry["payload"]
        if not isinstance(payload, dict) or "row" not in payload:
            return None
        return payload

    def put(self, key: str, entry: Dict[str, object]) -> None:
        """Atomically persist a row entry (last writer wins, never torn)."""
        self.put_entry(key, "sweep-point", entry)
