"""Parallel design-space sweeps over the benchmark grid (Tables 1-2).

One call evaluates a whole grid of design points -- specs x strategy x
weight x frontier x Keep_Conc -- across a process pool, with an on-disk
result store so re-runs and overlapping grids skip completed points::

    from repro.sweep import ResultStore, run_sweep, tables_grid, render

    grid = tables_grid(specs=["lr", "mmu"])
    outcome = run_sweep(grid, jobs=4, store=ResultStore(".repro_sweep"))
    print(render(outcome.rows, "md"))

Parallel results are byte-identical to serial ones, rows included and in
grid order; see :mod:`repro.sweep.runner` for how.
"""

from .grid import (SweepGrid, SweepPoint, canonical_delays, keep_variants,
                   make_point, spec_registry, tables_grid)
from .report import COLUMNS, FORMATS, render, to_csv, to_json, to_markdown
from .runner import (SweepOutcome, evaluate_point, evaluate_with_status,
                     make_chunks, run_sweep)
from .store import ArtifactStore, ResultStore, graph_digest

__all__ = [
    "SweepGrid", "SweepPoint", "canonical_delays", "keep_variants",
    "make_point", "spec_registry", "tables_grid",
    "COLUMNS", "FORMATS", "render", "to_csv", "to_json", "to_markdown",
    "SweepOutcome", "evaluate_point", "evaluate_with_status", "make_chunks",
    "run_sweep",
    "ArtifactStore", "ResultStore", "graph_digest",
]
