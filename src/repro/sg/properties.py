"""Implementability checks on state graphs.

Section 2 of the paper requires, beyond consistency:

* **speed independence** = determinism + commutativity + output persistency;
* **Complete State Coding (CSC)**: equal binary codes imply equal sets of
  enabled *non-input* events.

Each predicate has a companion ``*_violations`` function that returns
witnesses, which the validity checker and the test suite both use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..petri.stg import Direction, SignalKind
from .graph import State, StateGraph


@dataclass(frozen=True)
class ConsistencyViolation:
    """An arc whose labelling contradicts the binary codes."""

    source: State
    label: str
    target: State
    reason: str


def consistency_violations(sg: StateGraph) -> List[ConsistencyViolation]:
    """Arcs that violate the coded-arc rules (rise from 0 to 1, etc.)."""
    violations = []
    for source, label, target in sg.arcs():
        event = sg.events[label]
        src_code = sg.code_of(source)
        dst_code = sg.code_of(target)
        index = sg.signal_index(event.signal)
        if event.direction == Direction.RISE:
            ok = src_code[index] == 0 and dst_code[index] == 1
        elif event.direction == Direction.FALL:
            ok = src_code[index] == 1 and dst_code[index] == 0
        else:
            ok = src_code[index] != dst_code[index]
        if not ok:
            violations.append(ConsistencyViolation(
                source, label, target,
                f"{event.signal} goes {src_code[index]}->{dst_code[index]} on {label}"))
            continue
        for i, signal in enumerate(sg.signals):
            if i != index and src_code[i] != dst_code[i]:
                violations.append(ConsistencyViolation(
                    source, label, target,
                    f"{signal} changes {src_code[i]}->{dst_code[i]} on {label}"))
    return violations


def is_consistent(sg: StateGraph) -> bool:
    return not consistency_violations(sg)


def is_deterministic(sg: StateGraph) -> bool:
    """Always true for :class:`StateGraph` (enforced at construction)."""
    return True


@dataclass(frozen=True)
class CommutativityViolation:
    """A broken diamond: both orders fire but reach different states."""

    state: State
    label_a: str
    label_b: str
    via_a: State
    via_b: State


def commutativity_violations(sg: StateGraph) -> List[CommutativityViolation]:
    """States where two events fire in both orders to different states."""
    violations = []
    for state in sg.states:
        enabled = sg.enabled(state)
        for i, label_a in enumerate(enabled):
            for label_b in enabled[i + 1:]:
                via_a = sg.target(state, label_a)
                via_b = sg.target(state, label_b)
                end_ab = sg.target(via_a, label_b)
                end_ba = sg.target(via_b, label_a)
                if end_ab is not None and end_ba is not None and end_ab != end_ba:
                    violations.append(CommutativityViolation(
                        state, label_a, label_b, via_a, via_b))
    return violations


def is_commutative(sg: StateGraph) -> bool:
    return not commutativity_violations(sg)


@dataclass(frozen=True)
class PersistencyViolation:
    """Event ``disabled`` was enabled at ``state`` but not after ``by``."""

    state: State
    disabled: str
    by: str


def persistency_violations(sg: StateGraph,
                           check_inputs: bool = True) -> List[PersistencyViolation]:
    """Output-persistency violations (Section 2).

    A non-input event must stay enabled until it fires; an input event may
    be disabled, but only by another input (the environment changing its
    mind), never by an output or internal event -- unless ``check_inputs``
    is False, in which case input disabling is ignored entirely.
    """
    violations = []
    for state in sg.states:
        enabled = sg.enabled(state)
        for label in enabled:
            for other in enabled:
                if other == label:
                    continue
                after = sg.target(state, other)
                if sg.target(after, label) is not None:
                    continue
                label_is_input = sg.is_input_label(label)
                other_is_input = sg.is_input_label(other)
                if not label_is_input:
                    violations.append(PersistencyViolation(state, label, other))
                elif check_inputs and not other_is_input:
                    violations.append(PersistencyViolation(state, label, other))
    return violations


def is_output_persistent(sg: StateGraph) -> bool:
    return not persistency_violations(sg)


def is_speed_independent(sg: StateGraph) -> bool:
    """Determinism + commutativity + output persistency."""
    return is_commutative(sg) and is_output_persistent(sg)


@dataclass(frozen=True)
class CSCConflict:
    """Two states with identical codes but different non-input excitation."""

    state_a: State
    state_b: State
    code: Tuple[int, ...]
    excited_a: frozenset = frozenset()
    excited_b: frozenset = frozenset()


def _excited_signals(sg: StateGraph, state: State, non_input_only: bool) -> frozenset:
    signals = set()
    for label in sg.enabled(state):
        event = sg.events[label]
        if non_input_only and sg.kinds[event.signal] == SignalKind.INPUT:
            continue
        signals.add((event.signal, event.direction.value))
    return frozenset(signals)


def csc_conflicts(sg: StateGraph) -> List[CSCConflict]:
    """All CSC conflict pairs (unordered, each pair reported once)."""
    by_code: Dict[Tuple[int, ...], List[State]] = {}
    for state in sg.states:
        by_code.setdefault(sg.code_of(state), []).append(state)
    conflicts = []
    for code, states in by_code.items():
        if len(states) < 2:
            continue
        for i, state_a in enumerate(states):
            excited_a = _excited_signals(sg, state_a, non_input_only=True)
            for state_b in states[i + 1:]:
                excited_b = _excited_signals(sg, state_b, non_input_only=True)
                if excited_a != excited_b:
                    conflicts.append(CSCConflict(state_a, state_b, code,
                                                 excited_a, excited_b))
    return conflicts


def usc_conflicts(sg: StateGraph) -> List[Tuple[State, State]]:
    """Pairs of distinct states sharing a binary code (Unique State Coding)."""
    by_code: Dict[Tuple[int, ...], List[State]] = {}
    for state in sg.states:
        by_code.setdefault(sg.code_of(state), []).append(state)
    pairs = []
    for states in by_code.values():
        for i, state_a in enumerate(states):
            for state_b in states[i + 1:]:
                pairs.append((state_a, state_b))
    return pairs


def has_csc(sg: StateGraph) -> bool:
    return not csc_conflicts(sg)


def has_usc(sg: StateGraph) -> bool:
    return not usc_conflicts(sg)


def csc_conflicting_signals(sg: StateGraph) -> Set[str]:
    """Signals whose excitation differs in at least one CSC conflict pair."""
    signals: Set[str] = set()
    for conflict in csc_conflicts(sg):
        for signal, _ in conflict.excited_a.symmetric_difference(conflict.excited_b):
            signals.add(signal)
    return signals


def deadlock_states(sg: StateGraph) -> List[State]:
    """States with no outgoing arcs."""
    return [state for state in sg.states if not sg.enabled(state)]


@dataclass
class ImplementabilityReport:
    """Aggregate of all checks, convenient for flows and tests."""

    consistent: bool
    deterministic: bool
    commutative: bool
    output_persistent: bool
    csc: bool
    usc: bool
    deadlock_free: bool
    csc_conflict_count: int

    @property
    def speed_independent(self) -> bool:
        return self.deterministic and self.commutative and self.output_persistent

    @property
    def implementable(self) -> bool:
        return self.consistent and self.speed_independent and self.csc


def check_implementability(sg: StateGraph) -> ImplementabilityReport:
    """Run every check and return a report."""
    conflicts = csc_conflicts(sg)
    return ImplementabilityReport(
        consistent=is_consistent(sg),
        deterministic=True,
        commutative=is_commutative(sg),
        output_persistent=is_output_persistent(sg),
        csc=not conflicts,
        usc=has_usc(sg),
        deadlock_free=not deadlock_states(sg),
        csc_conflict_count=len(conflicts),
    )
