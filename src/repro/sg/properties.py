"""Implementability checks on state graphs.

Section 2 of the paper requires, beyond consistency:

* **speed independence** = determinism + commutativity + output persistency;
* **Complete State Coding (CSC)**: equal binary codes imply equal sets of
  enabled *non-input* events.

Each predicate has a companion ``*_violations`` function that returns
witnesses, which the validity checker and the test suite both use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from ..petri.stg import Direction, SignalKind
from .graph import State, StateGraph, StateGraphError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from ..explore.budget import ExplorationBudget
    from ..petri.stg import STG
    from ..symbolic.csc import CodingReport


@dataclass(frozen=True)
class ConsistencyViolation:
    """An arc whose labelling contradicts the binary codes."""

    source: State
    label: str
    target: State
    reason: str


def consistency_violations(sg: StateGraph) -> List[ConsistencyViolation]:
    """Arcs that violate the coded-arc rules (rise from 0 to 1, etc.).

    Runs on packed integer codes: the event's own signal is checked through
    its bit, and "every other signal holds its value" is one XOR of the two
    state codes instead of a per-signal sweep.
    """
    violations = []
    compiled = sg.compiled()
    codes = compiled.code_ints
    for sid, out in enumerate(compiled.succ):
        if out and codes[sid] < 0:
            sg.code_of(compiled.states[sid])  # raises StateGraphError
        source = compiled.states[sid]
        for lid, tid in out.items():
            if codes[tid] < 0:
                sg.code_of(compiled.states[tid])  # raises StateGraphError
            src, dst = codes[sid], codes[tid]
            index = compiled.event_signal[lid]
            bit = 1 << index
            direction = compiled.event_direction[lid]
            label = compiled.labels[lid]
            target = compiled.states[tid]
            if direction == Direction.RISE:
                ok = not src & bit and dst & bit
            elif direction == Direction.FALL:
                ok = src & bit and not dst & bit
            else:
                ok = (src ^ dst) & bit
            if not ok:
                signal = sg.signals[index]
                violations.append(ConsistencyViolation(
                    source, label, target,
                    f"{signal} goes {(src >> index) & 1}->{(dst >> index) & 1} "
                    f"on {label}"))
                continue
            changed = (src ^ dst) & ~bit
            i = 0
            while changed:
                if changed & 1:
                    signal = sg.signals[i]
                    violations.append(ConsistencyViolation(
                        source, label, target,
                        f"{signal} changes {(src >> i) & 1}->{(dst >> i) & 1} "
                        f"on {label}"))
                changed >>= 1
                i += 1
    return violations


def is_consistent(sg: StateGraph) -> bool:
    return not consistency_violations(sg)


def is_deterministic(sg: StateGraph) -> bool:
    """Always true for :class:`StateGraph` (enforced at construction)."""
    return True


@dataclass(frozen=True)
class CommutativityViolation:
    """A broken diamond: both orders fire but reach different states."""

    state: State
    label_a: str
    label_b: str
    via_a: State
    via_b: State


def commutativity_violations(sg: StateGraph) -> List[CommutativityViolation]:
    """States where two events fire in both orders to different states."""
    violations = []
    compiled = sg.compiled()
    succ = compiled.succ
    states = compiled.states
    labels = compiled.labels
    for sid, out in enumerate(succ):
        if len(out) < 2:
            continue
        enabled = list(out)
        for i, lid_a in enumerate(enabled):
            via_a = out[lid_a]
            for lid_b in enabled[i + 1:]:
                via_b = out[lid_b]
                end_ab = succ[via_a].get(lid_b)
                if end_ab is None:
                    continue
                end_ba = succ[via_b].get(lid_a)
                if end_ba is not None and end_ab != end_ba:
                    violations.append(CommutativityViolation(
                        states[sid], labels[lid_a], labels[lid_b],
                        states[via_a], states[via_b]))
    return violations


def is_commutative(sg: StateGraph) -> bool:
    return not commutativity_violations(sg)


@dataclass(frozen=True)
class PersistencyViolation:
    """Event ``disabled`` was enabled at ``state`` but not after ``by``."""

    state: State
    disabled: str
    by: str


def persistency_violations(sg: StateGraph,
                           check_inputs: bool = True) -> List[PersistencyViolation]:
    """Output-persistency violations (Section 2).

    A non-input event must stay enabled until it fires; an input event may
    be disabled, but only by another input (the environment changing its
    mind), never by an output or internal event -- unless ``check_inputs``
    is False, in which case input disabling is ignored entirely.
    """
    violations = []
    compiled = sg.compiled()
    succ = compiled.succ
    is_input = compiled.is_input
    states = compiled.states
    labels = compiled.labels
    for sid, out in enumerate(succ):
        if len(out) < 2:
            continue
        enabled = list(out)
        for lid in enabled:
            for other in enabled:
                if other == lid:
                    continue
                if lid in succ[out[other]]:
                    continue
                if not is_input[lid]:
                    violations.append(PersistencyViolation(
                        states[sid], labels[lid], labels[other]))
                elif check_inputs and not is_input[other]:
                    violations.append(PersistencyViolation(
                        states[sid], labels[lid], labels[other]))
    return violations


def is_output_persistent(sg: StateGraph) -> bool:
    return not persistency_violations(sg)


def is_speed_independent(sg: StateGraph) -> bool:
    """Determinism + commutativity + output persistency."""
    return is_commutative(sg) and is_output_persistent(sg)


@dataclass(frozen=True)
class CSCConflict:
    """Two states with identical codes but different non-input excitation."""

    state_a: State
    state_b: State
    code: Tuple[int, ...]
    excited_a: frozenset = frozenset()
    excited_b: frozenset = frozenset()


def _excited_signals(sg: StateGraph, state: State, non_input_only: bool) -> frozenset:
    signals = set()
    for label in sg.enabled(state):
        event = sg.events[label]
        if non_input_only and sg.kinds[event.signal] == SignalKind.INPUT:
            continue
        signals.add((event.signal, event.direction.value))
    return frozenset(signals)


def _group_by_code_int(sg: StateGraph) -> Dict[int, List[int]]:
    """State ids grouped by packed code; raises on a state without a code."""
    compiled = sg.compiled()
    by_code: Dict[int, List[int]] = {}
    for sid, code in enumerate(compiled.code_ints):
        if code < 0:
            sg.code_of(compiled.states[sid])  # raises StateGraphError
        by_code.setdefault(code, []).append(sid)
    return by_code


def csc_conflicts(sg: StateGraph) -> List[CSCConflict]:
    """All CSC conflict pairs (unordered, each pair reported once).

    States are bucketed by their packed integer codes and each state's
    non-input excitation is computed once per bucket member, so the usual
    no-conflict case costs one pass over the states.
    """
    compiled = sg.compiled()
    signals = sg.signals
    conflicts = []
    for code, sids in _group_by_code_int(sg).items():
        if len(sids) < 2:
            continue
        excited = []
        for sid in sids:
            members = set()
            for lid in compiled.succ[sid]:
                if compiled.is_input[lid]:
                    continue
                members.add((signals[compiled.event_signal[lid]],
                             compiled.event_direction[lid].value))
            excited.append(frozenset(members))
        code_tuple = sg.code_of(compiled.states[sids[0]])
        for i, sid_a in enumerate(sids):
            for j in range(i + 1, len(sids)):
                if excited[i] != excited[j]:
                    conflicts.append(CSCConflict(
                        compiled.states[sid_a], compiled.states[sids[j]],
                        code_tuple, excited[i], excited[j]))
    return conflicts


def usc_conflicts(sg: StateGraph) -> List[Tuple[State, State]]:
    """Pairs of distinct states sharing a binary code (Unique State Coding)."""
    compiled = sg.compiled()
    pairs = []
    for sids in _group_by_code_int(sg).values():
        for i, sid_a in enumerate(sids):
            for sid_b in sids[i + 1:]:
                pairs.append((compiled.states[sid_a], compiled.states[sid_b]))
    return pairs


def has_csc(sg: StateGraph) -> bool:
    return not csc_conflicts(sg)


def has_usc(sg: StateGraph) -> bool:
    return not usc_conflicts(sg)


def csc_conflicting_signals(sg: StateGraph) -> Set[str]:
    """Signals whose excitation differs in at least one CSC conflict pair."""
    signals: Set[str] = set()
    for conflict in csc_conflicts(sg):
        for signal, _ in conflict.excited_a.symmetric_difference(conflict.excited_b):
            signals.add(signal)
    return signals


def deadlock_states(sg: StateGraph) -> List[State]:
    """States with no outgoing arcs."""
    return [state for state in sg.states if not sg.enabled(state)]


@dataclass
class ImplementabilityReport:
    """Aggregate of all checks, convenient for flows and tests."""

    consistent: bool
    deterministic: bool
    commutative: bool
    output_persistent: bool
    csc: bool
    usc: bool
    deadlock_free: bool
    csc_conflict_count: int

    @property
    def speed_independent(self) -> bool:
        return self.deterministic and self.commutative and self.output_persistent

    @property
    def implementable(self) -> bool:
        return self.consistent and self.speed_independent and self.csc


def check_implementability(sg: StateGraph) -> ImplementabilityReport:
    """Run every check and return a report."""
    conflicts = csc_conflicts(sg)
    return ImplementabilityReport(
        consistent=is_consistent(sg),
        deterministic=True,
        commutative=is_commutative(sg),
        output_persistent=is_output_persistent(sg),
        csc=not conflicts,
        usc=has_usc(sg),
        deadlock_free=not deadlock_states(sg),
        csc_conflict_count=len(conflicts),
    )


def _marking_tuple(state: State) -> Tuple[int, ...]:
    """The marking tuple of a generator-built state.

    Rise/fall state graphs use the marking itself as the state; unfolded
    (2-phase) graphs use ``(marking, values)`` pairs.  Hand-built graphs
    with opaque states carry no marking and cannot feed a coding report.
    """
    if isinstance(state, tuple):
        if (len(state) == 2 and isinstance(state[0], tuple)
                and isinstance(state[1], tuple)):
            return state[0]
        return state
    raise StateGraphError(
        f"state {state!r} carries no marking; coding reports need "
        "generator-built state graphs")


def coding_report(sg: StateGraph, witness_limit: Optional[int] = None,
                  engine: str = "explicit") -> "CodingReport":
    """Render the explicit consistency/USC/CSC verdicts canonically.

    Returns the same :class:`~repro.symbolic.csc.CodingReport` the
    symbolic engine produces, with byte-identical
    :meth:`~repro.symbolic.csc.CodingReport.to_payload` on the same STG
    -- witness pairs are decoded to (code, marking, excitation) records
    under one canonical order, and witness lists above ``witness_limit``
    are dropped by the shared truncation rule.  The cross-engine parity
    suite pins this equality.
    """
    from ..symbolic.csc import (DEFAULT_WITNESS_LIMIT, CodingReport,
                                canonical_conflict, canonical_pair,
                                sort_conflicts, sort_pairs)
    limit = DEFAULT_WITNESS_LIMIT if witness_limit is None else witness_limit
    pairs = usc_conflicts(sg)
    conflicts = csc_conflicts(sg)
    truncated = len(pairs) > limit or len(conflicts) > limit
    pair_payloads: List[dict] = []
    conflict_payloads: List[dict] = []
    if not truncated:
        pair_payloads = sort_pairs([
            canonical_pair(sg.code_of(a), _marking_tuple(a),
                           _marking_tuple(b))
            for a, b in pairs])
        conflict_payloads = sort_conflicts([
            canonical_conflict(c.code,
                               _marking_tuple(c.state_a), c.excited_a,
                               _marking_tuple(c.state_b), c.excited_b)
            for c in conflicts])
    return CodingReport(
        name=sg.name,
        engine=engine,
        states=len(sg),
        consistent=is_consistent(sg),
        usc=not pairs,
        csc=not conflicts,
        usc_pair_count=len(pairs),
        csc_conflict_count=len(conflicts),
        conflicts=conflict_payloads,
        usc_pairs=pair_payloads,
        truncated=truncated)


def check_coding(stg: "STG", engine: str = "auto",
                 budget: Optional["ExplorationBudget"] = None,
                 witness_limit: Optional[int] = None,
                 name: Optional[str] = None) -> "CodingReport":
    """Check consistency/USC/CSC of an STG on a selectable engine.

    ``engine="symbolic"`` runs the BDD path
    (:func:`repro.symbolic.csc.check_coding_symbolic`) -- no state
    enumeration, budget metered in BDD nodes and seconds.  The explicit
    engines (``"auto"``/``"packed"``/``"tuples"``) generate the state
    graph first and render its verdicts.  All engines return the same
    canonical :class:`~repro.symbolic.csc.CodingReport`.
    """
    if engine == "symbolic":
        from ..symbolic.csc import DEFAULT_WITNESS_LIMIT, \
            check_coding_symbolic
        limit = DEFAULT_WITNESS_LIMIT if witness_limit is None \
            else witness_limit
        return check_coding_symbolic(stg, budget=budget,
                                     witness_limit=limit, name=name)
    from .generator import generate_sg
    sg = generate_sg(stg, name=name, budget=budget, engine=engine)
    return coding_report(sg, witness_limit=witness_limit, engine=engine)
