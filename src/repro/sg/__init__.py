"""State graphs: generation, implementability checks, regions, resynthesis."""
