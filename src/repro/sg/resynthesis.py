"""STG re-derivation from a state graph (theory of regions).

Step 5 of the paper's algorithm (Fig. 4) generates a new STG for the best
reduced SG.  We implement the classical region-based synthesis: a *region*
is a set of states crossed uniformly by every event (all its arcs enter it,
all exit it, or none cross); regions become places, events become
transitions, and the net's reachability graph is isomorphic to the SG when
*excitation closure* holds (the intersection of an event's pre-regions
equals its excitation region).

Minimal pre-regions are found with the standard grow-and-repair expansion:
start from ER(e) and, while some event violates uniformity, branch over the
legal repairs (make the event entering, exiting or non-crossing by adding
states).  Graphs in this flow have tens to a few hundred states, where this
is entirely practical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..petri.stg import STG, SignalEvent, SignalKind
from .graph import State, StateGraph
from .regions import excitation_region


class ResynthesisError(Exception):
    """Raised when the SG is not synthesisable without label splitting."""


Region = FrozenSet[State]


def _arc_sides(sg: StateGraph, label: str,
               region: Set[State]) -> Tuple[int, int, int, int]:
    """Count (enter, exit, inside, outside) arcs of ``label`` w.r.t. region."""
    enter = exit_ = inside = outside = 0
    for source, lbl, target in sg.arcs():
        if lbl != label:
            continue
        src_in, dst_in = source in region, target in region
        if src_in and dst_in:
            inside += 1
        elif src_in:
            exit_ += 1
        elif dst_in:
            enter += 1
        else:
            outside += 1
    return enter, exit_, inside, outside


def _uniform(enter: int, exit_: int, inside: int, outside: int) -> bool:
    """The region condition for one event: all arcs enter, all exit, or none
    crosses the boundary."""
    total = enter + exit_ + inside + outside
    if total == 0:
        return True
    return enter == total or exit_ == total or (enter == 0 and exit_ == 0)


def is_region(sg: StateGraph, candidate: Set[State]) -> bool:
    """True when every event crosses ``candidate`` uniformly."""
    if not candidate or len(candidate) == len(sg):
        return False  # trivial regions carry no information
    return all(_uniform(*_arc_sides(sg, label, candidate))
               for label in sg.events)


def _violating_event(sg: StateGraph, candidate: Set[State]) -> Optional[str]:
    for label in sg.events:
        if not _uniform(*_arc_sides(sg, label, candidate)):
            return label
    return None


def _repair_options(sg: StateGraph, candidate: FrozenSet[State],
                    label: str) -> List[FrozenSet[State]]:
    """Legal expansions fixing ``label``'s uniformity (monotone: only grow)."""
    arcs = [(s, t) for s, lbl, t in sg.arcs() if lbl == label]
    options: List[FrozenSet[State]] = []

    # Make the event non-crossing: pull the missing endpoint of every
    # crossing arc inside.
    grown = set(candidate)
    changed = True
    while changed:
        changed = False
        for source, target in arcs:
            if (source in grown) != (target in grown):
                grown.update((source, target))
                changed = True
    options.append(frozenset(grown))

    # Make the event entering: all targets inside, all sources outside.
    if not any(source in candidate for source, _ in arcs):
        entering = frozenset(candidate | {target for _, target in arcs})
        if not any(source in entering for source, _ in arcs):
            options.append(entering)

    # Make the event exiting: all sources inside, no target inside.
    if not any(target in candidate for _, target in arcs):
        exiting = frozenset(candidate | {source for source, _ in arcs})
        if not any(target in exiting for _, target in arcs):
            options.append(exiting)

    return [option for option in options if option != candidate]


def minimal_preregions(sg: StateGraph, label: str,
                       max_branches: int = 10_000) -> List[Region]:
    """Minimal regions containing ER(label) that ``label`` exits.

    Implements the grow-and-repair search.  Candidates where ``label``
    itself stops exiting (a target of the event got absorbed) are pruned.
    """
    er = frozenset(excitation_region(sg, label))
    if not er:
        return []
    event_arcs = [(s, t) for s, lbl, t in sg.arcs() if lbl == label]
    found: List[FrozenSet[State]] = []
    seen: Set[FrozenSet[State]] = set()
    stack: List[FrozenSet[State]] = [er]
    branches = 0
    while stack:
        candidate = stack.pop()
        if candidate in seen:
            continue
        seen.add(candidate)
        branches += 1
        if branches > max_branches:
            raise ResynthesisError(
                f"pre-region search for {label!r} exceeded {max_branches} branches")
        if any(target in candidate for _, target in event_arcs):
            continue  # label no longer exits: not a pre-region
        if len(candidate) >= len(sg):
            continue
        violator = _violating_event(sg, set(candidate))
        if violator is None:
            found.append(candidate)
            continue
        stack.extend(_repair_options(sg, candidate, violator))
    minimal = [region for region in found
               if not any(other < region for other in found)]
    return sorted(set(minimal), key=lambda r: (len(r), sorted(map(str, r))))


def excitation_closure_holds(sg: StateGraph, label: str,
                             preregions: List[Region]) -> bool:
    """Check that the intersection of pre-regions equals ER(label)."""
    er = excitation_region(sg, label)
    if not preregions:
        return False
    intersection: Set[State] = set(preregions[0])
    for region in preregions[1:]:
        intersection &= region
    return intersection == er


def resynthesise_stg(sg: StateGraph, name: Optional[str] = None,
                     prune_redundant: bool = True) -> STG:
    """Derive an STG whose reachability graph matches the SG.

    Raises :class:`ResynthesisError` when excitation closure fails for some
    event (such SGs need label splitting, outside this reproduction's
    scope -- the flow falls back to reporting the SG itself).
    """
    stg = STG(name or f"{sg.name}_stg")
    for signal in sg.signals:
        stg.declare_signal(signal, sg.kinds[signal])

    all_regions: Dict[Region, str] = {}
    pre_of: Dict[str, List[Region]] = {}
    for label in sg.events:
        if not excitation_region(sg, label):
            continue
        preregions = minimal_preregions(sg, label)
        if not excitation_closure_holds(sg, label, preregions):
            raise ResynthesisError(
                f"excitation closure fails for event {label!r}; "
                "label splitting would be required")
        pre_of[label] = preregions
        for region in preregions:
            all_regions.setdefault(region, f"r{len(all_regions)}")

    if prune_redundant:
        all_regions = _prune(sg, pre_of, all_regions)

    for label in pre_of:
        stg.add_event(sg.events[label])
    for region, place in all_regions.items():
        stg.net.add_place(place)
    # A region is a place; every event exiting it consumes a token, every
    # event entering it produces one -- for *all* events, not only the ones
    # whose pre-region it is, otherwise token flow diverges from the SG.
    for region, place in all_regions.items():
        for label in pre_of:
            enter, exit_, inside, outside = _arc_sides(sg, label, set(region))
            total = enter + exit_ + inside + outside
            if total and exit_ == total:
                stg.net.add_arc(place, label)
            elif total and enter == total:
                stg.net.add_arc(label, place)

    marking = {place: 1 for region, place in all_regions.items()
               if sg.initial in region}
    stg.net.set_initial(marking)
    for signal in sg.signals:
        stg.set_initial_value(signal, sg.value_of(sg.initial, signal))
    return stg


def _prune(sg: StateGraph, pre_of: Dict[str, List[Region]],
           all_regions: Dict[Region, str]) -> Dict[Region, str]:
    """Greedily drop regions while every event keeps excitation closure."""
    kept = dict(all_regions)
    for region in sorted(all_regions, key=lambda r: -len(r)):
        trial = {r: n for r, n in kept.items() if r != region}
        ok = True
        for label, preregions in pre_of.items():
            remaining = [r for r in preregions if r in trial]
            if not excitation_closure_holds(sg, label, remaining):
                ok = False
                break
        if ok:
            kept = trial
    for label, preregions in pre_of.items():
        pre_of[label] = [r for r in preregions if r in kept]
    return kept


def verify_resynthesis(sg: StateGraph, stg: STG) -> bool:
    """Check the derived STG's reachability graph is isomorphic to the SG.

    Isomorphism is checked up to state identity via simultaneous BFS on the
    (deterministic) labelled graphs.
    """
    from .generator import generate_sg

    derived = generate_sg(stg)
    if len(derived) != len(sg):
        return False
    pairing: Dict[State, State] = {derived.initial: sg.initial}
    queue = [derived.initial]
    while queue:
        d_state = queue.pop()
        s_state = pairing[d_state]
        d_succ = derived.successors(d_state)
        s_succ = sg.successors(s_state)
        if set(d_succ) != set(s_succ):
            return False
        for label, d_next in d_succ.items():
            s_next = s_succ[label]
            if d_next in pairing:
                if pairing[d_next] != s_next:
                    return False
            else:
                pairing[d_next] = s_next
                queue.append(d_next)
    return True
