"""State-graph generation from an STG.

Plays the token game over the STG's underlying Petri net, then assigns a
binary code to every reachable marking by constraint propagation: firing
``a+`` requires ``a`` to be 0 before and 1 after, firing ``a~`` flips the
value, and every other signal keeps its value across the arc.  Constraints
are solved with a parity union-find, so toggle (2-phase) specifications are
handled uniformly with 4-phase ones; genuine inconsistencies are reported
with a witness.

Reachability itself runs on the shared exploration core
(:mod:`repro.explore`): the packed level-vectorized engine when the net
fits single-bit markings, the incremental tuple engine otherwise, both
metered by one :class:`~repro.explore.ExplorationBudget`.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from ..explore import (BudgetExceeded, ExplorationBudget,
                       FrontierExploration, explore_packed, explore_tuples,
                       stubborn_reducer)
from ..petri.net import PackedOverflowError
from ..petri.stg import STG, Direction, SignalEvent, SignalKind
from .graph import StateGraph, StateGraphError

DEFAULT_MAX_STATES = 200_000


class ConsistencyError(StateGraphError):
    """The STG admits no consistent binary encoding.

    When the inconsistency is witnessed during 2-phase unfolding,
    ``witness`` holds the minimal firing sequence (transition names)
    from the initial marking to the offending firing.
    """

    def __init__(self, message: str,
                 witness: Optional[List[str]] = None) -> None:
        super().__init__(message)
        self.witness = witness


class GenerationBudgetError(StateGraphError, BudgetExceeded):
    """State-graph generation ran out of exploration budget.

    A :class:`StateGraphError` for existing callers and a
    :class:`~repro.explore.BudgetExceeded` for uniform structured
    handling; ``exceedance`` carries the resource, limit and partial
    counts.
    """

    def __init__(self, exceedance) -> None:
        BudgetExceeded.__init__(self, exceedance,
                                exceedance.describe("state graph"))


class _ParityUnionFind:
    """Union-find over variables related by equality or inequality (XOR).

    Each variable carries a parity relative to its class representative;
    uniting two variables with parity 1 states they must differ.
    """

    def __init__(self) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._parity: Dict[Hashable, int] = {}

    def find(self, item: Hashable) -> Tuple[Hashable, int]:
        if item not in self._parent:
            self._parent[item] = item
            self._parity[item] = 0
            return item, 0
        path = []
        node = item
        while self._parent[node] != node:
            path.append(node)
            node = self._parent[node]
        parity = 0
        for step in reversed(path):
            parity ^= self._parity[step]
            self._parent[step] = node
            self._parity[step] = parity
        return node, self._parity[item]

    def union(self, a: Hashable, b: Hashable, parity: int) -> bool:
        """Assert ``value(a) == value(b) XOR parity``; False on contradiction."""
        root_a, parity_a = self.find(a)
        root_b, parity_b = self.find(b)
        if root_a == root_b:
            return (parity_a ^ parity_b) == parity
        self._parent[root_a] = root_b
        self._parity[root_a] = parity_a ^ parity_b ^ parity
        return True


def generate_sg(stg: STG, limit: int = DEFAULT_MAX_STATES,
                name: Optional[str] = None, *,
                budget: Optional[ExplorationBudget] = None,
                stubborn: bool = False,
                engine: str = "auto") -> StateGraph:
    """Build the state graph of an STG.

    For purely rise/fall STGs the states are the reachable markings and the
    binary codes are solved by constraint propagation (initial values are
    inferred).  STGs containing toggle events (2-phase refinements) are
    *unfolded*: a state is a (marking, signal values) pair, since a marking
    revisited after an odd number of toggles is a different binary state.

    ``budget`` caps the exploration (states / arcs / wall-clock); when
    omitted, ``limit`` keeps its historical meaning as a plain state cap.
    Running out of budget raises :class:`GenerationBudgetError` -- never a
    silently truncated graph.  With ``stubborn=True``, reachability uses
    the stubborn-set reduction hook (packed nets only; a reduced graph is
    *not* the full state graph and is meant for reachability/deadlock
    questions, not synthesis).

    ``engine`` selects the marking-exploration core for rise/fall specs:
    ``"auto"`` tries the packed level-vectorized engine and falls back to
    the tuple engine, ``"packed"`` requires the packed engine (raises
    :class:`StateGraphError` outside the 1-safe regime), ``"tuples"``
    skips the packed attempt.  Toggle STGs always unfold -- the engine
    knob does not apply to the unfolded path.  The symbolic engine never
    materializes a state graph; see
    :func:`repro.sg.properties.check_coding` for symbolic verdicts.

    Raises :class:`ConsistencyError` when no consistent encoding exists and
    :class:`StateGraphError` when the STG still contains dummy transitions
    (refine them away before synthesis).
    """
    if engine not in ("auto", "packed", "tuples"):
        raise StateGraphError(
            f"unknown SG engine {engine!r}; expected 'auto', 'packed' or "
            "'tuples'")
    if budget is None:
        budget = ExplorationBudget(max_states=limit)
    has_toggle = False
    for transition in stg.net.transitions:
        if transition.label is None:
            raise StateGraphError(
                f"STG contains dummy transition {transition.name!r}; "
                "state graphs for synthesis must be dummy-free")
        if (isinstance(transition.label, SignalEvent)
                and transition.label.direction == Direction.TOGGLE):
            has_toggle = True
    if has_toggle:
        return _generate_unfolded(stg, budget, name)

    sg = StateGraph(name or stg.name)
    for signal, kind in stg.signals.items():
        if kind == SignalKind.DUMMY:
            continue
        sg.declare_signal(signal, kind)
    for transition in stg.net.transition_names:
        sg.declare_event(transition, stg.event_of(transition))

    net = stg.net
    names = net.transition_names
    run = None
    try:
        packed = net.compile_packed() if engine != "tuples" else None
        if packed is None and engine == "packed":
            raise StateGraphError(
                f"STG {stg.name!r} is outside the packed regime (weighted "
                "arcs or multi-token places); use engine='auto' or "
                "'tuples'")
        if packed is not None:
            reducer = stubborn_reducer(packed) if stubborn else None
            try:
                run = explore_packed(packed, budget=budget, reducer=reducer)
                markings = [packed.unpack(row) for row in run.states]
            except PackedOverflowError:
                if engine == "packed":
                    raise
                run = None
        if run is None:
            run = explore_tuples(net, budget=budget)
            markings = run.states
    except BudgetExceeded as exceeded:
        raise GenerationBudgetError(exceeded.exceedance) from None

    sg.add_state(markings[0])
    sg.initial = markings[0]
    for source, transition, target in run.arcs:
        sg.add_arc(markings[source], names[transition], markings[target])

    _assign_codes(stg, sg)
    return sg


def _generate_unfolded(stg: STG, budget: ExplorationBudget,
                       name: Optional[str]) -> StateGraph:
    """SG generation with explicit signal values in the state (2-phase).

    The initial values come from ``stg.initial_values`` (default 0); firing
    a rising transition from a high state (or falling from low) witnesses an
    inconsistent specification -- the :class:`ConsistencyError` carries the
    minimal firing sequence reaching it, reconstructed from the engine's
    parent map.
    """
    sg = StateGraph(name or stg.name)
    for signal, kind in stg.signals.items():
        if kind == SignalKind.DUMMY:
            continue
        sg.declare_signal(signal, kind)
    for transition in stg.net.transition_names:
        sg.declare_event(transition, stg.event_of(transition))
    index = {signal: i for i, signal in enumerate(sg.signals)}

    net = stg.net
    order = {t: i for i, t in enumerate(net.transition_names)}
    initial_values = tuple(stg.initial_values.get(s, 0) for s in sg.signals)
    initial_marking = net.initial_marking()
    initial = (initial_marking, initial_values)
    sg.add_state(initial, initial_values)
    sg.initial = initial
    try:
        engine = FrontierExploration(initial, budget)
        enabled_of = {initial: frozenset(
            net.enabled_transitions(initial_marking))}
        for state in engine.drain():
            enabled = enabled_of.pop(state)
            marking, values = state
            for transition in sorted(enabled, key=order.__getitem__):
                event = stg.event_of(transition)
                position = index[event.signal]
                current = values[position]
                if event.direction == Direction.RISE and current != 0:
                    raise ConsistencyError(
                        f"{transition} fires with {event.signal} already "
                        f"high", witness=engine.trace_to(state, transition))
                if event.direction == Direction.FALL and current != 1:
                    raise ConsistencyError(
                        f"{transition} fires with {event.signal} already "
                        f"low", witness=engine.trace_to(state, transition))
                new_values = list(values)
                new_values[position] = 1 - current
                nxt_marking, nxt_enabled = net.fire_incremental(
                    transition, marking, enabled)
                target = (nxt_marking, tuple(new_values))
                if engine.admit(target, state, transition):
                    sg.add_state(target, target[1])
                    enabled_of[target] = nxt_enabled
                sg.add_arc(state, transition, target)
    except BudgetExceeded as exceeded:
        raise GenerationBudgetError(exceeded.exceedance) from None
    return sg


def _assign_codes(stg: STG, sg: StateGraph) -> None:
    """Solve the encoding constraints and write codes into ``sg``."""
    union_find = _ParityUnionFind()
    fixed: Dict[Hashable, Tuple[int, str]] = {}  # representative -> (value, why)

    def fix(var: Hashable, value: int, why: str) -> None:
        root, parity = union_find.find(var)
        want = value ^ parity
        if root in fixed and fixed[root][0] != want:
            raise ConsistencyError(
                f"inconsistent encoding: {why} conflicts with {fixed[root][1]}")
        fixed.setdefault(root, (want, why))

    for source, label, target in sg.arcs():
        event = sg.events[label]
        for signal in sg.signals:
            src_var = (source, signal)
            dst_var = (target, signal)
            if signal == event.signal:
                if event.direction == Direction.RISE:
                    fix(src_var, 0, f"{label} fired from state with {signal}=1")
                    fix(dst_var, 1, f"{label} fired into state with {signal}=0")
                elif event.direction == Direction.FALL:
                    fix(src_var, 1, f"{label} fired from state with {signal}=0")
                    fix(dst_var, 0, f"{label} fired into state with {signal}=1")
                else:  # toggle
                    if not union_find.union(src_var, dst_var, 1):
                        raise ConsistencyError(
                            f"toggle {label} requires {signal} to flip, but the "
                            f"states are already constrained equal")
            else:
                if not union_find.union(src_var, dst_var, 0):
                    raise ConsistencyError(
                        f"firing {label} must preserve {signal}, but the states "
                        f"are constrained to differ")

    # Re-check fixed values against merged classes (unions after fixes).
    merged: Dict[Hashable, Tuple[int, str]] = {}
    for root, (value, why) in list(fixed.items()):
        rep, parity = union_find.find(root)
        want = value ^ parity
        if rep in merged and merged[rep][0] != want:
            raise ConsistencyError(
                f"inconsistent encoding: {why} conflicts with {merged[rep][1]}")
        merged.setdefault(rep, (want, why))

    codes: Dict[Hashable, List[int]] = {state: [] for state in sg.states}
    for state in sg.states:
        for signal in sg.signals:
            rep, parity = union_find.find((state, signal))
            if rep in merged:
                value = merged[rep][0] ^ parity
            else:
                # Unconstrained class: seed from the declared initial value of
                # the signal at the initial state, defaulting to 0.
                init_rep, init_parity = union_find.find((sg.initial, signal))
                if init_rep == rep:
                    seed = stg.initial_values.get(signal, 0)
                    value = seed ^ init_parity ^ parity
                else:
                    value = stg.initial_values.get(signal, 0) ^ parity
            codes[state].append(value)
    for state, code in codes.items():
        sg.codes[state] = tuple(code)

    # Honour explicitly declared initial values when they are consistent.
    for signal, declared in stg.initial_values.items():
        if signal not in sg.kinds:
            continue
        index = sg.signal_index(signal)
        actual = sg.codes[sg.initial][index]
        if actual != declared:
            rep, _ = union_find.find((sg.initial, signal))
            if rep in merged:
                raise ConsistencyError(
                    f"declared initial value {signal}={declared} contradicts the "
                    f"encoding forced by the STG ({signal}={actual} at the initial "
                    f"state)")
            # Free signal: flip the whole (connected) class.
            for state in sg.states:
                state_rep, parity = union_find.find((state, signal))
                if state_rep == rep:
                    code = list(sg.codes[state])
                    code[index] ^= 1
                    sg.codes[state] = tuple(code)
