"""State-graph generation from an STG.

Plays the token game over the STG's underlying Petri net, then assigns a
binary code to every reachable marking by constraint propagation: firing
``a+`` requires ``a`` to be 0 before and 1 after, firing ``a~`` flips the
value, and every other signal keeps its value across the arc.  Constraints
are solved with a parity union-find, so toggle (2-phase) specifications are
handled uniformly with 4-phase ones; genuine inconsistencies are reported
with a witness.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from ..petri.net import Marking, PetriNetError
from ..petri.stg import STG, Direction, SignalEvent, SignalKind
from .graph import StateGraph, StateGraphError


class ConsistencyError(StateGraphError):
    """The STG admits no consistent binary encoding."""


class _ParityUnionFind:
    """Union-find over variables related by equality or inequality (XOR).

    Each variable carries a parity relative to its class representative;
    uniting two variables with parity 1 states they must differ.
    """

    def __init__(self) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._parity: Dict[Hashable, int] = {}

    def find(self, item: Hashable) -> Tuple[Hashable, int]:
        if item not in self._parent:
            self._parent[item] = item
            self._parity[item] = 0
            return item, 0
        path = []
        node = item
        while self._parent[node] != node:
            path.append(node)
            node = self._parent[node]
        parity = 0
        for step in reversed(path):
            parity ^= self._parity[step]
            self._parent[step] = node
            self._parity[step] = parity
        return node, self._parity[item]

    def union(self, a: Hashable, b: Hashable, parity: int) -> bool:
        """Assert ``value(a) == value(b) XOR parity``; False on contradiction."""
        root_a, parity_a = self.find(a)
        root_b, parity_b = self.find(b)
        if root_a == root_b:
            return (parity_a ^ parity_b) == parity
        self._parent[root_a] = root_b
        self._parity[root_a] = parity_a ^ parity_b ^ parity
        return True


def generate_sg(stg: STG, limit: int = 200_000,
                name: Optional[str] = None) -> StateGraph:
    """Build the state graph of an STG.

    For purely rise/fall STGs the states are the reachable markings and the
    binary codes are solved by constraint propagation (initial values are
    inferred).  STGs containing toggle events (2-phase refinements) are
    *unfolded*: a state is a (marking, signal values) pair, since a marking
    revisited after an odd number of toggles is a different binary state.

    Raises :class:`ConsistencyError` when no consistent encoding exists and
    :class:`StateGraphError` when the STG still contains dummy transitions
    (refine them away before synthesis).
    """
    has_toggle = False
    for transition in stg.net.transitions:
        if transition.label is None:
            raise StateGraphError(
                f"STG contains dummy transition {transition.name!r}; "
                "state graphs for synthesis must be dummy-free")
        if (isinstance(transition.label, SignalEvent)
                and transition.label.direction == Direction.TOGGLE):
            has_toggle = True
    if has_toggle:
        return _generate_unfolded(stg, limit, name)

    sg = StateGraph(name or stg.name)
    for signal, kind in stg.signals.items():
        if kind == SignalKind.DUMMY:
            continue
        sg.declare_signal(signal, kind)
    for transition in stg.net.transition_names:
        sg.declare_event(transition, stg.event_of(transition))

    net = stg.net
    initial = net.initial_marking()
    sg.add_state(initial)
    sg.initial = initial

    # The frontier carries each marking's enabled set so a firing only
    # rechecks the transitions it touched (PetriNet.fire_incremental);
    # iteration stays in net declaration order for determinism.
    order = {t: i for i, t in enumerate(net.transition_names)}
    initial_enabled = frozenset(net.enabled_transitions(initial))
    frontier: List[Tuple[Marking, frozenset]] = [(initial, initial_enabled)]
    seen = {initial}
    arcs: List[Tuple[Marking, str, Marking]] = []
    while frontier:
        marking, enabled = frontier.pop()
        for transition in sorted(enabled, key=order.__getitem__):
            nxt, nxt_enabled = net.fire_incremental(transition, marking, enabled)
            arcs.append((marking, transition, nxt))
            if nxt not in seen:
                seen.add(nxt)
                if len(seen) > limit:
                    raise StateGraphError(f"state graph exceeded {limit} states")
                frontier.append((nxt, nxt_enabled))
    for source, label, target in arcs:
        sg.add_arc(source, label, target)

    _assign_codes(stg, sg)
    return sg


def _generate_unfolded(stg: STG, limit: int, name: Optional[str]) -> StateGraph:
    """SG generation with explicit signal values in the state (2-phase).

    The initial values come from ``stg.initial_values`` (default 0); firing
    a rising transition from a high state (or falling from low) witnesses an
    inconsistent specification.
    """
    sg = StateGraph(name or stg.name)
    for signal, kind in stg.signals.items():
        if kind == SignalKind.DUMMY:
            continue
        sg.declare_signal(signal, kind)
    for transition in stg.net.transition_names:
        sg.declare_event(transition, stg.event_of(transition))
    index = {signal: i for i, signal in enumerate(sg.signals)}

    net = stg.net
    order = {t: i for i, t in enumerate(net.transition_names)}
    initial_values = tuple(stg.initial_values.get(s, 0) for s in sg.signals)
    initial_marking = net.initial_marking()
    initial = (initial_marking, initial_values)
    sg.add_state(initial, initial_values)
    sg.initial = initial
    initial_enabled = frozenset(net.enabled_transitions(initial_marking))
    frontier = [(initial, initial_enabled)]
    seen = {initial}
    while frontier:
        state, enabled = frontier.pop()
        marking, values = state
        for transition in sorted(enabled, key=order.__getitem__):
            event = stg.event_of(transition)
            position = index[event.signal]
            current = values[position]
            if event.direction == Direction.RISE and current != 0:
                raise ConsistencyError(
                    f"{transition} fires with {event.signal} already high")
            if event.direction == Direction.FALL and current != 1:
                raise ConsistencyError(
                    f"{transition} fires with {event.signal} already low")
            new_values = list(values)
            new_values[position] = 1 - current
            nxt_marking, nxt_enabled = net.fire_incremental(transition, marking,
                                                            enabled)
            target = (nxt_marking, tuple(new_values))
            if target not in seen:
                seen.add(target)
                if len(seen) > limit:
                    raise StateGraphError(f"state graph exceeded {limit} states")
                sg.add_state(target, target[1])
                frontier.append((target, nxt_enabled))
            sg.add_arc(state, transition, target)
    return sg


def _assign_codes(stg: STG, sg: StateGraph) -> None:
    """Solve the encoding constraints and write codes into ``sg``."""
    union_find = _ParityUnionFind()
    fixed: Dict[Hashable, Tuple[int, str]] = {}  # representative -> (value, why)

    def fix(var: Hashable, value: int, why: str) -> None:
        root, parity = union_find.find(var)
        want = value ^ parity
        if root in fixed and fixed[root][0] != want:
            raise ConsistencyError(
                f"inconsistent encoding: {why} conflicts with {fixed[root][1]}")
        fixed.setdefault(root, (want, why))

    for source, label, target in sg.arcs():
        event = sg.events[label]
        for signal in sg.signals:
            src_var = (source, signal)
            dst_var = (target, signal)
            if signal == event.signal:
                if event.direction == Direction.RISE:
                    fix(src_var, 0, f"{label} fired from state with {signal}=1")
                    fix(dst_var, 1, f"{label} fired into state with {signal}=0")
                elif event.direction == Direction.FALL:
                    fix(src_var, 1, f"{label} fired from state with {signal}=0")
                    fix(dst_var, 0, f"{label} fired into state with {signal}=1")
                else:  # toggle
                    if not union_find.union(src_var, dst_var, 1):
                        raise ConsistencyError(
                            f"toggle {label} requires {signal} to flip, but the "
                            f"states are already constrained equal")
            else:
                if not union_find.union(src_var, dst_var, 0):
                    raise ConsistencyError(
                        f"firing {label} must preserve {signal}, but the states "
                        f"are constrained to differ")

    # Re-check fixed values against merged classes (unions after fixes).
    merged: Dict[Hashable, Tuple[int, str]] = {}
    for root, (value, why) in list(fixed.items()):
        rep, parity = union_find.find(root)
        want = value ^ parity
        if rep in merged and merged[rep][0] != want:
            raise ConsistencyError(
                f"inconsistent encoding: {why} conflicts with {merged[rep][1]}")
        merged.setdefault(rep, (want, why))

    codes: Dict[Hashable, List[int]] = {state: [] for state in sg.states}
    for state in sg.states:
        for signal in sg.signals:
            rep, parity = union_find.find((state, signal))
            if rep in merged:
                value = merged[rep][0] ^ parity
            else:
                # Unconstrained class: seed from the declared initial value of
                # the signal at the initial state, defaulting to 0.
                init_rep, init_parity = union_find.find((sg.initial, signal))
                if init_rep == rep:
                    seed = stg.initial_values.get(signal, 0)
                    value = seed ^ init_parity ^ parity
                else:
                    value = stg.initial_values.get(signal, 0) ^ parity
            codes[state].append(value)
    for state, code in codes.items():
        sg.codes[state] = tuple(code)

    # Honour explicitly declared initial values when they are consistent.
    for signal, declared in stg.initial_values.items():
        if signal not in sg.kinds:
            continue
        index = sg.signal_index(signal)
        actual = sg.codes[sg.initial][index]
        if actual != declared:
            rep, _ = union_find.find((sg.initial, signal))
            if rep in merged:
                raise ConsistencyError(
                    f"declared initial value {signal}={declared} contradicts the "
                    f"encoding forced by the STG ({signal}={actual} at the initial "
                    f"state)")
            # Free signal: flip the whole (connected) class.
            for state in sg.states:
                state_rep, parity = union_find.find((state, signal))
                if state_rep == rep:
                    code = list(sg.codes[state])
                    code[index] ^= 1
                    sg.codes[state] = tuple(code)
