"""State graphs.

A State Graph (SG) is the reachability graph of an STG: nodes are markings
labelled with a vector of binary signal values, arcs are labelled with the
fired transition.  The SG is the model on which the paper performs
concurrency reduction (Sections 5-6), so this class supports arc and state
removal in addition to the usual queries.

States are opaque hashable objects (marking tuples when generated from an
STG, strings when built by hand in tests).  Arc labels are transition names;
``events`` maps each label to its :class:`~repro.petri.stg.SignalEvent`
(dummy labels are not allowed in an SG used for synthesis).

Binary codes live in two synchronized representations: the tuple API
(:meth:`code_of`) and packed integers where bit ``i`` is the value of
signal ``i`` (:meth:`code_int`), the same convention the logic minimizer
uses for minterms.  The analysis passes (:mod:`repro.sg.properties`,
:mod:`repro.sg.regions`, function extraction) run on a compiled flat-array
snapshot (:meth:`compiled`) that is invalidated automatically on mutation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from ..petri.stg import Direction, SignalEvent, SignalKind

State = Hashable
Code = Tuple[int, ...]


class StateGraphError(Exception):
    """Raised for invalid state-graph operations."""


class _CodeMap(dict):
    """Code store that keeps the owning SG's caches honest on mutation.

    ``sg.codes[state] = code`` is part of the public construction API, so
    the cache invalidation has to live in the mapping itself: every write
    bumps the graph version (compiled snapshots embed codes) and evicts the
    state's packed-integer code, which is cached per state rather than per
    version so that graph copies can inherit it wholesale.
    """

    __slots__ = ("_owner",)

    def __init__(self, owner: "StateGraph", *args) -> None:
        super().__init__(*args)
        self._owner = owner

    def __setitem__(self, key, value):
        self._owner._version += 1
        self._owner._code_int_cache.pop(key, None)
        super().__setitem__(key, value)

    def __delitem__(self, key):
        self._owner._version += 1
        self._owner._code_int_cache.pop(key, None)
        super().__delitem__(key)

    def pop(self, key, *default):
        self._owner._version += 1
        self._owner._code_int_cache.pop(key, None)
        return super().pop(key, *default)

    def update(self, *args, **kwargs):
        self._owner._version += 1
        self._owner._code_int_cache.clear()
        super().update(*args, **kwargs)

    def clear(self):
        self._owner._version += 1
        self._owner._code_int_cache.clear()
        super().clear()

    def setdefault(self, key, default=None):
        self._owner._version += 1
        self._owner._code_int_cache.pop(key, None)
        return super().setdefault(key, default)


@dataclass
class CompiledSG:
    """Flat index-based snapshot of an SG for the analysis hot loops.

    Everything is addressed by dense integer ids: ``states[i]`` is the state
    with id ``i`` and ``succ[i]`` maps label ids to target state ids.
    ``code_ints`` holds the packed binary codes (bit ``k`` = value of signal
    ``k``); states without a code pack to -1.
    """

    states: List[State]
    index: Dict[State, int]
    labels: List[str]
    label_index: Dict[str, int]
    succ: List[Dict[int, int]]
    code_ints: List[int]
    is_input: List[bool]
    event_signal: List[int]
    event_direction: List[Direction]


class StateGraph:
    """A finite, deterministic-by-construction labelled transition system."""

    def __init__(self, name: str = "sg") -> None:
        self.name = name
        self.signals: List[str] = []
        self.kinds: Dict[str, SignalKind] = {}
        self.events: Dict[str, SignalEvent] = {}
        self.initial: Optional[State] = None
        self._succ: Dict[State, Dict[str, State]] = {}
        self._pred_store: Optional[Dict[State, Set[Tuple[str, State]]]] = {}
        self._version = 0
        self._code_int_cache: Dict[State, int] = {}
        self.codes: Dict[State, Code] = _CodeMap(self)
        self._signal_pos: Dict[str, int] = {}
        self._signature: Optional[Tuple] = None
        self._signature_version = -1
        self._compiled: Optional[CompiledSG] = None
        self._compiled_version = -1

    @property
    def _pred(self) -> Dict[State, Set[Tuple[str, State]]]:
        """Predecessor map, rebuilt lazily from ``_succ`` after bulk edits.

        Reduction candidates are built by the thousands and most are
        discarded before anything ever walks backwards, so
        :meth:`copy_without_arcs` leaves this unset and the first backward
        query pays for the rebuild.
        """
        pred = self._pred_store
        if pred is None:
            pred = {state: set() for state in self._succ}
            for state, out in self._succ.items():
                for label, target in out.items():
                    pred[target].add((label, state))
            self._pred_store = pred
        return pred

    @_pred.setter
    def _pred(self, value: Optional[Dict[State, Set[Tuple[str, State]]]]) -> None:
        self._pred_store = value

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def declare_signal(self, name: str, kind: SignalKind) -> None:
        """Register a signal; order defines the code bit positions."""
        if name in self.kinds:
            if self.kinds[name] != kind:
                raise StateGraphError(f"signal {name!r} redeclared with different kind")
            return
        self._version += 1
        self._signal_pos[name] = len(self.signals)
        self.signals.append(name)
        self.kinds[name] = kind

    def declare_event(self, label: str, event: Optional[SignalEvent] = None) -> None:
        """Register an arc label and its signal event.

        When ``event`` is omitted, the label itself is parsed as an event.
        """
        if event is None:
            event = SignalEvent.parse(label)
        if event.signal not in self.kinds:
            raise StateGraphError(f"undeclared signal {event.signal!r}")
        existing = self.events.get(label)
        if existing is not None and existing != event:
            raise StateGraphError(f"label {label!r} redeclared with different event")
        self._version += 1
        self.events[label] = event

    def add_state(self, state: State, code: Optional[Code] = None) -> None:
        """Add a state (idempotent), optionally with its binary code."""
        if state not in self._succ:
            self._version += 1
            self._succ[state] = {}
            if self._pred_store is not None:
                self._pred_store[state] = set()
        if code is not None:
            if len(code) != len(self.signals):
                raise StateGraphError("code length does not match signal count")
            self.codes[state] = tuple(code)
        if self.initial is None:
            self.initial = state

    def add_arc(self, source: State, label: str, target: State) -> None:
        """Add ``source --label--> target``; labels must be declared events."""
        if label not in self.events:
            raise StateGraphError(f"undeclared event label {label!r}")
        self.add_state(source)
        self.add_state(target)
        existing = self._succ[source].get(label)
        if existing is not None and existing != target:
            raise StateGraphError(
                f"nondeterminism: {source!r} --{label}--> both {existing!r} and {target!r}")
        self._version += 1
        self._succ[source][label] = target
        if self._pred_store is not None:
            self._pred_store[target].add((label, source))

    def remove_arc(self, source: State, label: str) -> None:
        """Remove the unique arc labelled ``label`` leaving ``source``."""
        target = self._succ.get(source, {}).pop(label, None)
        if target is None:
            raise StateGraphError(f"no arc {source!r} --{label}-->")
        self._version += 1
        if self._pred_store is not None:
            self._pred_store[target].discard((label, source))

    def remove_state(self, state: State) -> None:
        """Remove a state and all arcs incident to it."""
        if state not in self._succ:
            raise StateGraphError(f"unknown state {state!r}")
        self._version += 1
        pred = self._pred  # force the rebuild before edits
        for label, target in list(self._succ[state].items()):
            pred[target].discard((label, state))
        for label, source in list(pred[state]):
            self._succ[source].pop(label, None)
        del self._succ[state]
        del pred[state]
        self.codes.pop(state, None)
        if self.initial == state:
            self.initial = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def states(self) -> List[State]:
        """Every state, in insertion order."""
        return list(self._succ)

    def __len__(self) -> int:
        return len(self._succ)

    def __contains__(self, state: State) -> bool:
        return state in self._succ

    def successors(self, state: State) -> Dict[str, State]:
        """Outgoing arcs of a state as ``{label: target}``."""
        if state not in self._succ:
            raise StateGraphError(f"unknown state {state!r}")
        return dict(self._succ[state])

    def predecessors(self, state: State) -> Set[Tuple[str, State]]:
        """Incoming arcs of a state as ``{(label, source)}``."""
        if state not in self._pred:
            raise StateGraphError(f"unknown state {state!r}")
        return set(self._pred[state])

    def arcs(self) -> Iterator[Tuple[State, str, State]]:
        """Iterate over all arcs as (source, label, target)."""
        for source, outgoing in self._succ.items():
            for label, target in outgoing.items():
                yield source, label, target

    def arc_count(self) -> int:
        """Total number of labelled arcs."""
        return sum(len(out) for out in self._succ.values())

    def enabled(self, state: State) -> List[str]:
        """Labels enabled at a state."""
        return list(self._succ[state])

    def target(self, state: State, label: str) -> Optional[State]:
        """The state reached by firing ``label``, or None if not enabled."""
        return self._succ.get(state, {}).get(label)

    def labels(self) -> List[str]:
        """All declared arc labels."""
        return list(self.events)

    def labels_of_signal(self, signal: str) -> List[str]:
        """The rise/fall labels of ``signal``, e.g. ``["a+", "a-"]``."""
        return [label for label, event in self.events.items() if event.signal == signal]

    def is_input_label(self, label: str) -> bool:
        """Whether ``label`` is an event of an input signal."""
        return self.kinds[self.events[label].signal] == SignalKind.INPUT

    def code_of(self, state: State) -> Code:
        """The binary code tuple of ``state``."""
        try:
            return self.codes[state]
        except KeyError:
            raise StateGraphError(f"state {state!r} has no binary code") from None

    def code_int(self, state: State) -> int:
        """The state's binary code packed into one integer (bit i = signal i).

        Cached per state; :class:`_CodeMap` evicts an entry whenever the
        state's code is rewritten, and :meth:`copy` hands the cache down.
        """
        cached = self._code_int_cache.get(state)
        if cached is None:
            code = self.code_of(state)
            cached = 0
            for i, value in enumerate(code):
                if value:
                    cached |= 1 << i
            self._code_int_cache[state] = cached
        return cached

    def value_of(self, state: State, signal: str) -> int:
        """The value of ``signal`` in ``state``."""
        return self.code_of(state)[self.signal_index(signal)]

    def signal_index(self, signal: str) -> int:
        """The code bit position of ``signal``."""
        try:
            return self._signal_pos[signal]
        except KeyError:
            raise StateGraphError(f"undeclared signal {signal!r}") from None

    def signature(self) -> Tuple:
        """Hashable identity of the graph, cached until mutation.

        Covers everything the analyses depend on -- the arc set, the
        initial state, signal declarations and the binary codes -- so two
        graphs with equal signatures are interchangeable for cost
        evaluation and reduction.  Exploration and the process-global memo
        tables key on this; computing it once per version saves a full
        sweep per lookup.
        """
        if self._signature_version != self._version or self._signature is None:
            self._signature = (
                frozenset(self.arcs()),
                self.initial,
                tuple((signal, self.kinds[signal]) for signal in self.signals),
                frozenset(self.codes.items()),
            )
            self._signature_version = self._version
        return self._signature

    def compiled(self) -> CompiledSG:
        """The flat index-based snapshot, rebuilt lazily after mutations."""
        if self._compiled_version == self._version and self._compiled is not None:
            return self._compiled
        states = list(self._succ)
        index = {state: i for i, state in enumerate(states)}
        labels = list(self.events)
        label_index = {label: i for i, label in enumerate(labels)}
        succ: List[Dict[int, int]] = []
        for state in states:
            out = self._succ[state]
            succ.append({label_index[label]: index[target]
                         for label, target in out.items()})
        codes = self.codes
        code_ints = [self.code_int(s) if s in codes else -1 for s in states]
        is_input = [self.is_input_label(label) for label in labels]
        event_signal = [self._signal_pos[self.events[label].signal] for label in labels]
        event_direction = [self.events[label].direction for label in labels]
        self._compiled = CompiledSG(
            states=states, index=index, labels=labels, label_index=label_index,
            succ=succ, code_ints=code_ints, is_input=is_input,
            event_signal=event_signal, event_direction=event_direction)
        self._compiled_version = self._version
        return self._compiled

    # ------------------------------------------------------------------
    # reachability
    # ------------------------------------------------------------------
    def reachable_from(self, start: Optional[State] = None) -> Set[State]:
        """Forward-reachable states from ``start`` (default: initial)."""
        start = self.initial if start is None else start
        if start is None or start not in self._succ:
            return set()
        seen = {start}
        queue = deque([start])
        while queue:
            state = queue.popleft()
            for target in self._succ[state].values():
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
        return seen

    def backward_reachable(self, targets: Iterable[State],
                           within: Optional[Set[State]] = None) -> Set[State]:
        """States from which some target is reachable.

        When ``within`` is given, the search only traverses states inside
        that set (used by FwdRed to stay inside an excitation region).
        Targets themselves are included when they belong to ``within`` (or
        unconditionally if ``within`` is None).
        """
        result: Set[State] = set()
        queue: deque = deque()
        for target in targets:
            if target in self._succ and (within is None or target in within):
                result.add(target)
                queue.append(target)
        while queue:
            state = queue.popleft()
            for _, source in self._pred[state]:
                if source in result:
                    continue
                if within is not None and source not in within:
                    continue
                result.add(source)
                queue.append(source)
        return result

    def restrict_to_reachable(self) -> int:
        """Drop states unreachable from the initial state; returns the count removed."""
        reachable = self.reachable_from()
        removed = len(self._succ) - len(reachable)
        if not removed:
            return 0
        # Rebuild wholesale: per-state removal pays for each incident arc,
        # which dominates when a reduction strands a large region.
        self._version += 1
        self._succ = {s: out for s, out in self._succ.items() if s in reachable}
        self._pred_store = None
        for state in [s for s in self.codes if s not in reachable]:
            self.codes.pop(state)
        if self.initial is not None and self.initial not in reachable:
            self.initial = None
        return removed

    def copy_without_arcs(self, removed_arcs: Iterable[Tuple[State, str]],
                          name: Optional[str] = None,
                          reachable: Optional[Set[State]] = None) -> "StateGraph":
        """Copy of the reachable part of the graph minus the given arcs.

        Equivalent to ``copy()`` + ``remove_arc`` per pair +
        ``restrict_to_reachable()`` but built in one forward pass, which is
        what the reduction engine does for every candidate it generates.
        ``reachable`` may supply the post-removal reachable set when the
        caller has already computed it (states keep their declaration
        order); otherwise it is discovered by BFS from the initial state.
        """
        dropped: Dict[State, Set[str]] = {}
        for state, label in removed_arcs:
            dropped.setdefault(state, set()).add(label)
        clone = StateGraph(name or self.name)
        clone.signals = list(self.signals)
        clone.kinds = dict(self.kinds)
        clone.events = dict(self.events)
        clone._signal_pos = dict(self._signal_pos)
        if self.initial is None:
            return clone
        succ = self._succ
        codes = self.codes
        new_succ: Dict[State, Dict[str, State]] = {}
        if reachable is not None:
            for state in succ:
                if state not in reachable:
                    continue
                bad = dropped.get(state)
                new_succ[state] = {
                    label: target for label, target in succ[state].items()
                    if bad is None or label not in bad}
        else:
            queue = deque([self.initial])
            new_succ[self.initial] = {}
            while queue:
                state = queue.popleft()
                bad = dropped.get(state)
                out = {label: target for label, target in succ[state].items()
                       if bad is None or label not in bad}
                new_succ[state] = out
                for target in out.values():
                    if target not in new_succ:
                        new_succ[target] = {}
                        queue.append(target)
        clone._succ = new_succ
        clone._pred_store = None
        clone.initial = self.initial
        code_map = clone.codes
        cache = clone._code_int_cache
        own_cache = self._code_int_cache
        for state in new_succ:
            code = codes.get(state)
            if code is not None:
                dict.__setitem__(code_map, state, code)
                packed = own_cache.get(state)
                if packed is not None:
                    cache[state] = packed
        clone._version += 1
        return clone

    # ------------------------------------------------------------------
    # utilities
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "StateGraph":
        """A deep copy, optionally renamed."""
        clone = StateGraph(name or self.name)
        clone.signals = list(self.signals)
        clone.kinds = dict(self.kinds)
        clone.events = dict(self.events)
        clone.initial = self.initial
        clone._succ = {s: dict(out) for s, out in self._succ.items()}
        clone._pred_store = (None if self._pred_store is None else
                             {s: set(inc) for s, inc in self._pred_store.items()})
        clone.codes.update(self.codes)
        clone._code_int_cache = dict(self._code_int_cache)
        clone._signal_pos = dict(self._signal_pos)
        return clone

    def code_string(self, state: State) -> str:
        """Human-readable code with ``*`` marking excited signals (as in Fig. 1d)."""
        code = self.code_of(state)
        enabled_signals = {self.events[label].signal for label in self._succ[state]}
        parts = []
        for signal, value in zip(self.signals, code):
            parts.append(f"{value}*" if signal in enabled_signals else str(value))
        return "".join(parts)

    def to_dot(self) -> str:
        """GraphViz rendering for debugging and documentation."""
        lines = [f'digraph "{self.name}" {{', '  node [shape=box];']
        ids = {state: f"s{i}" for i, state in enumerate(self._succ)}
        for state, sid in ids.items():
            label = self.code_string(state) if state in self.codes else str(state)
            shape = ' peripheries=2' if state == self.initial else ''
            lines.append(f'  {sid} [label="{label}"{shape}];')
        for source, label, target in self.arcs():
            lines.append(f'  {ids[source]} -> {ids[target]} [label="{label}"];')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"StateGraph({self.name!r}, |S|={len(self._succ)}, "
                f"|A|={self.arc_count()})")
