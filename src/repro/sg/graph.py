"""State graphs.

A State Graph (SG) is the reachability graph of an STG: nodes are markings
labelled with a vector of binary signal values, arcs are labelled with the
fired transition.  The SG is the model on which the paper performs
concurrency reduction (Sections 5-6), so this class supports arc and state
removal in addition to the usual queries.

States are opaque hashable objects (marking tuples when generated from an
STG, strings when built by hand in tests).  Arc labels are transition names;
``events`` maps each label to its :class:`~repro.petri.stg.SignalEvent`
(dummy labels are not allowed in an SG used for synthesis).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from ..petri.stg import Direction, SignalEvent, SignalKind

State = Hashable
Code = Tuple[int, ...]


class StateGraphError(Exception):
    """Raised for invalid state-graph operations."""


class StateGraph:
    """A finite, deterministic-by-construction labelled transition system."""

    def __init__(self, name: str = "sg") -> None:
        self.name = name
        self.signals: List[str] = []
        self.kinds: Dict[str, SignalKind] = {}
        self.events: Dict[str, SignalEvent] = {}
        self.initial: Optional[State] = None
        self._succ: Dict[State, Dict[str, State]] = {}
        self._pred: Dict[State, Set[Tuple[str, State]]] = {}
        self.codes: Dict[State, Code] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def declare_signal(self, name: str, kind: SignalKind) -> None:
        if name in self.kinds:
            if self.kinds[name] != kind:
                raise StateGraphError(f"signal {name!r} redeclared with different kind")
            return
        self.signals.append(name)
        self.kinds[name] = kind

    def declare_event(self, label: str, event: Optional[SignalEvent] = None) -> None:
        """Register an arc label and its signal event.

        When ``event`` is omitted, the label itself is parsed as an event.
        """
        if event is None:
            event = SignalEvent.parse(label)
        if event.signal not in self.kinds:
            raise StateGraphError(f"undeclared signal {event.signal!r}")
        existing = self.events.get(label)
        if existing is not None and existing != event:
            raise StateGraphError(f"label {label!r} redeclared with different event")
        self.events[label] = event

    def add_state(self, state: State, code: Optional[Code] = None) -> None:
        if state not in self._succ:
            self._succ[state] = {}
            self._pred[state] = set()
        if code is not None:
            if len(code) != len(self.signals):
                raise StateGraphError("code length does not match signal count")
            self.codes[state] = tuple(code)
        if self.initial is None:
            self.initial = state

    def add_arc(self, source: State, label: str, target: State) -> None:
        """Add ``source --label--> target``; labels must be declared events."""
        if label not in self.events:
            raise StateGraphError(f"undeclared event label {label!r}")
        self.add_state(source)
        self.add_state(target)
        existing = self._succ[source].get(label)
        if existing is not None and existing != target:
            raise StateGraphError(
                f"nondeterminism: {source!r} --{label}--> both {existing!r} and {target!r}")
        self._succ[source][label] = target
        self._pred[target].add((label, source))

    def remove_arc(self, source: State, label: str) -> None:
        """Remove the unique arc labelled ``label`` leaving ``source``."""
        target = self._succ.get(source, {}).pop(label, None)
        if target is None:
            raise StateGraphError(f"no arc {source!r} --{label}-->")
        self._pred[target].discard((label, source))

    def remove_state(self, state: State) -> None:
        """Remove a state and all arcs incident to it."""
        if state not in self._succ:
            raise StateGraphError(f"unknown state {state!r}")
        for label, target in list(self._succ[state].items()):
            self._pred[target].discard((label, state))
        for label, source in list(self._pred[state]):
            self._succ[source].pop(label, None)
        del self._succ[state]
        del self._pred[state]
        self.codes.pop(state, None)
        if self.initial == state:
            self.initial = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def states(self) -> List[State]:
        return list(self._succ)

    def __len__(self) -> int:
        return len(self._succ)

    def __contains__(self, state: State) -> bool:
        return state in self._succ

    def successors(self, state: State) -> Dict[str, State]:
        """Outgoing arcs of a state as ``{label: target}``."""
        if state not in self._succ:
            raise StateGraphError(f"unknown state {state!r}")
        return dict(self._succ[state])

    def predecessors(self, state: State) -> Set[Tuple[str, State]]:
        """Incoming arcs of a state as ``{(label, source)}``."""
        if state not in self._pred:
            raise StateGraphError(f"unknown state {state!r}")
        return set(self._pred[state])

    def arcs(self) -> Iterator[Tuple[State, str, State]]:
        """Iterate over all arcs as (source, label, target)."""
        for source, outgoing in self._succ.items():
            for label, target in outgoing.items():
                yield source, label, target

    def arc_count(self) -> int:
        return sum(len(out) for out in self._succ.values())

    def enabled(self, state: State) -> List[str]:
        """Labels enabled at a state."""
        return list(self._succ[state])

    def target(self, state: State, label: str) -> Optional[State]:
        """The state reached by firing ``label``, or None if not enabled."""
        return self._succ.get(state, {}).get(label)

    def labels(self) -> List[str]:
        """All declared arc labels."""
        return list(self.events)

    def labels_of_signal(self, signal: str) -> List[str]:
        return [label for label, event in self.events.items() if event.signal == signal]

    def is_input_label(self, label: str) -> bool:
        return self.kinds[self.events[label].signal] == SignalKind.INPUT

    def code_of(self, state: State) -> Code:
        try:
            return self.codes[state]
        except KeyError:
            raise StateGraphError(f"state {state!r} has no binary code") from None

    def value_of(self, state: State, signal: str) -> int:
        return self.code_of(state)[self.signal_index(signal)]

    def signal_index(self, signal: str) -> int:
        try:
            return self.signals.index(signal)
        except ValueError:
            raise StateGraphError(f"undeclared signal {signal!r}") from None

    # ------------------------------------------------------------------
    # reachability
    # ------------------------------------------------------------------
    def reachable_from(self, start: Optional[State] = None) -> Set[State]:
        """Forward-reachable states from ``start`` (default: initial)."""
        start = self.initial if start is None else start
        if start is None or start not in self._succ:
            return set()
        seen = {start}
        queue = deque([start])
        while queue:
            state = queue.popleft()
            for target in self._succ[state].values():
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
        return seen

    def backward_reachable(self, targets: Iterable[State],
                           within: Optional[Set[State]] = None) -> Set[State]:
        """States from which some target is reachable.

        When ``within`` is given, the search only traverses states inside
        that set (used by FwdRed to stay inside an excitation region).
        Targets themselves are included when they belong to ``within`` (or
        unconditionally if ``within`` is None).
        """
        result: Set[State] = set()
        queue: deque = deque()
        for target in targets:
            if target in self._succ and (within is None or target in within):
                result.add(target)
                queue.append(target)
        while queue:
            state = queue.popleft()
            for _, source in self._pred[state]:
                if source in result:
                    continue
                if within is not None and source not in within:
                    continue
                result.add(source)
                queue.append(source)
        return result

    def restrict_to_reachable(self) -> int:
        """Drop states unreachable from the initial state; returns the count removed."""
        reachable = self.reachable_from()
        removed = 0
        for state in [s for s in self._succ if s not in reachable]:
            self.remove_state(state)
            removed += 1
        return removed

    # ------------------------------------------------------------------
    # utilities
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "StateGraph":
        clone = StateGraph(name or self.name)
        clone.signals = list(self.signals)
        clone.kinds = dict(self.kinds)
        clone.events = dict(self.events)
        clone.initial = self.initial
        clone._succ = {s: dict(out) for s, out in self._succ.items()}
        clone._pred = {s: set(inc) for s, inc in self._pred.items()}
        clone.codes = dict(self.codes)
        return clone

    def code_string(self, state: State) -> str:
        """Human-readable code with ``*`` marking excited signals (as in Fig. 1d)."""
        code = self.code_of(state)
        enabled_signals = {self.events[label].signal for label in self._succ[state]}
        parts = []
        for signal, value in zip(self.signals, code):
            parts.append(f"{value}*" if signal in enabled_signals else str(value))
        return "".join(parts)

    def to_dot(self) -> str:
        """GraphViz rendering for debugging and documentation."""
        lines = [f'digraph "{self.name}" {{', '  node [shape=box];']
        ids = {state: f"s{i}" for i, state in enumerate(self._succ)}
        for state, sid in ids.items():
            label = self.code_string(state) if state in self.codes else str(state)
            shape = ' peripheries=2' if state == self.initial else ''
            lines.append(f'  {sid} [label="{label}"{shape}];')
        for source, label, target in self.arcs():
            lines.append(f'  {ids[source]} -> {ids[target]} [label="{label}"];')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"StateGraph({self.name!r}, |S|={len(self._succ)}, "
                f"|A|={self.arc_count()})")
