"""Excitation regions, quiescent regions and the concurrency relation.

Definition 2.1 of the paper defines concurrency of two events through the
diamond structure; for speed-independent SGs this coincides with the
intersection of excitation regions.  Both notions are provided here (the
diamond-based one is the ground truth used by the reduction engine, the
ER-based one is used as a fast check and in tests as a cross-validation).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..petri.stg import Direction, SignalKind
from .graph import State, StateGraph


def excitation_region(sg: StateGraph, label: str) -> Set[State]:
    """All states in which ``label`` is enabled.

    The paper defines an ER as a *maximal connected* set of such states; we
    return the full set and provide :func:`excitation_region_components` for
    the connected decomposition (the reduction operates on the full set of
    the given transition instance, which is connected in practice).
    """
    return {state for state, out in sg._succ.items() if label in out}


def excitation_region_components(sg: StateGraph, label: str) -> List[Set[State]]:
    """Connected components of the excitation region of ``label``.

    Connectivity is taken over the undirected version of the SG restricted
    to the ER, matching the "maximal connected set" in the paper.
    """
    er = excitation_region(sg, label)
    components: List[Set[State]] = []
    remaining = set(er)
    while remaining:
        seed = next(iter(remaining))
        component = {seed}
        queue = deque([seed])
        while queue:
            state = queue.popleft()
            neighbours = set(sg.successors(state).values())
            neighbours.update(source for _, source in sg.predecessors(state))
            for nxt in neighbours:
                if nxt in remaining and nxt not in component:
                    component.add(nxt)
                    queue.append(nxt)
        components.append(component)
        remaining -= component
    return components


def quiescent_region(sg: StateGraph, signal: str, value: int) -> Set[State]:
    """States where ``signal`` is stable at ``value`` (no transition enabled)."""
    index = sg.signal_index(signal)
    labels = sg.labels_of_signal(signal)
    bit = 1 << index
    region = set()
    for state, out in sg._succ.items():
        if bool(sg.code_int(state) & bit) != bool(value):
            continue
        if any(label in out for label in labels):
            continue
        region.add(state)
    return region


def minimal_states(sg: StateGraph, region: Set[State]) -> Set[State]:
    """States of ``region`` with no predecessor inside ``region``."""
    return {state for state in region
            if not any(source in region for _, source in sg.predecessors(state))}


def are_concurrent(sg: StateGraph, label_a: str, label_b: str) -> bool:
    """Definition 2.1: a diamond on ``label_a``/``label_b`` exists in the SG."""
    if label_a == label_b:
        return False
    succ = sg._succ
    for out in succ.values():
        via_a = out.get(label_a)
        if via_a is None:
            continue
        via_b = out.get(label_b)
        if via_b is None:
            continue
        end = succ[via_a].get(label_b)
        if end is not None and succ[via_b].get(label_a) == end:
            return True
    return False


def concurrent_pairs(sg: StateGraph) -> Set[Tuple[str, str]]:
    """All unordered concurrent label pairs, reported as sorted tuples."""
    succ = sg._succ
    pairs: Set[Tuple[str, str]] = set()
    for state, out in succ.items():
        if len(out) < 2:
            continue
        enabled = list(out)
        for i, label_a in enumerate(enabled):
            via_a = out[label_a]
            for label_b in enabled[i + 1:]:
                key = (label_a, label_b) if label_a <= label_b else (label_b, label_a)
                if key in pairs:
                    continue
                end = succ[via_a].get(label_b)
                if end is not None and succ[out[label_b]].get(label_a) == end:
                    pairs.add(key)
    return pairs


def er_intersection_concurrent(sg: StateGraph, label_a: str, label_b: str) -> bool:
    """ER-based concurrency test (equivalent for speed-independent SGs)."""
    if label_a == label_b:
        return False
    return bool(excitation_region(sg, label_a) & excitation_region(sg, label_b))


def trigger_events(sg: StateGraph, label: str) -> Set[str]:
    """Events whose firing enters the ER of ``label`` from outside.

    These are the causal predecessors ("triggers") of the event, used by the
    logic-complexity estimator: the support of a signal's function grows
    with its triggers.
    """
    er = excitation_region(sg, label)
    triggers: Set[str] = set()
    for state in er:
        for incoming_label, source in sg._pred[state]:
            if source not in er:
                triggers.add(incoming_label)
    return triggers


def enabled_outputs(sg: StateGraph, state: State) -> List[str]:
    """Non-input labels enabled at a state."""
    return [label for label in sg.enabled(state) if not sg.is_input_label(label)]


def concurrency_matrix(sg: StateGraph) -> Dict[Tuple[str, str], bool]:
    """Dense concurrency relation over all label pairs (symmetric)."""
    labels = sg.labels()
    pairs = concurrent_pairs(sg)
    matrix: Dict[Tuple[str, str], bool] = {}
    for i, label_a in enumerate(labels):
        for label_b in labels[i + 1:]:
            key = tuple(sorted((label_a, label_b)))
            value = key in pairs
            matrix[(label_a, label_b)] = value
            matrix[(label_b, label_a)] = value
    return matrix
