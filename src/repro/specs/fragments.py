"""Hand-built fragments from the paper's figures, plus the chainable
handshake fragments the random generator composes.

* :func:`fig8_sg` -- the SG fragment of Fig. 8 (choice + concurrency) on
  which ``FwdRed(a, b)`` removes the concurrency of ``a`` with ``b``, ``d``
  *and* ``e`` in a single step;
* :func:`fig6_spec` -- the mixed specification of Fig. 6: one channel, one
  partially specified signal, one completely specified signal;
* :class:`HandshakeFragment` and its shapes -- declarative live-safe
  pipeline stages (``link``, ``fifo``, ``micropipeline``) that
  :mod:`repro.specs.generate` chains with
  :func:`repro.petri.compose.compose_all`: stage *i*'s right channel is
  stage *i+1*'s left channel, so any shape sequence composes into one
  closed speed-independent control.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from ..hse.spec import ChannelRole, PartialSpec
from ..petri.stg import STG, Direction, SignalEvent, SignalKind
from ..sg.graph import StateGraph


def fig8_sg() -> StateGraph:
    """The Fig. 8 SG fragment.

    Events ``a``, ``b``, ``d``, ``e`` plus the choice event ``g`` (the
    figure's non-persistent branch) and the prefix event ``c``.  ``a`` is
    concurrent with ``d``, ``e`` and ``b``; ``b`` is only enabled at the
    end, so the backward reachability in ``FwdRed(a, b)`` truncates the
    whole excitation region of ``a`` except its final state.
    """
    sg = StateGraph("fig8")
    for signal in ("a", "b", "c", "d", "e", "g"):
        sg.declare_signal(signal, SignalKind.OUTPUT)
        sg.declare_event(signal, SignalEvent(signal, Direction.RISE))
    sg.add_state("s0")
    sg.initial = "s0"
    sg.add_arc("s0", "c", "s1")
    # diamond a || d
    sg.add_arc("s1", "a", "s2")
    sg.add_arc("s1", "d", "s3")
    sg.add_arc("s2", "d", "s4")
    sg.add_arc("s3", "a", "s4")
    # diamond a || e (e follows d)
    sg.add_arc("s3", "e", "s5")
    sg.add_arc("s4", "e", "s6")
    sg.add_arc("s5", "a", "s6")
    # diamond a || b (b follows e)
    sg.add_arc("s5", "b", "s7")
    sg.add_arc("s6", "b", "s8")
    sg.add_arc("s7", "a", "s8")
    # the non-persistent choice: g competes with a and d at s1
    sg.add_arc("s1", "g", "t1")
    return sg


def fig6_spec() -> PartialSpec:
    """Fig. 6.a: channel ``a``, partial signal ``b``, full signal ``c``.

    The cycle ``a! ; b ; c+ ; a? ; b ; c-`` uses the channel in both roles
    (active then passive within one iteration), which is why its expansion
    relies on the role-free return-to-zero structure of Fig. 5.c.
    """
    spec = PartialSpec("fig6")
    spec.declare_channel("a", ChannelRole.FREE)
    spec.declare_partial_signal("b", SignalKind.OUTPUT)
    spec.declare_signal("c", SignalKind.OUTPUT)
    first_b = spec.add("b")
    second_b = spec.add("b/1")
    for event in ("a!", "c+", "a?", "c-"):
        spec.add(event)
    spec.chain("a!", first_b, "c+", "a?", second_b, "c-")
    spec.connect("c-", "a!")
    spec.mark("<c-,a!>")
    return spec


# ----------------------------------------------------------------------
# chainable handshake fragments (the generator's building blocks)
# ----------------------------------------------------------------------

#: Symbolic channel events a fragment's structure may reference and the
#: signal they resolve to at stage ``i``.  The left channel of stage i is
#: the right channel of stage i-1, which is what makes shapes chainable.
_CHANNEL_SIGNALS = {
    "l.req": ("r{i}", SignalKind.INPUT),
    "l.ack": ("a{i}", SignalKind.OUTPUT),
    "r.req": ("r{j}", SignalKind.OUTPUT),
    "r.ack": ("a{j}", SignalKind.INPUT),
}


class HandshakeFragment:
    """One chainable stage of a live-safe handshake pipeline.

    A subclass *is* its structure, declared the way CarlAdam nets spell
    out ``Structure.arcs``: ``arcs`` connects symbolic channel events
    (``l.req+``, ``r.ack-``, ...) and internal places, ``marked`` names
    the arcs or places holding the initial tokens.  Every shape is a
    strongly connected net whose cycles each carry exactly one token, so
    each stage -- and by the fusion rule of
    :func:`~repro.petri.compose.compose`, any chain of stages -- is live,
    1-safe and consistent with all signals initially low.

    :meth:`build` instantiates stage ``i``: ``l.req``/``l.ack`` become
    ``r{i}``/``a{i}``, ``r.req``/``r.ack`` become ``r{i+1}``/``a{i+1}``,
    internal places and signals are suffixed with the stage index.
    """

    #: The registry key (also the derivation-trace spelling).
    shape: str = ""
    #: (source, target) pairs over symbolic events / internal places.
    arcs: Tuple[Tuple[str, str], ...] = ()
    #: Tokens: an internal place name, or an (event, event) arc.
    marked: Tuple[object, ...] = ()
    #: Internal places, instantiated per stage.
    places: Tuple[str, ...] = ()
    #: Internal signals (stem -> kind), instantiated per stage.
    internal_signals: Dict[str, SignalKind] = {}

    def _signal(self, symbol: str, index: int) -> Tuple[str, SignalKind]:
        channel = _CHANNEL_SIGNALS.get(symbol)
        if channel is not None:
            template, kind = channel
            return template.format(i=index, j=index + 1), kind
        stem = symbol.split(".", 1)[0]
        if stem in self.internal_signals:
            return f"{stem}{index}", self.internal_signals[stem]
        raise KeyError(f"fragment {self.shape!r} references unknown "
                       f"signal symbol {symbol!r}")

    def _node(self, symbol: str, index: int, stg: STG) -> str:
        """Resolve a symbolic event/place to a concrete node name."""
        if symbol in self.places:
            return f"{symbol}{index}"
        base, direction = symbol[:-1], symbol[-1]
        signal, kind = self._signal(base, index)
        stg.declare_signal(signal, kind)
        stg.set_initial_value(signal, 0)
        return stg.add_event(f"{signal}{direction}")

    def build(self, index: int) -> STG:
        """Instantiate this shape as pipeline stage ``index``."""
        stg = STG(f"{self.shape}{index}")
        for place in self.places:
            stg.net.add_place(f"{place}{index}")
        for source, target in self.arcs:
            stg.connect(self._node(source, index, stg),
                        self._node(target, index, stg))
        for token in self.marked:
            if isinstance(token, str):
                stg.mark(f"{token}{index}")
            else:
                source, target = (self._node(symbol, index, stg)
                                  for symbol in token)
                stg.mark(f"<{source},{target}>")
        return stg


class LinkFragment(HandshakeFragment):
    """The minimal chainable stage: the left request *is* the handshake.

    Two signals, four transitions -- the smallest live-safe cell the
    shrinker can reduce a chain to.
    """

    shape = "link"
    arcs = (
        ("l.req+", "r.req+"),
        ("r.req+", "l.req-"),
        ("l.req-", "r.req-"),
        ("r.req-", "l.req+"),
    )
    marked = (("r.req-", "l.req+"),)


class FifoFragment(HandshakeFragment):
    """A one-place FIFO stage: strictly sequential 4-phase handshakes."""

    shape = "fifo"
    arcs = (
        ("l.req+", "l.ack+"),
        ("l.ack+", "l.req-"),
        ("l.req-", "l.ack-"),
        ("l.ack-", "r.req+"),
        ("r.req+", "r.ack+"),
        ("r.ack+", "r.req-"),
        ("r.req-", "r.ack-"),
        ("r.ack-", "l.req+"),
    )
    marked = (("r.ack-", "l.req+"),)


class MicropipelineFragment(HandshakeFragment):
    """A micropipeline control stage: decoupled handshakes with an
    explicit full/empty capacity place, the chain's concurrency source."""

    shape = "micropipeline"
    places = ("full", "empty")
    arcs = (
        ("l.req+", "l.ack+"),
        ("l.ack+", "l.req-"),
        ("l.req-", "l.ack-"),
        ("l.ack-", "l.req+"),
        ("l.ack+", "full"),
        ("full", "r.req+"),
        ("r.req+", "empty"),
        ("empty", "l.ack+"),
        ("r.req+", "r.ack+"),
        ("r.ack+", "r.req-"),
        ("r.req-", "r.ack-"),
        ("r.ack-", "r.req+"),
    )
    marked = (("l.ack-", "l.req+"), ("r.ack-", "r.req+"), "empty")


#: Shape registry, simplest first -- the order the shrinker simplifies
#: toward (``micropipeline`` -> ``fifo`` -> ``link``).
FRAGMENT_SHAPES: Dict[str, Type[HandshakeFragment]] = {
    "link": LinkFragment,
    "fifo": FifoFragment,
    "micropipeline": MicropipelineFragment,
}

#: Every strictly simpler shape for each shape, simplest last -- the
#: shrinker offers them all, so it can jump straight down the ladder.
SIMPLER_SHAPE: Dict[str, Tuple[str, ...]] = {
    "micropipeline": ("fifo", "link"),
    "fifo": ("link",),
}


def build_fragment(shape: str, index: int) -> STG:
    """Instantiate ``shape`` as pipeline stage ``index``."""
    try:
        cls = FRAGMENT_SHAPES[shape]
    except KeyError:
        raise KeyError(f"unknown fragment shape {shape!r}; expected one "
                       f"of {sorted(FRAGMENT_SHAPES)}") from None
    return cls().build(index)
