"""Hand-built fragments from the paper's figures.

* :func:`fig8_sg` -- the SG fragment of Fig. 8 (choice + concurrency) on
  which ``FwdRed(a, b)`` removes the concurrency of ``a`` with ``b``, ``d``
  *and* ``e`` in a single step;
* :func:`fig6_spec` -- the mixed specification of Fig. 6: one channel, one
  partially specified signal, one completely specified signal.
"""

from __future__ import annotations

from ..hse.spec import ChannelRole, PartialSpec
from ..petri.stg import Direction, SignalEvent, SignalKind
from ..sg.graph import StateGraph


def fig8_sg() -> StateGraph:
    """The Fig. 8 SG fragment.

    Events ``a``, ``b``, ``d``, ``e`` plus the choice event ``g`` (the
    figure's non-persistent branch) and the prefix event ``c``.  ``a`` is
    concurrent with ``d``, ``e`` and ``b``; ``b`` is only enabled at the
    end, so the backward reachability in ``FwdRed(a, b)`` truncates the
    whole excitation region of ``a`` except its final state.
    """
    sg = StateGraph("fig8")
    for signal in ("a", "b", "c", "d", "e", "g"):
        sg.declare_signal(signal, SignalKind.OUTPUT)
        sg.declare_event(signal, SignalEvent(signal, Direction.RISE))
    sg.add_state("s0")
    sg.initial = "s0"
    sg.add_arc("s0", "c", "s1")
    # diamond a || d
    sg.add_arc("s1", "a", "s2")
    sg.add_arc("s1", "d", "s3")
    sg.add_arc("s2", "d", "s4")
    sg.add_arc("s3", "a", "s4")
    # diamond a || e (e follows d)
    sg.add_arc("s3", "e", "s5")
    sg.add_arc("s4", "e", "s6")
    sg.add_arc("s5", "a", "s6")
    # diamond a || b (b follows e)
    sg.add_arc("s5", "b", "s7")
    sg.add_arc("s6", "b", "s8")
    sg.add_arc("s7", "a", "s8")
    # the non-persistent choice: g competes with a and d at s1
    sg.add_arc("s1", "g", "t1")
    return sg


def fig6_spec() -> PartialSpec:
    """Fig. 6.a: channel ``a``, partial signal ``b``, full signal ``c``.

    The cycle ``a! ; b ; c+ ; a? ; b ; c-`` uses the channel in both roles
    (active then passive within one iteration), which is why its expansion
    relies on the role-free return-to-zero structure of Fig. 5.c.
    """
    spec = PartialSpec("fig6")
    spec.declare_channel("a", ChannelRole.FREE)
    spec.declare_partial_signal("b", SignalKind.OUTPUT)
    spec.declare_signal("c", SignalKind.OUTPUT)
    first_b = spec.add("b")
    second_b = spec.add("b/1")
    for event in ("a!", "c+", "a?", "c-"):
        spec.add(event)
    spec.chain("a!", first_b, "c+", "a?", second_b, "c-")
    spec.connect("c-", "a!")
    spec.mark("<c-,a!>")
    return spec
