"""The PAR component (Fig. 10, first case study of Section 8).

The Tangram PAR component: a request on the passive port ``a`` launches the
two sub-processes on active ports ``b`` and ``c`` in parallel; when both
complete, ``a`` is acknowledged::

    *[ a? ; (b! ; b?) || (c! ; c?) ; a! ]

The 4-phase expansion (Fig. 10.b) has maximally concurrent return-to-zero
signalling.  The paper reduces it while *preserving the concurrency between
b? and c?* (the parallel execution that defines the component) and obtains a
circuit slightly smaller than the manual design used by the Tangram
compiler (Fig. 10.c/f), at some cost in cycle time when ``b`` and ``c``
have balanced delays.
"""

from __future__ import annotations

from typing import List, Tuple

from ..hse.spec import ChannelRole, PartialSpec
from ..hse.expansion import expand_four_phase
from ..petri.stg import STG, SignalKind


def par_spec() -> PartialSpec:
    """``*[ a? ; (b! ; b?) || (c! ; c?) ; a! ]``."""
    spec = PartialSpec("par")
    spec.declare_channel("a", ChannelRole.PASSIVE)
    spec.declare_channel("b", ChannelRole.ACTIVE)
    spec.declare_channel("c", ChannelRole.ACTIVE)
    for action in ("a?", "b!", "b?", "c!", "c?", "a!"):
        spec.add(action)
    spec.chain("a?", "b!", "b?", "a!")
    spec.chain("a?", "c!", "c?", "a!")
    spec.connect("a!", "a?")
    spec.mark("<a!,a?>")
    return spec


def par_expanded() -> STG:
    """Fig. 10.b: automatic 4-phase expansion of the PAR component."""
    return expand_four_phase(par_spec(), name="par_4ph")


#: The concurrency the reduction must preserve: the acknowledgments of the
#: two sub-processes (events b? and c?, i.e. wires bi and ci) stay parallel.
PAR_KEEP_CONC: List[Tuple[str, str]] = [("bi+", "ci+")]


def par_manual_stg() -> STG:
    """The manual Tangram reshuffling (Fig. 10.c, Peeters 1997).

    Requests ``bo+``/``co+`` are issued in parallel after ``ai+``; the
    acknowledgment ``ao+`` waits for both sub-acknowledgments; the reset
    phase mirrors the set phase after ``ai-``.
    """
    stg = STG("par_manual")
    for wire in ("ai", "bi", "ci"):
        stg.declare_signal(wire, SignalKind.INPUT)
    for wire in ("ao", "bo", "co"):
        stg.declare_signal(wire, SignalKind.OUTPUT)
    events = ("ai+", "bo+", "bi+", "co+", "ci+", "ao+",
              "ai-", "bo-", "bi-", "co-", "ci-", "ao-")
    for event in events:
        stg.add_event(event)
    stg.chain("ai+", "bo+", "bi+", "ao+")
    stg.chain("ai+", "co+", "ci+", "ao+")
    stg.chain("ao+", "ai-")
    stg.chain("ai-", "bo-", "bi-", "ao-")
    stg.chain("ai-", "co-", "ci-", "ao-")
    stg.connect("ao-", "ai+")
    stg.mark("<ao-,ai+>")
    for signal in ("ai", "ao", "bi", "bo", "ci", "co"):
        stg.set_initial_value(signal, 0)
    return stg
